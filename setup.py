"""Legacy setuptools entry point.

Kept so ``pip install -e .`` (and ``python setup.py develop``) work in
offline environments that lack the ``wheel`` package required by the
PEP 660 editable-install path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
