"""Reproducibility contract: every simulation is a function of its seeds."""

from repro.core.existence import build_lhg
from repro.flooding.experiments import (
    run_failure_detection,
    run_flood,
    run_gossip,
    run_treecast,
)
from repro.flooding.failures import (
    apply_schedule,
    crash_and_recover,
    random_crashes,
    random_flapping_links,
)
from repro.flooding.faults import noisy_links
from repro.flooding.network import ExponentialLatency, Network, UniformLatency
from repro.flooding.protocols.arq import ArqProtocol
from repro.flooding.protocols.reliable import ReliableFloodProtocol
from repro.flooding.simulator import Simulator
from repro.flooding.trace import TraceCollector


def identical_results(a, b) -> bool:
    return (
        a.covered == b.covered
        and a.messages == b.messages
        and a.completion_time == b.completion_time
        and a.delivery_times == b.delivery_times
    )


class TestRunDeterminism:
    def test_flood_bitwise_repeatable(self):
        graph, _ = build_lhg(30, 3)
        source = graph.nodes()[0]
        schedule = random_crashes(graph, 2, seed=5, protect={source})
        a = run_flood(graph, source, failures=schedule)
        b = run_flood(graph, source, failures=schedule)
        assert identical_results(a, b)

    def test_flood_with_random_latency_repeatable(self):
        graph, _ = build_lhg(30, 3)
        source = graph.nodes()[0]
        a = run_flood(graph, source, latency=UniformLatency(0.5, 1.5, seed=9))
        b = run_flood(graph, source, latency=UniformLatency(0.5, 1.5, seed=9))
        assert identical_results(a, b)

    def test_gossip_repeatable(self):
        graph, _ = build_lhg(24, 3)
        source = graph.nodes()[0]
        a = run_gossip(graph, source, fanout=2, rounds=8, seed=3)
        b = run_gossip(graph, source, fanout=2, rounds=8, seed=3)
        assert identical_results(a, b)

    def test_treecast_repeatable_under_loss(self):
        graph, _ = build_lhg(24, 3)
        source = graph.nodes()[0]
        a = run_treecast(graph, source, loss_rate=0.2, loss_seed=4)
        b = run_treecast(graph, source, loss_rate=0.2, loss_seed=4)
        assert identical_results(a, b)

    def test_detection_repeatable(self):
        graph, _ = build_lhg(20, 3)
        victim = graph.nodes()[2]
        kwargs = dict(
            period=1.0,
            timeout=2.5,
            latency=ExponentialLatency(0.1, 1.0, seed=7),
        )
        a = run_failure_detection(graph, [victim], 10.0, **kwargs)
        # fresh latency model with the same seed for a fair replay
        kwargs["latency"] = ExponentialLatency(0.1, 1.0, seed=7)
        b = run_failure_detection(graph, [victim], 10.0, **kwargs)
        assert a.detection_delays == b.detection_delays
        assert a.false_suspicions == b.false_suspicions


def chaotic_trace(seed: int) -> list:
    """One fully-chaotic run: loss+dup+reorder, flapping, crash+recover."""
    graph, _ = build_lhg(24, 3)
    source = graph.nodes()[0]
    victims = [v for v in graph.nodes() if v != source][:2]
    schedule = crash_and_recover(victims, crash_at=0.5, recover_at=20.0).merged(
        random_flapping_links(
            graph, 3, period=12.0, down_for=5.0, start=1.0, cycles=2, seed=seed
        )
    )
    simulator = Simulator()
    network = Network(
        graph,
        simulator,
        loss_rate=0.1,
        loss_seed=seed,
        fault_model=noisy_links(drop=0.1, duplicate=0.2, reorder=0.2, seed=seed),
    )
    trace = TraceCollector(keep_payloads=True)
    network.add_observer(trace)
    apply_schedule(schedule, network, simulator)
    protocol = ArqProtocol(
        network, ReliableFloodProtocol(network, source)
    )
    network.attach(protocol, start_nodes=[source])
    simulator.run(max_events=500_000)
    return trace.events


class TestTraceDeterminism:
    def test_chaotic_trace_byte_identical(self):
        # every event — kind, time, endpoints, payload repr — must match
        assert chaotic_trace(3) == chaotic_trace(3)

    def test_chaotic_trace_seed_sensitive(self):
        assert chaotic_trace(1) != chaotic_trace(2)


class TestSeedSensitivity:
    def test_different_latency_seeds_differ(self):
        graph, _ = build_lhg(30, 3)
        source = graph.nodes()[0]
        a = run_flood(graph, source, latency=UniformLatency(0.5, 1.5, seed=1))
        b = run_flood(graph, source, latency=UniformLatency(0.5, 1.5, seed=2))
        assert a.delivery_times != b.delivery_times

    def test_different_failure_seeds_differ(self):
        graph, _ = build_lhg(30, 3)
        source = graph.nodes()[0]
        a = random_crashes(graph, 3, seed=1, protect={source}).crashed_nodes
        b = random_crashes(graph, 3, seed=2, protect={source}).crashed_nodes
        assert a != b


class TestConstructionDeterminism:
    def test_builders_are_pure_functions(self):
        for rule in ("jenkins-demers", "k-tree", "k-diamond"):
            a, cert_a = build_lhg(14, 3, rule=rule)
            b, cert_b = build_lhg(14, 3, rule=rule)
            assert a == b
            assert cert_a.to_json() == cert_b.to_json()
