"""Scale validation: the guarantees hold well beyond the exhaustive sizes.

Full connectivity verification is O(n)·max-flow, so the small-n tests
carry the exactness burden; these tests push n into the thousands with
the checks that stay cheap — structural certificates, degree witnesses,
sampled Menger connectivity, double-sweep diameters, and a large flood.
"""

import random

import pytest

from repro.core.existence import build_lhg
from repro.core.properties import theoretical_diameter_bound
from repro.flooding.experiments import run_flood
from repro.graphs.connectivity import local_node_connectivity
from repro.graphs.minimality import has_degree_witness_minimality
from repro.graphs.traversal import approximate_diameter

PAIRS = [(2000, 3), (3000, 4), (2500, 6)]


class TestScale:
    @pytest.mark.parametrize("n,k", PAIRS)
    def test_certificate_verifies_at_scale(self, n, k):
        graph, certificate = build_lhg(n, k)
        assert graph.number_of_nodes() == n
        certificate.verify_graph(graph)

    @pytest.mark.parametrize("n,k", PAIRS)
    def test_degree_witness_minimality_at_scale(self, n, k):
        graph, _ = build_lhg(n, k)
        assert graph.min_degree() >= k
        assert has_degree_witness_minimality(graph, k)

    @pytest.mark.parametrize("n,k", PAIRS)
    def test_sampled_menger_connectivity(self, n, k):
        graph, _ = build_lhg(n, k)
        rng = random.Random(n)
        nodes = graph.nodes()
        for _ in range(5):
            s, t = rng.sample(nodes, 2)
            assert local_node_connectivity(graph, s, t, cutoff=k) >= k

    @pytest.mark.parametrize("n,k", PAIRS)
    def test_diameter_bound_at_scale(self, n, k):
        graph, certificate = build_lhg(n, k)
        estimate = approximate_diameter(graph, samples=6, seed=1)
        assert estimate <= theoretical_diameter_bound(certificate)

    def test_flood_at_scale(self):
        graph, _ = build_lhg(4000, 4)
        source = graph.nodes()[0]
        result = run_flood(graph, source)
        assert result.fully_covered
        assert result.completion_time <= 14  # ~log_3(4000) * 2
