"""Scale validation: the guarantees hold well beyond the exhaustive sizes.

Full connectivity verification is O(n)·max-flow, so the small-n tests
carry the exactness burden; these tests push n into the thousands with
the checks that stay cheap — structural certificates, degree witnesses,
sampled Menger connectivity, double-sweep diameters, and a large flood.
"""

import random

import pytest

from repro.core.existence import build_lhg
from repro.core.properties import theoretical_diameter_bound
from repro.flooding.experiments import run_flood
from repro.graphs.connectivity import local_node_connectivity
from repro.graphs.minimality import has_degree_witness_minimality
from repro.graphs.traversal import approximate_diameter

PAIRS = [(2000, 3), (3000, 4), (2500, 6)]


class TestScale:
    @pytest.mark.parametrize("n,k", PAIRS)
    def test_certificate_verifies_at_scale(self, n, k):
        graph, certificate = build_lhg(n, k)
        assert graph.number_of_nodes() == n
        certificate.verify_graph(graph)

    @pytest.mark.parametrize("n,k", PAIRS)
    def test_degree_witness_minimality_at_scale(self, n, k):
        graph, _ = build_lhg(n, k)
        assert graph.min_degree() >= k
        assert has_degree_witness_minimality(graph, k)

    @pytest.mark.parametrize("n,k", PAIRS)
    def test_sampled_menger_connectivity(self, n, k):
        graph, _ = build_lhg(n, k)
        rng = random.Random(n)
        nodes = graph.nodes()
        for _ in range(5):
            s, t = rng.sample(nodes, 2)
            assert local_node_connectivity(graph, s, t, cutoff=k) >= k

    @pytest.mark.parametrize("n,k", PAIRS)
    def test_diameter_bound_at_scale(self, n, k):
        graph, certificate = build_lhg(n, k)
        estimate = approximate_diameter(graph, samples=6, seed=1)
        assert estimate <= theoretical_diameter_bound(certificate)

    def test_flood_at_scale(self):
        graph, _ = build_lhg(4000, 4)
        source = graph.nodes()[0]
        result = run_flood(graph, source)
        assert result.fully_covered
        assert result.completion_time <= 14  # ~log_3(4000) * 2


# beyond the dict-graph comfort zone: the implicit oracle + CSR + the
# certificate verification path, at sizes where Dinic is off the table
ORACLE_PAIRS = [(100_000, 3), (50_000, 4)]


class TestScaleOracle:
    @pytest.mark.parametrize("n,k", ORACLE_PAIRS)
    def test_structural_proofs_at_scale(self, n, k):
        from repro.graphs.implicit import ImplicitJDOracle

        proofs = ImplicitJDOracle(n, k).structural_proofs()
        assert proofs.conclusive and proofs.all_hold, proofs.summary()

    @pytest.mark.parametrize("n,k", ORACLE_PAIRS)
    def test_round_flood_covers_everything(self, n, k):
        from repro.core.properties import logarithmic_diameter_bound
        from repro.flooding.rounds import round_flood
        from repro.graphs.csr import CSRGraph
        from repro.graphs.implicit import ImplicitJDOracle

        csr = CSRGraph.from_oracle(ImplicitJDOracle(n, k))
        assert csr.dense_labels
        result = round_flood(csr, 0)
        assert result.covered == n
        assert result.rounds <= logarithmic_diameter_bound(n, k)

    def test_topology_invariants_use_certificates_at_scale(self):
        from repro.graphs.implicit import ImplicitJDOracle
        from repro.robustness import check_topology_invariants

        oracle = ImplicitJDOracle(100_000, 3)
        assert check_topology_invariants(oracle, 3) == []

    def test_implicit_matches_materialised_at_two_thousand(self):
        from repro.core.jenkins_demers import jenkins_demers_graph
        from repro.graphs.implicit import ImplicitJDOracle

        n, k = 2002, 3
        graph, _ = jenkins_demers_graph(n, k)
        oracle = ImplicitJDOracle(n, k)
        assert oracle.number_of_edges() == graph.number_of_edges()
        for node_id in range(0, n, 97):
            label = oracle.label_of(node_id)
            expected = {oracle.id_of(v) for v in graph.neighbors(label)}
            assert set(oracle.neighbors(node_id)) == expected
