"""Telemetry is provably passive and deterministically ordered.

The contract this suite pins down (ISSUE acceptance criteria):

* a run with a collector installed produces **byte-identical results**
  to the same run without one, at any worker count;
* the deterministic part of the JSONL event stream (everything except
  ``src == "exec"`` scheduling noise and per-event times/pids/seqs) is
  **identical across --workers 1/2/4**;
* executor lifecycle events agree exactly with the execution report's
  counters (every retry / worker death / timeout / quarantine is
  recorded);
* checkpoint journal writes and resume loads appear in the log;
* the sampling profiler is equally passive: arming it changes neither
  the rendered results nor the recorded event stream.
"""

import pytest

from repro import obs
from repro.exec.cache import TopologySpec
from repro.exec.pool import WorkerPool, fork_available
from repro.exec.supervisor import CrashInjector, SupervisorConfig
from repro.robustness import ChaosCampaign
from repro.robustness.scenarios import standard_scenarios

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)


@pytest.fixture(autouse=True)
def no_leaked_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def small_campaign():
    """A bench_f12-style chaos grid, shrunk to test size."""
    scenarios = [
        s
        for s in standard_scenarios(loss_rates=(0.2,))
        if s.name in ("baseline", "crash-recover", "loss-0.2")
    ]
    return ChaosCampaign(
        [("lhg", TopologySpec(24, 3))], scenarios=scenarios, seeds=[0, 1]
    )


def normalize(events):
    """The deterministic view of an event stream.

    Drops executor lifecycle noise (``src == "exec"``: worker spawns,
    deaths, retries — legitimately scheduling-dependent), wall-clock
    times, pids and seq numbers, and the ``mode``/``workers`` attrs of
    the map span (which genuinely differ across worker counts).
    """
    view = []
    for event in events:
        if event.get("src") == "exec":
            continue
        entry = {
            k: v for k, v in event.items() if k not in ("t", "pid", "seq")
        }
        if entry.get("name") == "map":
            entry["attrs"] = {
                k: v
                for k, v in entry["attrs"].items()
                if k not in ("mode", "workers")
            }
        view.append(entry)
    return view


class TestPassivity:
    def test_matrix_byte_identical_with_and_without_collector(self):
        baseline = small_campaign().run().render()
        obs.install()
        traced = small_campaign().run().render()
        obs.uninstall()
        assert traced == baseline

    def test_matrix_byte_identical_under_workers_and_telemetry(self):
        baseline = small_campaign().run().render()
        obs.install()
        traced = small_campaign().run(workers=2).render()
        obs.uninstall()
        assert traced == baseline

    def test_supervised_results_unchanged_by_collector(self):
        def runs(telemetry):
            if telemetry:
                obs.install()
            pool = WorkerPool(
                workers=2,
                supervisor=SupervisorConfig(
                    retries=3,
                    seed=7,
                    fault_hook=CrashInjector(rate=0.3, seed=11),
                ),
            )
            values = pool.map(lambda x: x * x, list(range(12)))
            if telemetry:
                obs.uninstall()
            return values

        assert runs(False) == runs(True) == [x * x for x in range(12)]


class TestProfilerPassivity:
    """Arming the sampling profiler never perturbs results or events."""

    def test_matrix_byte_identical_under_profiler(self):
        from repro.obs.prof import SamplingProfiler

        baseline = small_campaign().run().render()
        with SamplingProfiler(hz=100):
            profiled = small_campaign().run().render()
        assert profiled == baseline

    def test_event_stream_unchanged_by_profiler(self):
        from repro.obs.prof import SamplingProfiler

        def stream(profiled):
            collector = obs.install()
            if profiled:
                with SamplingProfiler(hz=100):
                    matrix = small_campaign().run()
            else:
                matrix = small_campaign().run()
            obs.uninstall()
            assert matrix.all_green
            assert obs.validate_events(collector.events) == []
            return normalize(collector.events), collector.metrics.snapshot()

        assert stream(False) == stream(True)


class TestDeterministicOrdering:
    def test_event_stream_stable_across_worker_counts(self):
        streams = {}
        metrics = {}
        for workers in (1, 2, 4):
            collector = obs.install()
            matrix = small_campaign().run(
                workers=workers, retries=1, timeout=60.0
            )
            obs.uninstall()
            assert matrix.all_green
            assert obs.validate_events(collector.events) == []
            streams[workers] = normalize(collector.events)
            metrics[workers] = collector.metrics.snapshot()
        assert streams[1] == streams[2] == streams[4]
        assert metrics[1] == metrics[2] == metrics[4]

    def test_span_taxonomy_covers_all_levels(self):
        collector = obs.install()
        small_campaign().run(workers=2)
        obs.uninstall()
        opened = {
            e["name"]
            for e in collector.events
            if e["kind"] == "span-open"
        }
        assert {
            "campaign",
            "graph-build",
            "map",
            "cell",
            "scenario-build",
            "protocol-run",
            "invariant-check",
        } <= opened

    def test_crash_injection_under_telemetry_stays_deterministic(self):
        def stream(workers):
            collector = obs.install()
            pool = WorkerPool(
                workers=workers,
                supervisor=SupervisorConfig(
                    retries=4,
                    seed=3,
                    timeout=10.0,
                    fault_hook=CrashInjector(rate=0.35, seed=5),
                ),
            )
            def cell(x):
                with obs.span("protocol-run", item=x):
                    obs.counter("net.send", x)
                return x + 100
            values = pool.map(cell, list(range(10)))
            obs.uninstall()
            assert values == [x + 100 for x in range(10)]
            return normalize(collector.events), collector.metrics.snapshot()

        serial = stream(1)
        assert stream(2) == serial
        assert stream(4) == serial


class TestLifecycleEvents:
    def test_exec_events_match_report_counters(self):
        collector = obs.install()
        pool = WorkerPool(
            workers=2,
            supervisor=SupervisorConfig(
                retries=3,
                seed=7,
                timeout=10.0,
                fault_hook=CrashInjector(rate=0.3, seed=11),
            ),
        )
        pool.map(lambda x: x, list(range(12)))
        obs.uninstall()
        report = pool.last_report
        names = [
            e["name"] for e in collector.events if e["kind"] == "event"
        ]
        assert names.count("retry") == report.retries
        assert (
            names.count("worker-death") + names.count("timeout-kill")
            == report.worker_deaths
        )
        assert names.count("timeout-kill") == report.timeouts
        assert names.count("quarantine") == len(report.failures)

    def test_quarantine_recorded(self):
        collector = obs.install()
        pool = WorkerPool(
            workers=1,
            supervisor=SupervisorConfig(retries=1, timeout=None),
        )

        def poison(x):
            if x == 2:
                raise RuntimeError("always fails")
            return x

        pool.map(poison, list(range(4)))
        obs.uninstall()
        names = [
            e["name"] for e in collector.events if e["kind"] == "event"
        ]
        assert names.count("retry") == 1
        assert names.count("quarantine") == 1
        assert len(pool.last_report.failures) == 1

    def test_checkpoint_write_and_resume_load_events(self, tmp_path):
        journal = str(tmp_path / "cells.jsonl")
        collector = obs.install()
        first = small_campaign().run(checkpoint=journal)
        obs.uninstall()
        writes = [
            e for e in collector.events if e["name"] == "checkpoint-write"
        ]
        assert len(writes) == len(first.cells)
        assert all(e["src"] == "exec" for e in writes)

        collector = obs.install()
        resumed = small_campaign().run(checkpoint=journal, resume=True)
        obs.uninstall()
        loads = [
            e for e in collector.events if e["name"] == "checkpoint-load"
        ]
        assert len(loads) == 1
        assert loads[0]["attrs"]["entries"] == len(first.cells)
        assert resumed.render() == first.render()


class TestReportSpanTree:
    def test_span_tree_attached_when_collector_active(self):
        obs.install()
        campaign = small_campaign()
        campaign.run(workers=2)
        obs.uninstall()
        tree = campaign.last_report.span_tree
        assert tree is not None
        assert tree[0]["name"] == "map"
        cell_names = {child["name"] for child in tree[0]["children"]}
        assert "cell" in cell_names

    def test_span_tree_absent_without_collector(self):
        campaign = small_campaign()
        campaign.run()
        assert campaign.last_report.span_tree is None


class TestParallelEfficiencyRegression:
    def test_zero_wall_uses_measured_floor(self):
        # sub-millisecond maps on coarse clocks can report wall == 0;
        # the efficiency must fall back to the slowest-cell floor
        from repro.exec.profiling import CellTiming, ExecutionReport

        report = ExecutionReport(
            mode="serial",
            workers=1,
            wall_seconds=0.0,
            timings=[CellTiming("a", 0.0004), CellTiming("b", 0.0006)],
        )
        assert report.parallel_efficiency() == pytest.approx(
            (0.0004 + 0.0006) / 0.0006
        )

    def test_no_timings_still_zero(self):
        from repro.exec.profiling import ExecutionReport

        assert ExecutionReport(wall_seconds=0.0).parallel_efficiency() == 0.0
