"""Tests for the ARQ retransmission layer."""

import pytest

from repro.core.existence import build_lhg
from repro.errors import ProtocolError, SimulationError
from repro.flooding.experiments import run_arq_flood, run_reliable_flood
from repro.flooding.failures import crash_and_recover, flapping_links
from repro.flooding.network import Network, NodeApi, Protocol
from repro.flooding.protocols.arq import ArqAck, ArqData, ArqProtocol
from repro.flooding.simulator import Simulator
from repro.graphs.generators.classic import path_graph


class OneShot(Protocol):
    """Inner protocol: node 0 sends one payload to node 1 at start."""

    def __init__(self):
        self.received = []
        self.timers = []

    def on_start(self, node, api):
        if node == 0:
            api.send(1, "hello")

    def on_message(self, node, payload, sender, api):
        self.received.append((node, payload, sender))

    def on_timer(self, node, tag, api):
        self.timers.append((node, tag))


def wire(graph, inner=None, fault_model=None, **kwargs):
    sim = Simulator()
    net = Network(graph, sim, fault_model=fault_model)
    inner = inner if inner is not None else OneShot()
    arq = ArqProtocol(net, inner, **kwargs)
    net.attach(arq, start_nodes=[0])
    return sim, net, inner, arq


class TestParameterValidation:
    def test_nonpositive_base_timeout(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        with pytest.raises(ProtocolError):
            ArqProtocol(net, OneShot(), base_timeout=0.0)

    def test_max_below_base(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        with pytest.raises(ProtocolError):
            ArqProtocol(net, OneShot(), base_timeout=5.0, max_timeout=1.0)

    def test_backoff_below_one(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        with pytest.raises(ProtocolError):
            ArqProtocol(net, OneShot(), backoff=0.5)

    def test_negative_retries(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        with pytest.raises(ProtocolError):
            ArqProtocol(net, OneShot(), max_retries=-1)


class TestHappyPath:
    def test_delivers_exactly_once_without_faults(self):
        sim, net, inner, arq = wire(path_graph(2))
        sim.run()
        assert inner.received == [(1, "hello", 0)]
        assert arq.frames_sent == 1
        assert arq.acks_sent == 1
        assert arq.retransmissions == 0
        assert arq.pending_frames == 0

    def test_non_arq_payload_rejected(self):
        sim, net, inner, arq = wire(path_graph(2))
        sim.run()
        with pytest.raises(ProtocolError):
            arq.on_message(1, "raw", 0, NodeApi(net, 1))

    def test_inner_timers_pass_through(self):
        sim, net, inner, arq = wire(path_graph(2))
        net.set_timer(0, 1.0, ("inner", 42))
        sim.run()
        assert inner.timers == [(0, ("inner", 42))]


class TestRetransmission:
    def test_retries_until_link_heals(self):
        sim, net, inner, arq = wire(path_graph(2))
        net.fail_link(0, 1)
        sim.schedule(20.0, lambda: net.restore_link(0, 1))
        sim.run()
        assert inner.received == [(1, "hello", 0)]
        assert arq.retransmissions >= 1
        assert arq.pending_frames == 0

    def test_backoff_doubles_and_caps(self):
        sim, net, inner, arq = wire(
            path_graph(2), base_timeout=1.0, backoff=2.0, max_timeout=4.0,
            max_retries=20,
        )
        net.fail_link(0, 1)
        sends = []
        net.add_observer(
            lambda kind, time, **d: kind == "drop" and sends.append(time)
        )
        sim.schedule(30.0, lambda: net.restore_link(0, 1))
        sim.run()
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        # 1, 2, 4, then capped at 4
        assert gaps[:3] == [1.0, 2.0, 4.0]
        assert all(g == 4.0 for g in gaps[3:])

    def test_gives_up_after_budget(self):
        sim, net, inner, arq = wire(
            path_graph(2), base_timeout=1.0, max_timeout=1.0, max_retries=3
        )
        net.fail_link(0, 1)  # never restored
        sim.run()
        assert inner.received == []
        assert arq.retransmissions == 3
        assert arq.gave_up == 1
        assert arq.pending_frames == 0

    def test_retry_budget_bound_holds(self):
        sim, net, inner, arq = wire(
            path_graph(2), base_timeout=1.0, max_timeout=1.0, max_retries=3
        )
        net.fail_link(0, 1)
        sim.run()
        assert arq.retransmissions <= arq.retry_budget == 3 * arq.frames_created


class TestDeduplication:
    def test_duplicate_frames_suppressed(self):
        from repro.flooding.faults import noisy_links

        sim, net, inner, arq = wire(
            path_graph(2), fault_model=noisy_links(duplicate=0.999, seed=1)
        )
        sim.run()
        # the inner protocol saw the payload exactly once...
        assert inner.received == [(1, "hello", 0)]
        assert arq.duplicates_suppressed >= 1
        # ...but every copy was ACKed (the sender may be retrying)
        assert arq.acks_sent >= 2

    def test_frame_types_carry_ids(self):
        frame = ArqData(msg_id=(0, 7), payload="x")
        ack = ArqAck(msg_id=(0, 7))
        assert frame.msg_id == ack.msg_id


class TestEndToEnd:
    def test_arq_flood_full_coverage_under_loss(self):
        graph, _ = build_lhg(24, 3)
        source = graph.nodes()[0]
        result = run_arq_flood(graph, source, loss_rate=0.3, loss_seed=5)
        assert result.fully_covered

    def test_arq_beats_plain_across_long_outage(self):
        graph, _ = build_lhg(24, 3)
        source = graph.nodes()[0]
        victims = [v for v in graph.nodes() if v != source][:3]
        schedule = crash_and_recover(victims, crash_at=0.5, recover_at=35.0)
        plain = run_reliable_flood(graph, source, failures=schedule)
        arq = run_arq_flood(graph, source, failures=schedule)
        assert arq.fully_covered
        assert arq.covered >= plain.covered

    def test_arq_rides_out_flapping(self):
        graph, _ = build_lhg(24, 3)
        source = graph.nodes()[0]
        victim = [v for v in graph.nodes() if v != source][0]
        links = [(victim, w) for w in graph.neighbors(victim)]
        schedule = flapping_links(
            links, period=50.0, down_for=32.0, start=0.5, cycles=2
        )
        result = run_arq_flood(graph, source, failures=schedule)
        assert result.fully_covered

    def test_crashed_source_rejected(self):
        graph, _ = build_lhg(24, 3)
        source = graph.nodes()[0]
        from repro.flooding.failures import crash_before_start

        with pytest.raises(SimulationError):
            run_arq_flood(graph, source, failures=crash_before_start([source]))

    def test_deterministic(self):
        graph, _ = build_lhg(24, 3)
        source = graph.nodes()[0]
        a = run_arq_flood(graph, source, loss_rate=0.3, loss_seed=9)
        b = run_arq_flood(graph, source, loss_rate=0.3, loss_seed=9)
        assert a.delivery_times == b.delivery_times
        assert a.messages == b.messages
