"""Tests for the K-TREE constraint builder (extension module)."""

import pytest

from repro.errors import InfeasiblePairError
from repro.core.jenkins_demers import is_jd_constructible, jenkins_demers_graph
from repro.core.ktree import (
    ktree_exists,
    ktree_graph,
    ktree_plan,
    ktree_regular_exists,
    ktree_regular_sizes,
    satisfies_ktree,
)
from repro.core.properties import check_lhg
from repro.graphs.properties import is_k_regular

from tests.conftest import SMALL_PAIRS


class TestExistence:
    def test_exists_iff_n_at_least_2k(self):
        for k in (2, 3, 4, 5):
            assert not ktree_exists(2 * k - 1, k)
            for n in range(2 * k, 2 * k + 20):
                assert ktree_exists(n, k)

    def test_k1_excluded(self):
        assert not ktree_exists(10, 1)

    def test_plan_rejects_out_of_domain(self):
        with pytest.raises(InfeasiblePairError):
            ktree_plan(5, 3)
        with pytest.raises(InfeasiblePairError):
            ktree_plan(4, 1)

    def test_plan_residue_in_quota(self):
        for k in (2, 3, 4, 5):
            for n in range(2 * k, 2 * k + 25):
                plan = ktree_plan(n, k)
                assert 0 <= plan.added_leaves <= 2 * k - 3 or (
                    k == 2 and plan.added_leaves <= 1
                )


class TestConstruction:
    @pytest.mark.parametrize("n,k", SMALL_PAIRS)
    def test_builds_every_pair(self, n, k):
        graph, cert = ktree_graph(n, k)
        assert graph.number_of_nodes() == n
        assert cert.rule == "k-tree"
        cert.verify_graph(graph)
        assert satisfies_ktree(cert)

    @pytest.mark.parametrize("n,k", SMALL_PAIRS)
    def test_satisfies_lhg_properties(self, n, k):
        graph, _ = ktree_graph(n, k)
        report = check_lhg(graph, k)
        assert report.node_connected, report.summary()
        assert report.link_connected, report.summary()
        assert report.link_minimal, report.summary()
        if k >= 3:
            assert report.log_diameter, report.summary()

    def test_fills_every_jd_gap(self):
        for k in (3, 4, 5):
            for n in range(2 * k, 2 * k + 30):
                if not is_jd_constructible(n, k):
                    graph, _ = ktree_graph(n, k)
                    assert graph.number_of_nodes() == n

    def test_superset_of_jd(self):
        # every JD-buildable pair also satisfies K-TREE (the JD graph's
        # structure obeys the K-TREE rules)
        for k in (3, 4):
            for n in range(2 * k, 2 * k + 20):
                if is_jd_constructible(n, k):
                    _, cert = jenkins_demers_graph(n, k)
                    assert satisfies_ktree(cert), (n, k)


class TestRegularity:
    def test_reg_formula(self):
        assert ktree_regular_exists(6, 3)
        assert ktree_regular_exists(10, 3)
        assert not ktree_regular_exists(8, 3)
        assert not ktree_regular_exists(7, 3)

    def test_regular_sizes_match_formula(self):
        assert ktree_regular_sizes(3, 30) == [6, 10, 14, 18, 22, 26, 30]

    def test_regular_points_build_regular(self):
        for k in (2, 3, 4):
            for n in ktree_regular_sizes(k, 5 * k):
                graph, _ = ktree_graph(n, k)
                assert is_k_regular(graph, k)

    def test_non_regular_points_build_irregular(self):
        for n, k in [(7, 3), (9, 3), (11, 4)]:
            graph, _ = ktree_graph(n, k)
            assert not is_k_regular(graph, k)


class TestConstraintChecker:
    def test_rejects_kdiamond_certificates_with_unshared(self):
        from repro.core.kdiamond import kdiamond_graph

        _, cert = kdiamond_graph(8, 3)  # has an unshared slot
        assert not satisfies_ktree(cert)

    def test_accepts_kdiamond_all_shared(self):
        from repro.core.kdiamond import kdiamond_graph

        _, cert = kdiamond_graph(6, 3)  # base case: all shared
        assert satisfies_ktree(cert)
