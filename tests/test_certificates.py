"""Unit tests for construction certificates."""

import pytest

from repro.errors import CertificateError
from repro.core.certificates import ConstructionCertificate
from repro.core.jenkins_demers import jenkins_demers_graph
from repro.core.kdiamond import kdiamond_graph
from repro.core.tree_schema import TreeSchema, grown_schema, paste_copies


class TestSnapshot:
    def test_from_schema_counts(self):
        schema = grown_schema(3, 2)
        cert = ConstructionCertificate.from_schema(schema, rule="test")
        assert cert.k == 3
        assert cert.rule == "test"
        assert cert.interior_count == 3
        assert cert.expected_node_count() == schema.node_count()

    def test_with_rule(self):
        cert = ConstructionCertificate.from_schema(TreeSchema(3))
        assert cert.with_rule("x").rule == "x"

    def test_root_id(self):
        cert = ConstructionCertificate.from_schema(grown_schema(4, 3))
        assert cert.root_id() == 0


class TestTreeNavigation:
    def test_path_to_root(self):
        cert = ConstructionCertificate.from_schema(grown_schema(3, 4))
        for interior_id in cert.interiors:
            path = cert.path_to_root(interior_id)
            assert path[0] == interior_id
            assert path[-1] == cert.root_id()

    def test_path_to_root_unknown(self):
        cert = ConstructionCertificate.from_schema(TreeSchema(3))
        with pytest.raises(CertificateError):
            cert.path_to_root(99)

    def test_interior_path_symmetric_ends(self):
        cert = ConstructionCertificate.from_schema(grown_schema(3, 5))
        ids = sorted(cert.interiors)
        path = cert.interior_path(ids[1], ids[-1])
        assert path[0] == ids[1] and path[-1] == ids[-1]
        # consecutive entries are parent/child pairs
        for a, b in zip(path, path[1:]):
            assert cert.interiors[a].parent == b or cert.interiors[b].parent == a

    def test_interior_path_self(self):
        cert = ConstructionCertificate.from_schema(TreeSchema(3))
        assert cert.interior_path(0, 0) == [0]

    def test_descendant_leaves_cover_all(self):
        cert = ConstructionCertificate.from_schema(grown_schema(3, 3))
        leaves = cert.descendant_leaves(cert.root_id())
        assert set(leaves) == set(cert.leaves)

    def test_descendant_leaves_subtree(self):
        schema = grown_schema(3, 1)
        cert = ConstructionCertificate.from_schema(schema)
        child = cert.interiors[cert.root_id()].interior_children[0]
        subtree_leaves = cert.descendant_leaves(child)
        assert len(subtree_leaves) == 2  # k-1 leaves of the converted node


class TestVerification:
    def test_verify_accepts_own_graph(self):
        for n, k in [(6, 3), (14, 3), (13, 3), (20, 4)]:
            graph, cert = kdiamond_graph(n, k)
            cert.verify_graph(graph)  # must not raise

    def test_verify_detects_missing_edge(self):
        graph, cert = jenkins_demers_graph(10, 3)
        u, v = graph.edges()[0]
        graph.remove_edge(u, v)
        with pytest.raises(CertificateError):
            cert.verify_graph(graph)

    def test_verify_detects_extra_node(self):
        graph, cert = jenkins_demers_graph(10, 3)
        graph.add_node("intruder")
        with pytest.raises(CertificateError):
            cert.verify_graph(graph)

    def test_verify_detects_rewired_leaf(self):
        graph, cert = jenkins_demers_graph(10, 3)
        # add an edge: counts change
        nodes = graph.nodes()
        for u in nodes:
            for v in nodes:
                if u != v and not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    with pytest.raises(CertificateError):
                        cert.verify_graph(graph)
                    return


class TestSerialisation:
    def test_json_round_trip(self):
        _, cert = kdiamond_graph(13, 3)
        restored = ConstructionCertificate.from_json(cert.to_json())
        assert restored.k == cert.k
        assert restored.rule == cert.rule
        assert restored.interiors == cert.interiors
        assert restored.leaves == cert.leaves

    def test_round_trip_still_verifies(self):
        graph, cert = kdiamond_graph(14, 4)
        restored = ConstructionCertificate.from_json(cert.to_json())
        restored.verify_graph(graph)

    def test_invalid_json_rejected(self):
        with pytest.raises(CertificateError):
            ConstructionCertificate.from_json("}{")

    def test_malformed_payload_rejected(self):
        with pytest.raises(CertificateError):
            ConstructionCertificate.from_json('{"k": 3}')
