"""Tests for exhaustive k-regular enumeration and the LHG census."""

import pytest

from repro.core.enumeration import (
    construction_reaches,
    enumerate_k_regular_graphs,
    lhg_census,
)
from repro.errors import GraphError
from repro.graphs.connectivity import node_connectivity
from repro.graphs.traversal import is_connected


class TestEnumeration:
    def test_known_count_cubic_6(self):
        # textbook: exactly 2 cubic graphs on 6 vertices (K_3,3, prism)
        graphs = enumerate_k_regular_graphs(6, 3)
        assert len(graphs) == 2

    def test_known_count_cubic_8(self):
        # textbook: exactly 5 connected cubic graphs on 8 vertices
        assert len(enumerate_k_regular_graphs(8, 3)) == 5

    def test_known_count_quartic_8(self):
        # exactly 6 connected 4-regular graphs on 8 vertices
        assert len(enumerate_k_regular_graphs(8, 4)) == 6

    def test_cycle_is_unique_2_regular(self):
        for n in (3, 4, 5, 6, 7):
            graphs = enumerate_k_regular_graphs(n, 2)
            assert len(graphs) == 1  # the cycle

    def test_complete_graph_unique(self):
        graphs = enumerate_k_regular_graphs(5, 4)
        assert len(graphs) == 1
        assert graphs[0].number_of_edges() == 10

    def test_all_outputs_are_regular_and_connected(self):
        for graph in enumerate_k_regular_graphs(8, 3):
            assert graph.regular_degree() == 3
            assert is_connected(graph)

    def test_odd_product_empty(self):
        assert enumerate_k_regular_graphs(7, 3) == []

    def test_domain_checks(self):
        with pytest.raises(GraphError):
            enumerate_k_regular_graphs(12, 3)  # beyond the safety rail
        with pytest.raises(GraphError):
            enumerate_k_regular_graphs(5, 5)
        with pytest.raises(GraphError):
            enumerate_k_regular_graphs(5, 0)


class TestCensus:
    def test_6_3_census(self):
        # both cubic graphs on 6 nodes (K_3,3 and the prism) are LHGs
        lhgs, non_lhgs = lhg_census(6, 3)
        assert len(lhgs) == 2
        assert non_lhgs == []
        for graph in lhgs:
            assert node_connectivity(graph) == 3

    def test_construction_reaches_exactly_one_6_3_lhg(self):
        # the tree-pasting family builds K_3,3 but never the prism: the
        # LHG space is strictly larger than the construction's image
        lhgs, _ = lhg_census(6, 3)
        reached = [construction_reaches(graph, 3) for graph in lhgs]
        assert sorted(reached) == [False, True]

    def test_4_2_census(self):
        # C4 is the unique 2-regular LHG for (4, 2)
        lhgs, non_lhgs = lhg_census(4, 2)
        assert len(lhgs) == 1
        assert non_lhgs == []
        assert construction_reaches(lhgs[0], 2)
