"""Tests for ``repro.lint``: the determinism & fork-safety analyzer.

Three layers:

* **fixture sweep** — every rule must fire on its ``bad`` fixture and
  stay silent on its ``good`` fixture (the corpus under
  ``tests/lint_fixtures/``);
* **engine mechanics** — suppression comments, baseline round-trips,
  fingerprint stability, JSON schema;
* **self-check** — ``src/repro`` itself must be clean against the
  committed baseline, which makes the analyzer part of tier-1: a
  regression that reintroduces an unseeded random call or a wall-clock
  read in simulation code fails this file, not just a slow integration
  suite.
"""

import json
import os

import pytest

from repro.lint import (
    Finding,
    LintConfig,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    render_json,
    render_text,
    rule_ids,
    run_lint,
    write_baseline,
)
from repro.lint.engine import module_name_for_path, parse_suppressions

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "lint_fixtures")
BAD = os.path.join(FIXTURES, "bad")
GOOD = os.path.join(FIXTURES, "good")
REPO_ROOT = os.path.dirname(HERE)
SRC = os.path.join(REPO_ROOT, "src", "repro")
BASELINE = os.path.join(REPO_ROOT, "lint-baseline.json")

AST_RULES = ["DET001", "DET002", "DET003", "FORK001", "FORK002", "EXC001", "API001"]


def rules_fired(result):
    return {finding.rule for finding in result.findings}


# ----------------------------------------------------------------------
# Fixture sweep: each rule fires on bad, stays silent on good
# ----------------------------------------------------------------------


class TestFixtureCorpus:
    @pytest.mark.parametrize("rule", AST_RULES)
    def test_rule_fires_on_bad_fixture(self, rule):
        path = os.path.join(BAD, f"{rule.lower()}_bad.py")
        assert os.path.exists(path), f"missing bad fixture for {rule}"
        result = lint_paths([path])
        fired = rules_fired(result)
        assert rule in fired, f"{rule} did not fire on {path}: {fired}"

    @pytest.mark.parametrize("rule", AST_RULES)
    def test_rule_silent_on_good_fixture(self, rule):
        path = os.path.join(GOOD, f"{rule.lower()}_good.py")
        assert os.path.exists(path), f"missing good fixture for {rule}"
        result = lint_paths([path])
        assert rule not in rules_fired(result), (
            f"{rule} false-positive on {path}:\n" + render_text(result)
        )

    def test_every_good_fixture_is_fully_clean(self):
        result = lint_paths([GOOD])
        assert result.clean, render_text(result)

    def test_bad_corpus_trips_the_gate(self):
        result = lint_paths([BAD])
        assert result.exit_code() == 1
        # every bad fixture contributes at least one finding
        flagged_files = sorted({f.path for f in result.findings})
        for name in sorted(os.listdir(BAD)):
            if name.endswith(".py"):
                assert any(name in path for path in flagged_files), name

    def test_parse_error_reported_as_finding(self):
        result = lint_paths([os.path.join(BAD, "parse_bad.py")])
        assert rules_fired(result) == {"PARSE001"}
        assert result.findings[0].severity == "error"

    def test_missing_reason_suppression_reports_sup001(self):
        result = lint_paths([os.path.join(BAD, "suppress_missing_reason.py")])
        fired = rules_fired(result)
        assert "SUP001" in fired
        # and the unsuppressed findings still gate
        assert "DET002" in fired


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------


class TestSuppression:
    def test_same_line_suppression(self):
        source = (
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro: lint-ignore[DET002] profiling\n"
        )
        result = lint_source(source, path="fake.py")
        assert result.clean
        assert [f.rule for f in result.suppressed] == ["DET002"]

    def test_standalone_suppression_covers_next_line(self):
        source = (
            "import time\n"
            "def f():\n"
            "    # repro: lint-ignore[DET002] profiling\n"
            "    return time.time()\n"
        )
        result = lint_source(source, path="fake.py")
        assert result.clean

    def test_suppression_is_rule_specific(self):
        source = (
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro: lint-ignore[DET001] wrong rule\n"
        )
        result = lint_source(source, path="fake.py")
        assert rules_fired(result) == {"DET002"}

    def test_multi_code_suppression(self):
        source = (
            "import time, random\n"
            "def f():\n"
            "    # repro: lint-ignore[DET001,DET002] demo of both\n"
            "    return time.time() + random.random()\n"
        )
        result = lint_source(source, path="fake.py")
        assert result.clean
        assert len(result.suppressed) == 2

    def test_parse_suppressions_flags_missing_reason(self):
        suppressions, malformed = parse_suppressions(
            ["x = 1  # repro: lint-ignore[DET001]"]
        )
        assert suppressions == []
        assert malformed == [1]


class TestBaseline:
    def test_round_trip_grandfathers_everything(self, tmp_path):
        baseline_path = str(tmp_path / "baseline.json")
        before = lint_paths([BAD])
        assert not before.clean
        count = write_baseline(before.findings, baseline_path)
        assert count == len({f.fingerprint for f in before.findings})

        after = run_lint([BAD], baseline_path=baseline_path)
        assert after.clean, render_text(after)
        assert after.exit_code() == 0
        assert len(after.baselined) == len(before.findings)
        assert after.stale_baseline == []

    def test_stale_entries_are_reported(self, tmp_path):
        baseline_path = str(tmp_path / "baseline.json")
        fake = Finding(
            rule="DET001",
            severity="error",
            path="src/nowhere.py",
            line=1,
            col=0,
            message="gone",
            snippet="random.random()",
        )
        write_baseline([fake], baseline_path)
        result = run_lint([GOOD], baseline_path=baseline_path)
        assert result.stale_baseline == [fake.fingerprint]

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_baseline(str(bad))
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"version": 99, "baseline": []}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(str(wrong))

    def test_fingerprint_survives_line_renumbering(self):
        source = "import time\ndef f():\n    return time.time()\n"
        shifted = "import time\n\n\n\ndef f():\n    return time.time()\n"
        first = lint_source(source, path="same.py").findings
        second = lint_source(shifted, path="same.py").findings
        assert [f.fingerprint for f in first] == [f.fingerprint for f in second]
        assert first[0].line != second[0].line


class TestJsonOutput:
    def test_schema(self):
        result = lint_paths([os.path.join(BAD, "det001_bad.py")])
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["clean"] is False
        assert payload["files"] == 1
        assert isinstance(payload["counts"], dict)
        assert payload["counts"]["DET001"] >= 3
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule",
                "severity",
                "path",
                "line",
                "col",
                "message",
                "snippet",
                "hops",
                "fingerprint",
            }
            assert finding["severity"] in ("error", "warning")
            assert finding["line"] >= 1
            assert len(finding["fingerprint"]) == 16


class TestConfig:
    def test_wallclock_allowlist_silences_det002(self):
        source = "import time\ndef f():\n    return time.time()\n"
        config = LintConfig(wallclock_allowlist=("myobs",))
        result = lint_source(source, path="x.py", config=config, module="myobs")
        assert result.clean

    def test_allowlist_matches_dotted_prefix(self):
        config = LintConfig(wallclock_allowlist=("repro.obs",))
        assert config.allows_wallclock("repro.obs.spans")
        assert not config.allows_wallclock("repro.observer")

    def test_worker_loop_except_exception_needs_escape(self):
        source = (
            "def loop(q, f):\n"
            "    while True:\n"
            "        try:\n"
            "            f(q)\n"
            "        except Exception:\n"
            "            continue\n"
        )
        config = LintConfig(worker_modules=("fake.worker",))
        flagged = lint_source(
            source, path="w.py", config=config, module="fake.worker"
        )
        assert rules_fired(flagged) == {"EXC001"}
        # same code outside a worker module is allowed
        relaxed = lint_source(
            source, path="w.py", config=config, module="fake.other"
        )
        assert relaxed.clean

    def test_select_restricts_rules(self):
        result = lint_paths(
            [BAD], config=LintConfig(select=("DET001",))
        )
        assert rules_fired(result) == {"DET001"}

    def test_module_name_derivation(self):
        assert (
            module_name_for_path("/x/src/repro/exec/pool.py")
            == "repro.exec.pool"
        )
        assert (
            module_name_for_path("repo/src/repro/obs/__init__.py")
            == "repro.obs"
        )
        assert module_name_for_path("lint_fixtures/bad/det001_bad.py") == (
            "det001_bad"
        )

    def test_rule_ids_are_unique(self):
        ids = rule_ids()
        assert len(ids) == len(set(ids))
        assert {"DET001", "EXC001", "SUP001", "PARSE001"} <= set(ids)


# ----------------------------------------------------------------------
# Tier-1 self-check: the shipped tree is clean
# ----------------------------------------------------------------------


class TestSelfCheck:
    def test_src_repro_is_clean_against_committed_baseline(self):
        result = run_lint([SRC], baseline_path=BASELINE)
        assert result.clean, (
            "new lint findings in src/repro — fix them, suppress inline "
            "with a reason, or (for pre-existing debt only) add them to "
            "lint-baseline.json:\n" + render_text(result)
        )

    def test_committed_baseline_has_no_stale_entries(self):
        result = run_lint([SRC], baseline_path=BASELINE)
        assert result.stale_baseline == [], (
            "lint-baseline.json contains entries that no longer match "
            "any finding; prune them: " + ", ".join(result.stale_baseline)
        )

    def test_inline_suppressions_in_src_carry_reasons(self):
        # every suppression that fires in src must have parsed (reasoned);
        # malformed ones surface as SUP001 findings and fail the gate above,
        # so here we just document how many reasoned suppressions exist
        result = run_lint([SRC], baseline_path=BASELINE)
        assert all(f.rule for f in result.suppressed)

    def test_apply_baseline_is_exported(self):
        # the public surface used by CI scripts
        assert callable(apply_baseline)
        assert callable(run_lint)
