"""The paper's claims as executable assertions.

Each test cites the claim it reproduces.  The target is Jenkins & Demers
(ICDCS 2001); the K-TREE/K-DIAMOND theorems come from the follow-on
analysis and exercise the extension modules.
"""

import math

import pytest

from repro.core.existence import build_lhg, regular_exists
from repro.core.jenkins_demers import (
    is_jd_constructible,
    jd_gap_sizes,
    jenkins_demers_graph,
)
from repro.core.kdiamond import (
    kdiamond_graph,
    kdiamond_only_regular_sizes,
    kdiamond_regular_exists,
)
from repro.core.ktree import ktree_exists, ktree_graph, ktree_regular_exists
from repro.core.properties import check_lhg
from repro.graphs.generators.classic import complete_bipartite_graph
from repro.graphs.generators.harary import harary_graph, harary_minimum_edges
from repro.graphs.properties import is_k_regular
from repro.graphs.traversal import diameter


class TestLHGDefinition:
    """Properties 1-4 hold for every construction (the core claim)."""

    @pytest.mark.parametrize("n,k", [(6, 3), (10, 3), (16, 3), (20, 4), (18, 5)])
    def test_jd_graphs_are_lhgs(self, n, k):
        graph, _ = jenkins_demers_graph(n, k)
        report = check_lhg(graph, k)
        assert report.is_lhg, report.summary()

    def test_base_case_is_complete_bipartite(self):
        """The smallest LHG for (2k, k) is K_{k,k}."""
        graph, _ = jenkins_demers_graph(8, 4)
        expected = complete_bipartite_graph(4, 4)
        assert graph.number_of_edges() == expected.number_of_edges()
        assert sorted(graph.degrees().values()) == sorted(
            expected.degrees().values()
        )
        assert diameter(graph) == 2


class TestHeadlineDiameterClaim:
    """LHG diameter is O(log n); Harary diameter is Theta(n/k)."""

    def test_lhg_diameter_logarithmic(self):
        k = 3
        points = []
        for n in (6, 22, 86, 342):
            graph, _ = build_lhg(n, k)
            points.append((n, diameter(graph)))
        for n, diam in points:
            assert diam <= 4 * math.log2(n) + 4

    def test_harary_diameter_linear(self):
        k = 4
        diams = {n: diameter(harary_graph(k, n)) for n in (32, 64, 128)}
        assert diams[64] >= 1.8 * diams[32]
        assert diams[128] >= 1.8 * diams[64]

    def test_crossover_lhg_wins_beyond_small_n(self):
        k = 4
        for n in (32, 64, 128, 256):
            lhg, _ = build_lhg(n, k)
            assert diameter(lhg) < diameter(harary_graph(k, n))


class TestEdgeMinimalityClaim:
    """Both families sit at (or within a hair of) Harary's kn/2 bound."""

    def test_regular_lhgs_match_harary_bound_exactly(self):
        for k in (3, 4):
            for alpha in range(4):
                n = 2 * k + 2 * alpha * (k - 1)
                graph, _ = jenkins_demers_graph(n, k)
                assert graph.number_of_edges() == harary_minimum_edges(k, n)

    def test_irregular_points_small_excess(self):
        # each of the <= 2k-3 added leaves costs ~k/2 edges over the bound
        for n, k in [(7, 3), (9, 3), (11, 4), (15, 4)]:
            graph, _ = ktree_graph(n, k)
            excess = graph.number_of_edges() - harary_minimum_edges(k, n)
            assert 0 <= excess <= (2 * k - 3) * k / 2 + 1


class TestFaultToleranceClaim:
    """Resilient to exactly k-1 failures: k-1 never disconnects, k can."""

    @pytest.mark.parametrize("n,k", [(10, 3), (14, 4)])
    def test_all_k_minus_1_subsets_leave_connected(self, n, k):
        from itertools import combinations

        from repro.graphs.traversal import is_connected

        graph, _ = build_lhg(n, k)
        for victims in combinations(graph.nodes(), k - 1):
            assert is_connected(graph.without_nodes(victims))

    @pytest.mark.parametrize("n,k", [(10, 3), (14, 4)])
    def test_some_k_subset_disconnects(self, n, k):
        from repro.graphs.connectivity import minimum_node_cut
        from repro.graphs.traversal import is_connected

        graph, _ = build_lhg(n, k)
        cut = minimum_node_cut(graph)
        assert len(cut) == k
        assert not is_connected(graph.without_nodes(cut))


class TestJDCoverageGaps:
    """The JD rule misses infinitely many pairs (follow-on observation)."""

    def test_gaps_exist_for_every_k(self):
        for k in (3, 4, 5, 6):
            assert jd_gap_sizes(k, 6 * k)

    def test_odd_offset_family_always_gapped(self):
        # n = 2k + 2a(k-1) + 3 is unconstructible for every a
        k = 3
        for alpha in range(6):
            n = 2 * k + 2 * alpha * (k - 1) + 3
            assert not is_jd_constructible(n, k)

    def test_ktree_closes_every_gap(self):
        # Theorem 2 (extension): EX_K-TREE(n,k) = true iff n >= 2k
        for k in (3, 4, 5):
            for n in range(2 * k, 2 * k + 40):
                assert ktree_exists(n, k)
                graph, _ = ktree_graph(n, k)
                assert graph.number_of_nodes() == n


class TestRegularityTheorems:
    """Theorems 3, 6 and 7 of the follow-on analysis (extension)."""

    def test_theorem3_ktree_regular_points(self):
        k = 3
        for n in range(2 * k, 40):
            expected = (n - 2 * k) % (2 * (k - 1)) == 0
            assert ktree_regular_exists(n, k) == expected

    def test_theorem6_kdiamond_regular_points(self):
        k = 4
        for n in range(2 * k, 50):
            expected = (n - 2 * k) % (k - 1) == 0
            assert kdiamond_regular_exists(n, k) == expected

    def test_theorem7_infinitely_many_kdiamond_only_points(self):
        # odd-alpha sizes: regular via K-DIAMOND, impossible via K-TREE
        for k in (3, 4, 5):
            only = kdiamond_only_regular_sizes(k, 10 * k)
            assert len(only) >= 3
            for n in only:
                graph, _ = kdiamond_graph(n, k)
                assert is_k_regular(graph, k)
                assert not regular_exists(n, k, "k-tree")

    def test_regular_graphs_have_exactly_kn_over_2_edges(self):
        for k in (3, 4):
            for n in kdiamond_only_regular_sizes(k, 8 * k)[:3]:
                graph, _ = kdiamond_graph(n, k)
                assert graph.number_of_edges() == k * n // 2


class TestFloodingClaims:
    """Flooding latency tracks the diameter; message cost tracks edges."""

    def test_flood_time_equals_source_eccentricity(self):
        from repro.flooding.experiments import run_flood
        from repro.graphs.traversal import eccentricity

        graph, _ = build_lhg(46, 3)
        for source in graph.nodes()[:5]:
            result = run_flood(graph, source)
            assert result.completion_time == float(eccentricity(graph, source))

    def test_flood_messages_near_2m(self):
        from repro.flooding.experiments import run_flood

        graph, _ = build_lhg(30, 3)
        result = run_flood(graph, graph.nodes()[0])
        m = graph.number_of_edges()
        # every node forwards to deg-1 neighbours (source: deg):
        # total = 2m - (n - 1)
        assert result.messages == 2 * m - (graph.number_of_nodes() - 1)
