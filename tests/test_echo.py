"""Tests for the flood-and-echo (PIF) protocol."""

import pytest

from repro.core.existence import build_lhg
from repro.errors import ProtocolError, SimulationError
from repro.flooding.experiments import run_echo
from repro.flooding.failures import FailureSchedule, crash_before_start
from repro.graphs.generators.classic import cycle_graph, path_graph, star_graph
from repro.graphs.traversal import eccentricity


class TestHappyPath:
    def test_counts_all_nodes(self):
        graph, _ = build_lhg(22, 3)
        protocol = run_echo(graph, graph.nodes()[0])
        assert protocol.completed
        assert protocol.aggregate == 22

    def test_completion_near_twice_eccentricity(self):
        graph, _ = build_lhg(46, 3)
        source = graph.nodes()[0]
        protocol = run_echo(graph, source)
        ecc = eccentricity(graph, source)
        assert 2 * ecc <= protocol.completed_at <= 2 * ecc + 4

    def test_custom_aggregate_max(self):
        g = cycle_graph(7)
        protocol = run_echo(
            g, 0, value_of=lambda node: node, combine=max
        )
        assert protocol.completed
        assert protocol.aggregate == 6

    def test_sum_of_values(self):
        g = star_graph(4)
        protocol = run_echo(g, 0, value_of=lambda node: 10)
        assert protocol.aggregate == 50  # 5 nodes x 10

    def test_parent_tree_spans_graph(self):
        graph, _ = build_lhg(14, 3)
        source = graph.nodes()[0]
        protocol = run_echo(graph, source)
        assert protocol.covered() == set(graph.nodes())
        assert protocol.parent[source] is None
        roots = [v for v, p in protocol.parent.items() if p is None]
        assert roots == [source]

    def test_single_edge_graph(self):
        g = path_graph(2)
        protocol = run_echo(g, 0)
        assert protocol.completed
        assert protocol.aggregate == 2


class TestUnderFailures:
    def test_crash_blocks_completion(self):
        graph, _ = build_lhg(22, 3)
        source = graph.nodes()[0]
        victim = graph.nodes()[5]
        protocol = run_echo(
            graph, source, failures=crash_before_start([victim])
        )
        assert not protocol.completed
        assert protocol.echoes_pending()  # someone waits on the dead node

    def test_wave_still_covers_survivors(self):
        graph, _ = build_lhg(22, 3)
        source = graph.nodes()[0]
        victim = graph.nodes()[5]
        protocol = run_echo(
            graph, source, failures=crash_before_start([victim])
        )
        # k-connectivity: the wave reaches every survivor even though
        # the echo cannot complete
        assert protocol.covered() >= set(graph.nodes()) - {victim}

    def test_crashed_source_rejected(self):
        g = cycle_graph(5)
        with pytest.raises(SimulationError):
            run_echo(g, 0, failures=crash_before_start([0]))

    def test_late_crash_after_completion_harmless(self):
        graph, _ = build_lhg(14, 3)
        source = graph.nodes()[0]
        schedule = FailureSchedule().crash(graph.nodes()[3], time=1000.0)
        protocol = run_echo(graph, source, failures=schedule)
        assert protocol.completed


class TestProtocolContract:
    def test_unexpected_payload_rejected(self):
        from repro.flooding.network import Network, NodeApi
        from repro.flooding.protocols.echo import EchoProtocol
        from repro.flooding.simulator import Simulator

        sim = Simulator()
        net = Network(cycle_graph(4), sim)
        protocol = EchoProtocol(net, 0)
        api = NodeApi(net, 0)
        protocol.on_start(0, api)
        with pytest.raises(ProtocolError):
            protocol.on_message(0, "garbage", 1, api)

    def test_unexpected_echo_rejected(self):
        from repro.flooding.network import Network, NodeApi
        from repro.flooding.protocols.echo import EchoProtocol, _Echo
        from repro.flooding.simulator import Simulator

        sim = Simulator()
        net = Network(cycle_graph(4), sim)
        protocol = EchoProtocol(net, 0)
        api = NodeApi(net, 0)
        protocol.on_start(0, api)
        protocol.on_message(0, _Echo(aggregate=1), 1, api)  # expected: 1 owes one
        with pytest.raises(ProtocolError):
            protocol.on_message(0, _Echo(aggregate=1), 1, api)  # duplicate
