"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs.graph import Graph


# (n, k) pairs small enough for exhaustive connectivity checks but
# covering every construction regime: base size, added leaves, unshared
# slots, multi-level trees, and both k parities.
SMALL_PAIRS = [
    (4, 2),
    (5, 2),
    (9, 2),
    (6, 3),
    (7, 3),
    (9, 3),
    (10, 3),
    (11, 3),
    (14, 3),
    (17, 3),
    (8, 4),
    (11, 4),
    (14, 4),
    (15, 4),
    (20, 4),
    (10, 5),
    (13, 5),
    (18, 5),
    (21, 5),
    (12, 6),
    (22, 6),
    (14, 7),
    (16, 8),
    (23, 8),
]

# JD-constructible subset (even offsets with eligible hosts).
JD_PAIRS = [
    (4, 2),
    (6, 2),
    (8, 2),
    (6, 3),
    (10, 3),
    (12, 3),
    (14, 3),
    (8, 4),
    (14, 4),
    (16, 4),
    (20, 4),
    (10, 5),
    (18, 5),
]


@pytest.fixture
def triangle() -> Graph:
    """K_3 — the smallest 2-connected graph."""
    return Graph(edges=[(0, 1), (1, 2), (0, 2)], name="triangle")


@pytest.fixture
def square_with_tail() -> Graph:
    """A 4-cycle with a pendant node: articulation structure for cut tests."""
    return Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4)], name="tailed")


@pytest.fixture
def two_triangles_bridge() -> Graph:
    """Two triangles joined by one bridge edge — λ = 1, κ = 1."""
    return Graph(
        edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)],
        name="bridge",
    )
