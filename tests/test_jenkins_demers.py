"""Tests for the Jenkins–Demers construction — the paper's core result."""

import pytest

from repro.errors import InfeasiblePairError
from repro.core.jenkins_demers import (
    JDPlan,
    expected_dimensions,
    is_jd_constructible,
    jd_constructible_sizes,
    jd_feasibility,
    jd_gap_sizes,
    jd_regular_sizes,
    jenkins_demers_graph,
)
from repro.core.properties import check_lhg
from repro.graphs.properties import is_k_regular
from repro.graphs.traversal import diameter

from tests.conftest import JD_PAIRS


class TestFeasibility:
    def test_base_size_always_works(self):
        for k in (2, 3, 4, 5, 6):
            assert is_jd_constructible(2 * k, k)

    def test_below_base_never_works(self):
        assert not is_jd_constructible(5, 3)
        assert not is_jd_constructible(7, 4)

    def test_invalid_domain_raises(self):
        with pytest.raises(InfeasiblePairError):
            jd_feasibility(10, 1)
        with pytest.raises(InfeasiblePairError):
            jd_feasibility(3, 3)

    def test_odd_offsets_infeasible(self):
        # n = 2k + 2a(k-1) + odd is never constructible
        for k in (3, 4, 5):
            for alpha in range(4):
                n = 2 * k + 2 * alpha * (k - 1) + 3
                assert not is_jd_constructible(n, k), (n, k)

    def test_near_base_evens_infeasible(self):
        # just above 2k there is no non-root interior to host extras
        assert not is_jd_constructible(8, 3)  # 2k + 2
        assert not is_jd_constructible(10, 4)  # 2k + 2

    def test_known_coverage_k3(self):
        assert jd_constructible_sizes(3, 30) == [
            6, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30,
        ]
        assert jd_gap_sizes(3, 20) == [7, 8, 9, 11, 13, 15, 17, 19]

    def test_gaps_are_infinite_in_spirit(self):
        # gap count grows with the horizon (odd offsets never close)
        assert len(jd_gap_sizes(4, 60)) > len(jd_gap_sizes(4, 30))

    def test_plan_accounting(self):
        plan = jd_feasibility(16, 3)
        assert plan is not None
        assert plan.base_nodes + 2 * plan.extra_pairs == 16


class TestConstruction:
    @pytest.mark.parametrize("n,k", JD_PAIRS)
    def test_builds_requested_size(self, n, k):
        graph, cert = jenkins_demers_graph(n, k)
        assert graph.number_of_nodes() == n
        assert cert.k == k
        assert cert.rule == "jenkins-demers"
        cert.verify_graph(graph)

    @pytest.mark.parametrize("n,k", JD_PAIRS)
    def test_satisfies_lhg_properties(self, n, k):
        graph, _ = jenkins_demers_graph(n, k)
        report = check_lhg(graph, k)
        assert report.node_connected, report.summary()
        assert report.link_connected, report.summary()
        assert report.link_minimal, report.summary()
        if k >= 3:
            assert report.log_diameter, report.summary()

    def test_infeasible_pair_raises_with_reason(self):
        with pytest.raises(InfeasiblePairError) as excinfo:
            jenkins_demers_graph(13, 3)
        assert "odd offset" in str(excinfo.value)

    def test_near_base_failure_reason(self):
        with pytest.raises(InfeasiblePairError) as excinfo:
            jenkins_demers_graph(8, 3)
        assert "non-root" in str(excinfo.value)

    def test_below_minimum_reason(self):
        with pytest.raises(InfeasiblePairError) as excinfo:
            jenkins_demers_graph(5, 3)
        assert "minimum size" in str(excinfo.value)

    def test_expected_dimensions_match(self):
        for n, k in JD_PAIRS:
            plan = jd_feasibility(n, k)
            graph, _ = jenkins_demers_graph(n, k)
            nodes, edges = expected_dimensions(plan)
            assert graph.number_of_nodes() == nodes
            assert graph.number_of_edges() == edges


class TestRegularity:
    def test_regular_sizes_formula(self):
        assert jd_regular_sizes(3, 30) == [6, 10, 14, 18, 22, 26, 30]
        assert jd_regular_sizes(4, 30) == [8, 14, 20, 26]

    def test_clean_sizes_are_k_regular(self):
        for k in (2, 3, 4):
            for n in jd_regular_sizes(k, 6 * k):
                graph, _ = jenkins_demers_graph(n, k)
                assert is_k_regular(graph, k), (n, k)

    def test_extra_leaf_sizes_are_irregular(self):
        graph, _ = jenkins_demers_graph(12, 3)  # 2k + 2(k-1) + 2 extras
        assert not is_k_regular(graph, 3)
        degrees = sorted(set(graph.degrees().values()))
        assert degrees[0] == 3


class TestDiameterShape:
    def test_base_is_diameter_two(self):
        graph, _ = jenkins_demers_graph(8, 4)
        assert diameter(graph) == 2

    def test_diameter_grows_logarithmically(self):
        k = 3
        sizes_and_diams = []
        for n in (6, 22, 86, 342):  # 2k + 2a(k-1) ladder, full levels
            if is_jd_constructible(n, k):
                graph, _ = jenkins_demers_graph(n, k)
                sizes_and_diams.append((n, diameter(graph)))
        # 57x more nodes but the diameter stays within the log budget
        import math

        first, last = sizes_and_diams[0], sizes_and_diams[-1]
        assert last[0] / first[0] > 50
        assert last[1] / first[1] <= 8
        for n, diam in sizes_and_diams:
            assert diam <= 4 * math.log2(n) + 4
