"""Unit tests for the Graph data structure."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphs.graph import Graph, edge_key


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert len(g) == 0
        assert g.number_of_nodes() == 0
        assert g.number_of_edges() == 0

    def test_from_nodes_and_edges(self):
        g = Graph(nodes=[1, 2], edges=[(2, 3)])
        assert set(g.nodes()) == {1, 2, 3}
        assert g.number_of_edges() == 1

    def test_edge_adds_endpoints(self):
        g = Graph(edges=[("a", "b")])
        assert g.has_node("a") and g.has_node("b")

    def test_name_in_repr(self):
        g = Graph(name="demo")
        assert "demo" in repr(g)


class TestMutation:
    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(0)
        g.add_node(0)
        assert g.number_of_nodes() == 1

    def test_add_edge_idempotent(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert g.number_of_edges() == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(3, 3)

    def test_remove_node_drops_incident_edges(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        g.remove_node(1)
        assert not g.has_node(1)
        assert g.number_of_edges() == 1
        assert g.has_edge(0, 2)

    def test_remove_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph().remove_node(9)

    def test_remove_edge(self):
        g = Graph(edges=[(0, 1)])
        g.remove_edge(1, 0)
        assert g.number_of_edges() == 0
        assert g.has_node(0) and g.has_node(1)

    def test_remove_missing_edge_raises(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 1)

    def test_clear(self):
        g = Graph(edges=[(0, 1)])
        g.clear()
        assert len(g) == 0


class TestQueries:
    def test_contains_unhashable_probe(self):
        g = Graph(nodes=[1])
        assert [1] not in g  # must not raise

    def test_neighbors_defensive_copy(self):
        g = Graph(edges=[(0, 1)])
        g.neighbors(0).add(99)
        assert not g.has_edge(0, 99)
        assert g.neighbors(0) == {1}

    def test_neighbors_missing_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph().neighbors(0)

    def test_degree(self):
        g = Graph(edges=[(0, 1), (0, 2)])
        assert g.degree(0) == 2
        assert g.degree(2) == 1
        assert g.degrees() == {0: 2, 1: 1, 2: 1}

    def test_min_max_degree(self):
        g = Graph(edges=[(0, 1), (0, 2)])
        assert g.min_degree() == 1
        assert g.max_degree() == 2
        assert Graph().min_degree() == 0
        assert Graph().max_degree() == 0

    def test_edges_reported_once(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        assert len(g.edges()) == 2
        assert len(list(g.iter_edges())) == 2

    def test_edge_key_symmetric(self):
        assert edge_key(1, 2) == edge_key(2, 1)

    def test_adjacency_deep_copy(self):
        g = Graph(edges=[(0, 1)])
        with pytest.warns(DeprecationWarning):
            adj = g.adjacency()
        adj[0].add(7)
        assert not g.has_edge(0, 7)

    def test_adjacency_view_zero_copy_read_only(self):
        g = Graph(edges=[(0, 1)])
        view = g.adjacency_view()
        assert view[0] == {1}
        with pytest.raises(TypeError):
            view[2] = set()
        g.add_edge(0, 7)
        assert 7 in view[0]  # live view, not a snapshot

    def test_oracle_surface(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        assert g.num_nodes() == 3
        assert list(g.iter_nodes()) == [0, 1, 2]


class TestDerivedGraphs:
    def test_copy_independent(self):
        g = Graph(edges=[(0, 1)], name="orig")
        clone = g.copy()
        clone.add_edge(1, 2)
        assert not g.has_node(2)
        assert clone.name == "orig"

    def test_equality_structural(self):
        a = Graph(edges=[(0, 1)])
        b = Graph(edges=[(1, 0)])
        assert a == b
        b.add_node(2)
        assert a != b

    def test_equality_other_type(self):
        assert Graph() != 17

    def test_subgraph_induced(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        sub = g.subgraph([0, 1, 2])
        assert sub.number_of_nodes() == 3
        assert sub.number_of_edges() == 3

    def test_subgraph_ignores_unknown(self):
        g = Graph(edges=[(0, 1)])
        sub = g.subgraph([0, 99])
        assert set(sub.nodes()) == {0}

    def test_without_nodes(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        reduced = g.without_nodes([1])
        assert set(reduced.nodes()) == {0, 2}
        assert reduced.number_of_edges() == 0
        assert g.has_node(1)  # original untouched

    def test_without_edges(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        reduced = g.without_edges([(0, 1)])
        assert reduced.number_of_edges() == 1
        assert g.number_of_edges() == 2

    def test_union(self):
        a = Graph(edges=[(0, 1)])
        b = Graph(edges=[(1, 2)])
        u = a.union(b)
        assert u.number_of_edges() == 2
        assert set(u.nodes()) == {0, 1, 2}

    def test_relabeled(self):
        g = Graph(edges=[(0, 1)])
        relabeled = g.relabeled({0: "zero", 1: "one"})
        assert relabeled.has_edge("zero", "one")

    def test_relabeled_partial(self):
        g = Graph(edges=[(0, 1)])
        relabeled = g.relabeled({0: 10})
        assert relabeled.has_edge(10, 1)

    def test_relabeled_non_injective_raises(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(GraphError):
            g.relabeled({0: "x", 1: "x"})

    def test_complement(self):
        g = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        comp = g.complement()
        assert comp.has_edge(0, 2) and comp.has_edge(1, 2)
        assert not comp.has_edge(0, 1)


class TestPredicates:
    def test_regular(self):
        cycle = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        assert cycle.is_regular()
        assert cycle.regular_degree() == 2

    def test_irregular(self):
        g = Graph(edges=[(0, 1), (0, 2)])
        assert not g.is_regular()
        assert g.regular_degree() is None

    def test_empty_graph_regular_conventions(self):
        assert Graph().is_regular()
        assert Graph().regular_degree() is None

    def test_density(self):
        assert Graph(edges=[(0, 1), (1, 2), (2, 0)]).density() == 1.0
        assert Graph(nodes=[0]).density() == 0.0
