"""Tests for network event tracing."""

import pytest

from repro.core.existence import build_lhg
from repro.flooding.failures import FailureSchedule, apply_schedule
from repro.flooding.network import Network
from repro.flooding.protocols.flood import FloodProtocol
from repro.flooding.simulator import Simulator
from repro.flooding.trace import TraceCollector
from repro.graphs.generators.classic import cycle_graph, path_graph


def traced_flood(graph, source, schedule=None, trace=None, loss_rate=0.0):
    simulator = Simulator()
    network = Network(graph, simulator, loss_rate=loss_rate, loss_seed=1)
    if trace is not None:
        network.add_observer(trace)
    if schedule is not None:
        apply_schedule(schedule, network, simulator)
    protocol = FloodProtocol(network, source)
    network.attach(protocol, start_nodes=[source])
    simulator.run()
    return network


class TestCollection:
    def test_send_deliver_counts_match_stats(self):
        trace = TraceCollector()
        network = traced_flood(cycle_graph(8), 0, trace=trace)
        counts = trace.counts()
        assert counts["send"] == network.stats.messages_sent
        assert counts["deliver"] == network.stats.messages_delivered

    def test_crash_events_recorded(self):
        trace = TraceCollector()
        schedule = FailureSchedule().crash(3, time=1.0)
        traced_flood(cycle_graph(8), 0, schedule=schedule, trace=trace)
        crash = trace.first("crash")
        assert crash is not None
        assert crash.node == 3
        assert crash.time == 1.0

    def test_drop_reasons(self):
        trace = TraceCollector()
        traced_flood(cycle_graph(8), 0, trace=trace, loss_rate=0.5)
        reasons = {e.detail for e in trace.of_kind("drop")}
        assert "loss" in reasons

    def test_link_down_event(self):
        trace = TraceCollector()
        sim = Simulator()
        net = Network(path_graph(2), sim)
        net.add_observer(trace)
        net.fail_link(0, 1)
        assert trace.first("link-down") is not None

    def test_messages_between(self):
        trace = TraceCollector()
        traced_flood(path_graph(4), 0, trace=trace)
        assert len(trace.messages_between(0, 1)) == 1
        assert len(trace.messages_between(1, 2)) == 1
        assert trace.messages_between(3, 0) == []

    def test_payload_capture_optional(self):
        bare = TraceCollector()
        rich = TraceCollector(keep_payloads=True)
        sim = Simulator()
        net = Network(path_graph(2), sim)
        net.add_observer(bare)
        net.add_observer(rich)
        protocol = FloodProtocol(net, 0)
        net.attach(protocol, start_nodes=[0])
        sim.run()
        assert bare.of_kind("send")[0].detail == ""
        assert "FloodMessage" in rich.of_kind("send")[0].detail

    def test_limit_truncates(self):
        trace = TraceCollector(limit=3)
        traced_flood(cycle_graph(10), 0, trace=trace)
        assert len(trace.events) == 3
        assert trace.truncated > 0


class TestNonPerturbation:
    def test_traced_run_is_bit_identical(self):
        graph, _ = build_lhg(20, 3)
        source = graph.nodes()[0]
        plain = traced_flood(graph, source)
        traced = traced_flood(graph, source, trace=TraceCollector())
        assert plain.delivery_times == traced.delivery_times
        assert plain.stats.messages_sent == traced.stats.messages_sent


class TestAnalysis:
    def test_activity_histogram(self):
        trace = TraceCollector()
        traced_flood(path_graph(5), 0, trace=trace)
        histogram = trace.activity_histogram(bucket=1.0)
        # on a path one message is in flight per unit interval
        assert sum(histogram.values()) == trace.counts()["send"]

    def test_histogram_domain(self):
        with pytest.raises(ValueError):
            TraceCollector().activity_histogram(bucket=0)

    def test_render_timeline(self):
        trace = TraceCollector()
        traced_flood(path_graph(3), 0, trace=trace)
        text = trace.render_timeline(limit=2)
        assert "send" in text
        assert "more events" in text


class TestTruncationAccounting:
    def test_observed_counts_include_truncated_events(self):
        trace = TraceCollector(limit=3)
        traced_flood(cycle_graph(10), 0, trace=trace)
        stored = sum(trace.counts().values())
        observed = sum(trace.observed_counts().values())
        assert stored == 3
        assert observed == stored + trace.truncated_events
        assert trace.truncated_events == trace.truncated > 0

    def test_untruncated_counts_agree(self):
        trace = TraceCollector()
        traced_flood(cycle_graph(8), 0, trace=trace)
        assert trace.truncated_events == 0
        assert trace.counts() == trace.observed_counts()

    def test_summary_calls_out_truncation(self):
        trace = TraceCollector(limit=3)
        traced_flood(cycle_graph(10), 0, trace=trace)
        summary = trace.summary()
        assert str(trace.truncated_events) in summary
        assert "not stored" in summary

    def test_render_timeline_reports_truncated_share(self):
        trace = TraceCollector(limit=3)
        traced_flood(cycle_graph(10), 0, trace=trace)
        text = trace.render_timeline()
        assert "storage limit" in text
        assert str(trace.truncated_events) in text

    def test_export_events_appends_truncation_record(self):
        trace = TraceCollector(limit=3)
        traced_flood(cycle_graph(10), 0, trace=trace)
        records = trace.export_events()
        assert len(records) == 4  # 3 stored + 1 truncation marker
        marker = records[-1]
        assert marker["kind"] == "trace-truncated"
        assert marker["count"] == trace.truncated_events
        assert marker["observed"] == trace.observed_counts()

    def test_export_events_clean_when_not_truncated(self):
        trace = TraceCollector()
        traced_flood(path_graph(4), 0, trace=trace)
        records = trace.export_events()
        assert all(r["kind"] != "trace-truncated" for r in records)
        assert len(records) == len(trace.events)

    def test_write_jsonl_roundtrip(self, tmp_path):
        import json as json_mod

        trace = TraceCollector(limit=3)
        traced_flood(cycle_graph(10), 0, trace=trace)
        path = str(tmp_path / "trace.jsonl")
        count = trace.write_jsonl(path)
        with open(path) as handle:
            lines = [json_mod.loads(line) for line in handle]
        assert len(lines) == count == 4
        assert lines[-1]["kind"] == "trace-truncated"
