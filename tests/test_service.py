"""Tests for the soak service: workload, SLOs, degradation, resume.

The acceptance bar mirrors the service's two headline claims:

* a crash burst of **k** members drives the service into the explicit
  ``DEGRADED`` state (never an exception) and it returns to ``HEALTHY``
  only after re-verifying Properties 1–4 on the repaired topology;
* a checkpointed soak that is SIGKILL'd partway through and resumed
  produces an SLO report **byte-identical** to an uninterrupted run
  with the same seed — including through the CLI.
"""

# repro: lint-ignore-file[DET002] kill-resume drivers need a real wall-clock watchdog around the subprocess victim

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.core.existence import build_lhg
from repro.errors import ReproError
from repro.robustness import check_topology_invariants
from repro.service import (
    DEGRADED,
    HEALTHY,
    AlertPolicy,
    BurnRateMonitor,
    SoakConfig,
    SoakService,
    poisson_draw,
    run_soak,
    zipf_pick,
    zipf_weights,
)
from repro.service.slo import LATENCY_BUCKETS, SLOTracker, percentile


class TestWorkload:
    def test_poisson_draw_deterministic(self):
        a = [poisson_draw(random.Random(7), 2.0) for _ in range(5)]
        b = [poisson_draw(random.Random(7), 2.0) for _ in range(5)]
        assert a == b

    def test_poisson_mean_tracks_rate(self):
        rng = random.Random(3)
        draws = [poisson_draw(rng, 2.5) for _ in range(4000)]
        assert 2.3 < sum(draws) / len(draws) < 2.7

    def test_poisson_zero_rate_is_zero(self):
        assert poisson_draw(random.Random(0), 0.0) == 0
        assert poisson_draw(random.Random(0), -1.0) == 0

    def test_poisson_rejects_non_finite(self):
        with pytest.raises(ReproError):
            poisson_draw(random.Random(0), float("nan"))

    def test_zipf_weights_decay(self):
        weights = zipf_weights(5, 1.0)
        assert weights == [1.0, 0.5, 1 / 3, 0.25, 0.2]

    def test_zipf_pick_prefers_early_ranks(self):
        rng = random.Random(11)
        items = list("abcdefgh")
        picks = [zipf_pick(rng, items, 1.2) for _ in range(2000)]
        assert picks.count("a") > picks.count("h") * 3

    def test_zipf_pick_empty_errors(self):
        with pytest.raises(ReproError):
            zipf_pick(random.Random(0), [])


class TestPercentile:
    def _snap(self, values):
        tracker = SLOTracker()
        for value in values:
            tracker.flood_completed(value, messages=1, covered=1, reachable=1)
        return tracker.registry.histograms["soak.flood.latency"].snapshot()

    def test_empty_histogram_is_zero(self):
        tracker = SLOTracker()
        assert tracker.latency_percentiles() == {
            "p50": 0.0,
            "p99": 0.0,
            "p999": 0.0,
        }

    def test_median_of_uniform_fill(self):
        snap = self._snap([1, 2, 3, 4])
        assert percentile(snap, 0.5) == 2.0
        assert percentile(snap, 1.0) == 4.0

    def test_overflow_reports_recorded_max(self):
        snap = self._snap([999.0])
        assert percentile(snap, 0.99) == 999.0

    def test_bad_quantile_rejected(self):
        snap = self._snap([1])
        with pytest.raises(ReproError):
            percentile(snap, 0.0)
        with pytest.raises(ReproError):
            percentile(snap, 1.5)

    def test_buckets_cover_lhg_diameters(self):
        # p999 resolution needs single-hop granularity where floods live
        assert LATENCY_BUCKETS[0] == 1.0
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)


class TestTopologyInvariants:
    def test_clean_lhg_has_no_violations(self):
        graph, _ = build_lhg(14, 3)
        assert check_topology_invariants(graph, 3) == []

    def test_damaged_graph_names_failed_properties(self):
        graph, _ = build_lhg(14, 3)
        node = graph.nodes()[0]
        for neighbor in sorted(graph.neighbors(node), key=repr)[:2]:
            graph.remove_edge(node, neighbor)
        names = {v.invariant for v in check_topology_invariants(graph, 3)}
        assert "P1-node-connectivity" in names

    def test_bootstrap_regime_uses_complete_graph_bound(self):
        from repro.graphs.generators.classic import complete_graph

        graph = complete_graph(4)  # n < 2k for k=3: no LHG exists
        assert check_topology_invariants(graph, 3, expect_lhg=False) == []

    def test_bootstrap_violation_detected(self):
        from repro.graphs.generators.classic import path_graph

        graph = path_graph(4)
        violations = check_topology_invariants(graph, 3, expect_lhg=False)
        assert [v.invariant for v in violations] == ["bootstrap-connectivity"]

    def test_trivial_graphs_vacuously_pass(self):
        from repro.graphs.graph import Graph

        empty = Graph()
        assert check_topology_invariants(empty, 3) == []


class TestSoakConfig:
    def test_rejects_sub_lhg_population(self):
        with pytest.raises(ReproError):
            SoakConfig(population=5, k=3)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ReproError):
            SoakConfig(k=1)
        with pytest.raises(ReproError):
            SoakConfig(duration=0)
        with pytest.raises(ReproError):
            SoakConfig(backoff_base=4, backoff_cap=2)
        with pytest.raises(ReproError):
            SoakConfig(bursts=((3, 0),))
        with pytest.raises(ReproError):
            SoakConfig(max_wall=0.0)

    def test_digest_stable_and_seed_sensitive(self):
        a = SoakConfig(seed=1)
        assert a.digest() == SoakConfig(seed=1).digest()
        assert a.digest() != SoakConfig(seed=2).digest()

    def test_digest_ignores_wall_budget(self):
        # a journal written under a wall budget must resume without one
        assert SoakConfig(max_wall=5.0).digest() == SoakConfig().digest()


CFG = dict(
    population=14,
    k=3,
    duration=40,
    churn_rate=0.5,
    flood_rate=1.5,
    verify_every=10,
    seed=7,
)


class TestSoakRun:
    def test_steady_state_stays_healthy(self):
        report = run_soak(SoakConfig(**CFG))
        assert report["final_state"] == HEALTHY
        assert report.violations() == []
        assert report["floods"]["completed"] > 0
        assert report["verify"]["runs"] >= 4
        assert report["verify"]["failures"] == 0

    def test_report_is_deterministic(self):
        config = SoakConfig(**CFG)
        assert run_soak(config).to_json() == run_soak(config).to_json()

    def test_seed_changes_the_run(self):
        a = run_soak(SoakConfig(**{**CFG, "seed": 1}))
        b = run_soak(SoakConfig(**{**CFG, "seed": 2}))
        assert a.to_json() != b.to_json()

    def test_k_burst_degrades_then_recovers(self):
        """The acceptance criterion: k crashes -> DEGRADED -> re-verify."""
        config = SoakConfig(**{**CFG, "bursts": ((12, 3),)})
        report = run_soak(config)  # burst of k=3 > k-1: guarantee voided
        windows = report["degradation"]["windows"]
        assert len(windows) >= 1
        first = windows[0]
        assert first["start"] == 12
        assert first["cause"] in ("burst", "partition")
        assert first["end"] is not None  # recovery happened...
        assert report["final_state"] == HEALTHY
        # ...and was *proven*: the post-repair verify battery passed
        assert report["verify"]["runs"] > 0
        assert report["verify"]["failures"] == 0
        assert report["repair"]["convergence"]["count"] >= 1

    def test_oversized_burst_never_raises(self):
        config = SoakConfig(**{**CFG, "bursts": ((8, 6), (20, 5))})
        report = run_soak(config)  # 2k bursts: far past the paper's model
        assert report["degradation"]["count"] >= 2
        assert report["final_state"] == HEALTHY

    def test_admission_control_sheds_over_budget(self):
        config = SoakConfig(
            **{**CFG, "flood_rate": 6.0, "flood_budget": 2, "duration": 20}
        )
        report = run_soak(config)
        assert report["floods"]["shed"] > 0
        shed_total = report["floods"]["shed"] + report["floods"]["completed"]
        assert report["floods"]["shed_fraction"] == pytest.approx(
            report["floods"]["shed"] / shed_total
        )

    def test_wall_budget_truncates_cleanly(self):
        config = SoakConfig(**{**CFG, "duration": 10_000, "max_wall": 0.05})
        report = run_soak(config)
        assert report["truncated"] is True
        assert 0 < report["ticks"] < 10_000

    def test_degraded_state_halves_admission_budget(self):
        # a long repair backlog: every tick a forced burst restarts it
        config = SoakConfig(
            **{
                **CFG,
                "duration": 16,
                "flood_rate": 5.0,
                "flood_budget": 4,
                "repair_edge_budget": 1,
                "bursts": tuple((t, 2) for t in range(4, 10)),
            }
        )
        report = run_soak(config)
        assert report["degradation"]["count"] >= 1
        assert report["repair"]["restarts"] >= 1

    def test_emergency_rebuild_bounds_the_backlog(self):
        config = SoakConfig(
            **{
                **CFG,
                "duration": 30,
                "repair_edge_budget": 1,  # glacial repair
                "repair_retries": 1,  # ...with almost no patience
                "bursts": tuple((t, 2) for t in range(5, 17, 2)),
            }
        )
        report = run_soak(config)
        assert report["repair"]["emergency"] >= 1
        assert report["final_state"] == HEALTHY


class TestSoakCheckpoint:
    def test_journaled_run_matches_plain(self, tmp_path):
        config = SoakConfig(**CFG)
        plain = run_soak(config).to_json()
        journaled = run_soak(
            config, checkpoint=tmp_path / "soak.jsonl"
        ).to_json()
        assert journaled == plain

    def test_truncated_journal_resumes_byte_identical(self, tmp_path):
        config = SoakConfig(**{**CFG, "bursts": ((12, 3),)})
        plain = run_soak(config).to_json()
        journal = tmp_path / "soak.jsonl"
        run_soak(config, checkpoint=journal)
        # simulate a crash: drop everything after the meta + 14 ticks
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[:15]))
        resumed = run_soak(config, checkpoint=journal, resume=True)
        assert resumed.to_json() == plain
        # the resumed run appended the missing ticks, not a second copy
        assert len(journal.read_text().splitlines()) == len(lines)

    def test_resume_refuses_config_mismatch(self, tmp_path):
        journal = tmp_path / "soak.jsonl"
        run_soak(SoakConfig(**CFG), checkpoint=journal)
        with pytest.raises(ReproError, match="different configuration"):
            run_soak(
                SoakConfig(**{**CFG, "seed": 99}),
                checkpoint=journal,
                resume=True,
            )

    def test_existing_journal_without_resume_refused(self, tmp_path):
        journal = tmp_path / "soak.jsonl"
        run_soak(SoakConfig(**CFG), checkpoint=journal)
        with pytest.raises(ValueError, match="already exists"):
            run_soak(SoakConfig(**CFG), checkpoint=journal)

    def test_resume_without_checkpoint_rejected(self):
        with pytest.raises(ValueError):
            run_soak(SoakConfig(**CFG), resume=True)

    def test_divergent_journal_fails_loudly(self, tmp_path):
        config = SoakConfig(**CFG)
        journal = tmp_path / "soak.jsonl"
        run_soak(config, checkpoint=journal)
        # corrupt one journaled tick's flood latency in place
        lines = journal.read_text().splitlines()
        doctored = []
        for line in lines:
            record = json.loads(line)
            payload = record["payload"]
            if isinstance(payload, dict) and payload.get("floods"):
                for flood in payload["floods"]:
                    if not flood.get("shed"):
                        flood["latency"] = flood["latency"] + 17.0
            doctored.append(json.dumps(record, sort_keys=True))
        journal.write_text("\n".join(doctored) + "\n")
        with pytest.raises(ReproError, match="diverged"):
            SoakService(config, checkpoint=journal, resume=True).run()


def _cli(args, env, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
    )


class TestKillResumeSelfTest:
    """Crash-injection self-test: SIGKILL a soak mid-run and resume it."""

    def test_sigkilled_soak_resumes_byte_identical(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        args = [
            "soak", "14", "3",
            "--duration", "300",
            "--seed", "7",
            "--burst", "40:3",
            "--json",
        ]
        journal = tmp_path / "soak.jsonl"

        uninterrupted = _cli(args, env)
        assert uninterrupted.returncode == 0, uninterrupted.stderr

        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", *args, "--checkpoint", str(journal)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        # hard-kill as soon as a batch of ticks is journaled (mid-run)
        deadline = time.time() + 60
        while time.time() < deadline and victim.poll() is None:
            if journal.exists() and journal.read_text().count("\n") >= 10:
                victim.send_signal(signal.SIGKILL)
                break
            time.sleep(0.005)
        victim.wait(timeout=60)

        completed = journal.read_text().count("\n") if journal.exists() else 0
        resumed = _cli(
            args + ["--checkpoint", str(journal), "--resume"], env
        )
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == uninterrupted.stdout  # byte-identical
        # the journal was continued, not restarted: meta + one line per tick
        total = journal.read_text().count("\n")
        assert total == 301
        assert total >= completed


class TestAlertPolicy:
    def test_defaults_validate(self):
        policy = AlertPolicy()
        assert policy.budget == pytest.approx(0.05)
        assert policy.as_dict()["objective"] == 0.95

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"objective": 0.0},
            {"objective": 1.0},
            {"latency_slo": 0.0},
            {"fast_window": 0},
            {"slow_window": 2},  # must exceed fast_window
            {"fast_burn": 0.0},
            {"slow_burn": -1.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ReproError):
            AlertPolicy(**kwargs)


def _record(tick, crashes=(), pending=0, verify=(), floods=(), **extra):
    """A synthetic soak tick record in the shape SoakService journals."""
    record = {
        "tick": tick,
        "joins": [],
        "crashes": list(crashes),
        "pending_repair": pending,
        "floods": list(floods),
        "verify": list(verify),
        "repair": None,
        "transitions": [],
        "state": HEALTHY,
        "population": 14,
        "live": 14,
        "in_flight": 0,
    }
    record.update(extra)
    return record


class TestBurnRateMonitor:
    def test_healthy_stream_never_alerts(self):
        monitor = BurnRateMonitor(k=3)
        for tick in range(40):
            assert monitor.observe(_record(tick)) is None
        assert not monitor.active
        assert monitor.payload()["count"] == 0

    def test_burst_beyond_tolerance_opens_on_the_burst_tick(self):
        monitor = BurnRateMonitor(k=3)
        transitions = {}
        for tick in range(40):
            crashes = ["a", "b", "c"] if tick == 10 else []
            out = monitor.observe(_record(tick, crashes=crashes))
            if out:
                transitions[out] = tick
        assert transitions["open"] == 10
        # a single bad tick holds slow burn >= 1 for slow_window ticks
        assert 10 < transitions["close"] <= 10 + AlertPolicy().slow_window + 1
        events = monitor.payload()["events"]
        assert len(events) == 1
        assert events[0]["causes"] == ["burst-beyond-tolerance"]

    def test_burst_within_tolerance_is_quiet(self):
        monitor = BurnRateMonitor(k=3)
        for tick in range(30):
            crashes = ["a", "b"] if tick == 10 else []  # k-1: tolerated
            assert monitor.observe(_record(tick, crashes=crashes)) is None

    def test_causes_accumulate_across_the_slow_window(self):
        # A burst at tick 5 opens (and closes) a first alert; a verify
        # failure at tick 10 opens a second one whose slow window still
        # contains the burst, so the new alert names both causes.
        monitor = BurnRateMonitor(k=3)
        for tick in range(12):
            kwargs = {}
            if tick == 5:
                kwargs["crashes"] = ["a", "b", "c"]
            if tick == 10:
                kwargs["verify"] = [{"ok": False}]
            monitor.observe(_record(tick, **kwargs))
        events = monitor.payload()["events"]
        assert len(events) == 2
        assert events[0]["causes"] == ["burst-beyond-tolerance"]
        assert events[1]["causes"] == [
            "burst-beyond-tolerance", "verify-failed",
        ]

    def test_slow_flood_is_a_cause(self):
        policy = AlertPolicy(latency_slo=4.0)
        monitor = BurnRateMonitor(k=3, policy=policy)
        assert monitor.tick_errors(
            _record(0, floods=[{"latency": 9.0, "messages": 10,
                                "covered": 5, "reachable": 5}])
        ) == ("slow-flood",)

    def test_snapshot_gauges_shape(self):
        monitor = BurnRateMonitor(k=3)
        monitor.observe(_record(0))
        gauges = monitor.snapshot_gauges()
        assert set(gauges) >= {
            "soak.burn.fast", "soak.burn.slow",
            "soak.alerts.active", "soak.alerts.total", "soak.latency.p99",
        }

    def test_still_open_alert_has_no_close(self):
        monitor = BurnRateMonitor(k=2)
        monitor.observe(_record(0, crashes=["a", "b"]))
        payload = monitor.payload()
        assert payload["open"] is not None
        assert payload["events"][0]["closed"] is None


class TestSoakAlerts:
    def test_burst_alert_brackets_degradation_window(self):
        config = SoakConfig(**{**CFG, "bursts": ((12, 3),)})
        report = run_soak(config)
        windows = report["degradation"]["windows"]
        alerts = report["alerts"]["events"]
        assert windows and alerts
        window = windows[0]
        covering = [
            a for a in alerts
            if a["opened"] <= window["start"]
            and a["closed"] is not None
            and a["closed"] >= window["end"]
        ]
        assert covering, (window, alerts)

    def test_healthy_soak_reports_no_alerts(self):
        report = run_soak(SoakConfig(**CFG))
        assert report["alerts"]["count"] == 0
        assert report["alerts"]["events"] == []

    def test_alerts_in_summary_and_deterministic(self):
        config = SoakConfig(**{**CFG, "bursts": ((12, 3),)})
        report = run_soak(config)
        assert "alert" in report.summary()
        assert run_soak(config).to_json() == report.to_json()

    def test_custom_policy_changes_sensitivity(self):
        config = SoakConfig(**{**CFG, "bursts": ((12, 3),)})
        lax = AlertPolicy(fast_burn=400.0, slow_burn=400.0)
        report = run_soak(config, alert_policy=lax)
        assert report["alerts"]["count"] == 0


class TestSoakMetricsStream:
    def test_streams_on_cadence_with_alert_gauges(self, tmp_path):
        from repro.obs import MetricsStream

        jsonl = tmp_path / "m.jsonl"
        om = tmp_path / "m.om"
        config = SoakConfig(**{**CFG, "bursts": ((12, 3),)})
        with MetricsStream(str(jsonl), openmetrics_path=str(om)) as stream:
            run_soak(config, metrics=stream, metrics_every=5)
            # every 5 ticks plus the final tick
            assert stream.exports == CFG["duration"] // 5
        rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert [r["tick"] for r in rows][:3] == [4, 9, 14]
        assert rows[-1]["tick"] == CFG["duration"] - 1
        # alert gauges ride along; the burst tick window shows it active
        active = [r["metrics"]["gauges"]["soak.alerts.active"] for r in rows]
        assert 1.0 in active
        for row in rows:
            assert "soak.population" in row["metrics"]["gauges"]
        text = om.read_text()
        assert text.endswith("# EOF\n")
        assert "repro_soak_alerts_total" in text

    def test_streaming_does_not_change_the_report(self, tmp_path):
        from repro.obs import MetricsStream

        config = SoakConfig(**{**CFG, "bursts": ((12, 3),)})
        plain = run_soak(config).to_json()
        with MetricsStream(str(tmp_path / "m.jsonl")) as stream:
            streamed = run_soak(config, metrics=stream, metrics_every=3)
        assert streamed.to_json() == plain

    def test_streaming_under_installed_collector_no_double_count(self, tmp_path):
        # the live tracker must not mirror into the collector: the
        # collector metrics would otherwise double every observation
        from repro import obs
        from repro.obs import MetricsStream

        config = SoakConfig(**CFG)
        obs.uninstall()
        collector = obs.install()
        plain = run_soak(config)
        plain_counters = dict(collector.metrics.snapshot()["counters"])
        obs.uninstall()

        collector = obs.install()
        with MetricsStream(str(tmp_path / "m.jsonl")) as stream:
            streamed = run_soak(config, metrics=stream, metrics_every=4)
        streamed_counters = dict(collector.metrics.snapshot()["counters"])
        obs.uninstall()
        assert streamed.to_json() == plain.to_json()
        assert streamed_counters == plain_counters

    def test_bad_cadence_rejected(self):
        with pytest.raises(ReproError):
            SoakService(SoakConfig(**CFG), metrics_every=0)
