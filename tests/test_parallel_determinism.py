"""Parallelism must be invisible: workers=N reproduces workers=1 exactly.

These tests pin the engine's core guarantee — a fanned-out run is
byte-identical to the serial one — at three levels: the campaign's
resilience matrix (cell dataclasses and rendered table), raw flood
traces (every send/deliver/drop event in order), and experiment-spec
grids mapped through the pool.  CI runs this module with 2 workers as
its parallel-determinism gate.
"""

from __future__ import annotations

import pytest

from repro.core.existence import build_lhg
from repro.exec import TopologySpec, WorkerPool
from repro.flooding import (
    ExperimentSpec,
    Network,
    Simulator,
    TraceCollector,
    run_experiment,
)
from repro.flooding.failures import apply_schedule, random_crashes
from repro.flooding.protocols.flood import FloodProtocol
from repro.robustness import ChaosCampaign, standard_scenarios

N, K = 24, 3
WORKER_COUNTS = (2, 4)


@pytest.fixture(scope="module")
def graph():
    built, _ = build_lhg(N, K)
    return built


def _small_campaign(graph):
    scenarios = [
        s
        for s in standard_scenarios(loss_rates=(0.2,))
        if s.name in ("baseline", "loss-0.2", "crash-recover")
    ]
    return ChaosCampaign(
        [(graph.name, graph)], scenarios=scenarios, seeds=(0, 1)
    )


def _traced_flood(task):
    """One fully-traced flood; returns plain, comparable event data."""
    graph, seed = task
    source = graph.nodes()[0]
    schedule = random_crashes(graph, K - 1, seed=seed, protect={source})
    simulator = Simulator()
    network = Network(graph, simulator)
    trace = TraceCollector()
    network.add_observer(trace)
    apply_schedule(schedule, network, simulator)
    protocol = FloodProtocol(network, source)
    network.attach(protocol, start_nodes=[source])
    simulator.run(max_events=1_000_000)
    return trace.events


class TestCampaignDeterminism:
    def test_matrix_is_identical_across_worker_counts(self, graph):
        campaign = _small_campaign(graph)
        serial = campaign.run(workers=1)
        assert campaign.last_report.mode == "serial"
        for workers in WORKER_COUNTS:
            fanned = _small_campaign(graph).run(workers=workers)
            assert fanned.cells == serial.cells

    def test_rendered_matrix_is_byte_identical(self, graph):
        serial = _small_campaign(graph).run(workers=1).render()
        fanned = _small_campaign(graph).run(workers=2).render()
        assert fanned == serial

    def test_cell_order_is_grid_order(self, graph):
        campaign = _small_campaign(graph)
        matrix = campaign.run(workers=4)
        expected = [
            (scenario.name, spec.name, seed)
            for scenario in campaign.scenarios
            for spec in campaign.protocols
            for seed in campaign.seeds
        ]
        observed = [
            (cell.scenario, cell.protocol, cell.seed) for cell in matrix.cells
        ]
        assert observed == expected

    def test_spec_given_topologies_match_prebuilt(self, graph):
        spec = TopologySpec(N, K)
        by_spec = ChaosCampaign(
            [(graph.name, spec)],
            scenarios=[s for s in standard_scenarios() if s.name == "baseline"],
            seeds=(0,),
        ).run(workers=2)
        prebuilt = ChaosCampaign(
            [(graph.name, graph)],
            scenarios=[s for s in standard_scenarios() if s.name == "baseline"],
            seeds=(0,),
        ).run(workers=1)
        assert by_spec.cells == prebuilt.cells


class TestTraceDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_flood_traces_are_identical(self, graph, workers):
        tasks = [(graph, seed) for seed in range(6)]
        serial = WorkerPool(workers=1).map(_traced_flood, tasks)
        fanned = WorkerPool(workers=workers).map(_traced_flood, tasks)
        assert fanned == serial
        # the traces are non-trivial: real sends and deliveries happened
        assert all(any(e.kind == "send" for e in t) for t in serial)


class TestSpecGridDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_spec_grid_through_pool_matches_serial(self, graph, workers):
        source = graph.nodes()[0]
        specs = [
            ExperimentSpec(
                protocol=protocol,
                graph=graph,
                source=source,
                seed=seed,
                loss_rate=0.2,
                loss_seed=seed,
            )
            for protocol in ("reliable-flood", "arq-flood")
            for seed in range(3)
        ]
        serial = [run_experiment(spec) for spec in specs]
        fanned = WorkerPool(workers=workers).map(run_experiment, specs)
        assert fanned == serial
        assert all(s.result.delivery_times for s in fanned)


def _churn_series(seed):
    """Generate + replay one churn trace; return a comparable series."""
    from repro.overlay.churn import generate_trace, replay

    trace = generate_trace(events=30, target_population=N, k=K, seed=seed)
    return replay(trace, k=K)


class TestChurnReplayDeterminism:
    """The soak service's churn path through the supervised pool.

    Trace generation and replay are the primitives the long-running
    service's workload rests on; identical seeds must yield identical
    ChurnCost series whether replayed serially or fanned across
    supervised workers.
    """

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_supervised_replay_matches_serial(self, workers):
        from repro.exec import SupervisorConfig

        seeds = list(range(5))
        serial = WorkerPool(workers=1).map(_churn_series, seeds)
        fanned = WorkerPool(
            workers=workers,
            supervisor=SupervisorConfig(timeout=60.0, retries=1),
        ).map(_churn_series, seeds)
        assert fanned == serial
        # the series are non-trivial: real joins and leaves were replayed
        assert all(any(c.event == "leave" for c in s) for s in serial)
        # ...bootstrapping up from n=1 and never dipping below 2k after
        assert all(all(c.total_churn >= 0 for c in s) for s in serial)
        assert all(s[-1].n_after >= 2 * K for s in serial)
