"""Tests for reliable (ACK/retransmit) flooding."""

import pytest

from repro.core.existence import build_lhg
from repro.errors import ProtocolError
from repro.flooding.experiments import repeat_runs, run_flood, run_reliable_flood
from repro.flooding.failures import crash_before_start
from repro.flooding.network import Network
from repro.flooding.protocols.reliable import ReliableFloodProtocol
from repro.flooding.simulator import Simulator
from repro.graphs.generators.classic import cycle_graph, path_graph


class TestParameters:
    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        net = Network(cycle_graph(4), sim)
        with pytest.raises(ProtocolError):
            ReliableFloodProtocol(net, 0, retry_timeout=0.0)
        with pytest.raises(ProtocolError):
            ReliableFloodProtocol(net, 0, max_retries=-1)


class TestLosslessBehaviour:
    def test_coverage_and_message_shape(self):
        graph, _ = build_lhg(20, 3)
        source = graph.nodes()[0]
        result = run_reliable_flood(graph, source)
        assert result.fully_covered
        plain = run_flood(graph, source)
        # data copies match plain flooding; ACKs double the bill
        assert result.messages == 2 * plain.messages

    def test_no_retransmissions_without_loss(self):
        g = path_graph(5)
        sim = Simulator()
        net = Network(g, sim)
        protocol = ReliableFloodProtocol(net, 0)
        net.attach(protocol, start_nodes=[0])
        sim.run()
        assert protocol.retransmissions == 0
        assert len(protocol.seen) == 5


class TestLossyBehaviour:
    def test_full_coverage_at_heavy_loss(self):
        graph, _ = build_lhg(30, 3)
        source = graph.nodes()[0]
        for seed in range(5):
            result = run_reliable_flood(
                graph, source, loss_rate=0.4, loss_seed=seed
            )
            assert result.fully_covered, seed

    def test_beats_plain_flooding_at_same_loss(self):
        graph, _ = build_lhg(30, 3)
        source = graph.nodes()[0]
        plain = repeat_runs(run_flood, graph, source, None, 10, loss_rate=0.45)
        reliable = repeat_runs(
            run_reliable_flood, graph, source, None, 10, loss_rate=0.45
        )
        assert reliable.mean_delivery_ratio() > plain.mean_delivery_ratio()
        assert reliable.mean_delivery_ratio() == 1.0

    def test_overhead_grows_with_loss(self):
        graph, _ = build_lhg(30, 3)
        source = graph.nodes()[0]
        low = run_reliable_flood(graph, source, loss_rate=0.1, loss_seed=3)
        high = run_reliable_flood(graph, source, loss_rate=0.5, loss_seed=3)
        assert high.messages > low.messages

    def test_retry_budget_exhaustion_gives_up(self):
        # max_retries=0 at extreme loss behaves like plain flooding
        graph, _ = build_lhg(20, 3)
        source = graph.nodes()[0]
        result = run_reliable_flood(
            graph, source, loss_rate=0.9, loss_seed=2, max_retries=0
        )
        assert result.covered < result.n


class TestWithCrashes:
    def test_crash_tolerance_retained(self):
        graph, _ = build_lhg(20, 3)
        source = graph.nodes()[0]
        victims = [graph.nodes()[4], graph.nodes()[7]]
        result = run_reliable_flood(
            graph,
            source,
            failures=crash_before_start(victims),
            loss_rate=0.3,
            loss_seed=1,
        )
        # k-1 crashes + 30% loss: reliability machinery still covers all
        assert result.fully_covered
