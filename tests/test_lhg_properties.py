"""Tests for the LHG property verifier (Properties 1-5)."""

import pytest

from repro.errors import GraphError
from repro.core.existence import build_lhg
from repro.core.properties import check_lhg, is_lhg, theoretical_diameter_bound
from repro.graphs.graph import Graph
from repro.graphs.generators.classic import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.generators.harary import harary_graph
from repro.graphs.traversal import diameter


class TestPositiveCases:
    def test_constructions_are_lhgs(self):
        for n, k in [(6, 3), (13, 3), (20, 4), (14, 4)]:
            graph, _ = build_lhg(n, k)
            assert is_lhg(graph, k)

    def test_report_fields(self):
        graph, _ = build_lhg(10, 3)
        report = check_lhg(graph, 3)
        assert report.n == 10 and report.k == 3
        assert report.is_lhg
        assert report.k_regular
        assert report.exact_diameter
        assert report.diameter == diameter(graph)
        assert "ok" in report.summary()

    def test_small_harary_is_lhg_for_small_n(self):
        # at small n the linear diameter still fits the log budget
        assert is_lhg(harary_graph(4, 12), 4)


class TestNegativeCases:
    def test_path_fails_connectivity(self):
        report = check_lhg(path_graph(6), 2)
        assert not report.node_connected
        assert not report.is_lhg

    def test_complete_graph_fails_minimality(self):
        report = check_lhg(complete_graph(6), 3)
        assert report.node_connected
        assert not report.link_minimal
        assert not report.is_lhg

    def test_large_harary_fails_log_diameter(self):
        # linear diameter eventually exceeds the log budget
        report = check_lhg(harary_graph(4, 200), 4)
        assert report.node_connected and report.link_connected
        assert not report.log_diameter
        assert not report.is_lhg

    def test_cycle_with_chord_fails_minimality(self):
        g = cycle_graph(8)
        g.add_edge(0, 4)
        report = check_lhg(g, 2)
        assert not report.link_minimal

    def test_disconnected_graph(self):
        g = Graph(nodes=[0, 1, 2])
        report = check_lhg(g, 1)
        assert not report.node_connected
        assert not report.log_diameter

    def test_star_regularity_flag(self):
        report = check_lhg(star_graph(4), 1)
        assert not report.k_regular


class TestCheckerOptions:
    def test_exact_minimality_forced(self):
        g = complete_graph(5)
        report = check_lhg(g, 4, minimality_exact=True)
        assert report.link_minimal

    def test_fast_minimality_only_may_be_conservative(self):
        g = complete_graph(5)
        # degree witness: every edge endpoint has degree 4 = k, so True
        report = check_lhg(g, 4, minimality_exact=False)
        assert report.link_minimal

    def test_sampled_diameter_beyond_limit(self):
        graph, _ = build_lhg(120, 3)
        report = check_lhg(graph, 3, exact_diameter_limit=50)
        assert not report.exact_diameter
        assert report.diameter <= diameter(graph)

    def test_domain_checks(self):
        with pytest.raises(GraphError):
            check_lhg(Graph(), 3)
        with pytest.raises(GraphError):
            check_lhg(cycle_graph(4), 0)


class TestDiameterBound:
    def test_real_diameter_within_certificate_bound(self):
        for n, k in [(6, 3), (17, 3), (46, 3), (20, 4), (38, 4)]:
            graph, cert = build_lhg(n, k)
            assert diameter(graph) <= theoretical_diameter_bound(cert)
