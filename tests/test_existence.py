"""Tests for the EX/REG characteristic functions and the build facade."""

import pytest

from repro.errors import ConstructionError, InfeasiblePairError
from repro.core.existence import (
    build_lhg,
    coverage_table,
    exists,
    regular_exists,
    regularity_table,
)
from repro.graphs.properties import is_k_regular


class TestExists:
    def test_rule_dispatch(self):
        assert exists(8, 3, rule="k-tree")
        assert exists(8, 3, rule="k-diamond")
        assert not exists(8, 3, rule="jenkins-demers")

    def test_unknown_rule(self):
        with pytest.raises(ConstructionError):
            exists(8, 3, rule="nope")

    def test_regular_exists_dispatch(self):
        assert regular_exists(8, 3, rule="k-diamond")
        assert not regular_exists(8, 3, rule="k-tree")
        assert regular_exists(10, 3, rule="jenkins-demers")
        assert not regular_exists(12, 3, rule="jenkins-demers")

    def test_regular_unknown_rule(self):
        with pytest.raises(ConstructionError):
            regular_exists(8, 3, rule="nope")


class TestBuildFacade:
    def test_auto_prefers_jd_at_clean_sizes(self):
        _, cert = build_lhg(10, 3)
        assert cert.rule == "jenkins-demers"

    def test_auto_uses_kdiamond_for_extra_regularity(self):
        # n=8, k=3: JD cannot build; K-DIAMOND gives a 3-regular graph
        graph, cert = build_lhg(8, 3)
        assert cert.rule == "k-diamond"
        assert is_k_regular(graph, 3)

    def test_auto_falls_back_to_ktree(self):
        # n=9, k=3: JD no; K-DIAMOND regular no (9-6 odd); K-TREE yes
        graph, cert = build_lhg(9, 3, prefer_regular=True)
        assert graph.number_of_nodes() == 9
        assert cert.rule in ("k-tree", "k-diamond")

    def test_auto_without_regular_preference(self):
        _, cert = build_lhg(8, 3, prefer_regular=False)
        assert cert.rule == "k-tree"

    def test_named_rules(self):
        for rule in ("jenkins-demers", "k-tree", "k-diamond"):
            graph, cert = build_lhg(10, 3, rule=rule)
            assert graph.number_of_nodes() == 10
            assert cert.rule == rule

    def test_auto_infeasible(self):
        with pytest.raises(InfeasiblePairError):
            build_lhg(5, 3)
        with pytest.raises(InfeasiblePairError):
            build_lhg(4, 1)

    def test_unknown_rule(self):
        with pytest.raises(ConstructionError):
            build_lhg(10, 3, rule="bogus")


class TestTables:
    def test_coverage_rows(self):
        rows = coverage_table(3, 12)
        assert rows[0] == (6, True, True, True)
        assert rows[1] == (7, False, True, True)
        assert rows[4] == (10, True, True, True)

    def test_ktree_kdiamond_columns_identical(self):
        # Corollary 1: EX equivalence
        for _, jd, ktree, kdiamond in coverage_table(4, 40):
            assert ktree == kdiamond
            assert not jd or ktree  # JD subset of K-TREE

    def test_regularity_rows(self):
        rows = regularity_table(3, 12)
        table = {n: (jd, kt, kd) for n, jd, kt, kd in rows}
        assert table[6] == (True, True, True)
        assert table[8] == (False, False, True)
        assert table[10] == (True, True, True)
        assert table[7] == (False, False, False)

    def test_regularity_implication(self):
        # REG_K-TREE => REG_K-DIAMOND (Corollary 2)
        for _, jd, ktree, kdiamond in regularity_table(5, 60):
            assert not ktree or kdiamond
