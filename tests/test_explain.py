"""Tests for the construction narration (explain_construction)."""

import pytest

from repro.core.existence import explain_construction
from repro.errors import InfeasiblePairError


class TestExplain:
    def test_base_case_two_steps_plus_result(self):
        steps = explain_construction(6, 3, rule="jenkins-demers")
        assert len(steps) == 3
        assert "K_{3,3}" in steps[1]
        assert "6 nodes, 9 edges" in steps[-1]

    def test_conversion_step_present(self):
        steps = explain_construction(10, 3, rule="jenkins-demers")
        assert any("convert 1 leaves" in step for step in steps)

    def test_unshared_step_for_kdiamond(self):
        steps = explain_construction(8, 3, rule="k-diamond")
        assert any("unshared" in step and "clique" in step for step in steps)

    def test_added_leaf_step_for_ktree(self):
        steps = explain_construction(9, 3, rule="k-tree")
        assert any("added shared leaf" in step for step in steps)

    def test_counts_in_result_match_reality(self):
        from repro.core.existence import build_lhg

        for n, k in [(13, 3), (20, 4), (11, 4)]:
            graph, _ = build_lhg(n, k)
            steps = explain_construction(n, k)
            assert f"{graph.number_of_nodes()} nodes" in steps[-1]
            assert f"{graph.number_of_edges()} edges" in steps[-1]

    def test_infeasible_propagates(self):
        with pytest.raises(InfeasiblePairError):
            explain_construction(5, 3)

    def test_cli_explain_flag(self, capsys):
        from repro.cli import main

        assert main(["build", "13", "3", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "target: an LHG" in out
