"""Tests for articulation points, bridges and biconnected components."""

import pytest

from repro.core.existence import build_lhg
from repro.graphs.decomposition import (
    articulation_points,
    biconnected_components,
    bridges,
    is_biconnected,
)
from repro.graphs.graph import Graph, edge_key
from repro.graphs.generators.classic import (
    balanced_tree,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestArticulationPoints:
    def test_cycle_has_none(self):
        assert articulation_points(cycle_graph(7)) == set()

    def test_path_interior_nodes(self):
        assert articulation_points(path_graph(5)) == {1, 2, 3}

    def test_star_hub(self):
        assert articulation_points(star_graph(4)) == {0}

    def test_tree_interiors(self):
        tree = balanced_tree(2, 2)  # 7 nodes: root + 2 interiors are cuts
        assert articulation_points(tree) == {0, 1, 2}

    def test_two_blocks_sharing_a_node(self):
        # two triangles glued at node 2
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        assert articulation_points(g) == {2}

    def test_bridge_endpoints(self, two_triangles_bridge):
        assert articulation_points(two_triangles_bridge) == {2, 3}

    def test_disconnected_components_independent(self):
        g = Graph(edges=[(0, 1), (1, 2), (3, 4), (4, 5)])
        assert articulation_points(g) == {1, 4}

    def test_empty_and_singletons(self):
        assert articulation_points(Graph()) == set()
        assert articulation_points(Graph(nodes=[1, 2])) == set()


class TestBridges:
    def test_cycle_has_none(self):
        assert bridges(cycle_graph(6)) == set()

    def test_every_tree_edge_is_a_bridge(self):
        tree = balanced_tree(2, 2)
        assert len(bridges(tree)) == tree.number_of_edges()

    def test_bridge_graph(self, two_triangles_bridge):
        assert bridges(two_triangles_bridge) == {edge_key(2, 3)}

    def test_complete_graph_none(self):
        assert bridges(complete_graph(5)) == set()


class TestBiconnectedComponents:
    def test_single_block(self):
        comps = biconnected_components(cycle_graph(5))
        assert len(comps) == 1
        assert comps[0] == set(range(5))

    def test_glued_triangles(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        comps = biconnected_components(g)
        assert sorted(sorted(c) for c in comps) == [[0, 1, 2], [2, 3, 4]]

    def test_path_gives_edge_blocks(self):
        comps = biconnected_components(path_graph(4))
        assert sorted(sorted(c) for c in comps) == [[0, 1], [1, 2], [2, 3]]

    def test_isolated_node_is_singleton(self):
        g = Graph(nodes=["solo"], edges=[(0, 1)])
        comps = biconnected_components(g)
        assert {"solo"} in comps


class TestIsBiconnected:
    def test_positive(self):
        assert is_biconnected(cycle_graph(4))
        assert is_biconnected(petersen_graph())

    def test_negative(self):
        assert not is_biconnected(path_graph(4))
        assert not is_biconnected(Graph(edges=[(0, 1)]))
        assert not is_biconnected(Graph(nodes=[0, 1, 2]))


class TestAgainstConstructionsAndNetworkx:
    def test_lhgs_have_no_cut_structure(self):
        for n, k in [(10, 3), (13, 3), (14, 4)]:
            graph, _ = build_lhg(n, k)
            assert articulation_points(graph) == set()
            assert bridges(graph) == set()
            assert is_biconnected(graph)

    def test_matches_networkx_on_random_graphs(self):
        networkx = pytest.importorskip("networkx")
        from repro.graphs.generators.random import gnp_random_graph
        from repro.graphs.nxcompat import to_networkx

        for seed in range(8):
            g = gnp_random_graph(14, 0.2, seed=seed)
            nx_graph = to_networkx(g)
            assert articulation_points(g) == set(
                networkx.articulation_points(nx_graph)
            )
            assert bridges(g) == {
                edge_key(u, v) for u, v in networkx.bridges(nx_graph)
            }
