"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; these tests keep them from
rotting.  Each script must exit 0 within its timeout (they all carry
internal assertions, so a passing run also validates their claims).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"


def test_every_example_has_a_docstring_header():
    for script in SCRIPTS:
        text = script.read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python3', '"""')), script
        assert '"""' in text, f"{script.name} lacks a module docstring"


def test_expected_example_count():
    assert len(SCRIPTS) >= 9
