"""Tests for spectral measures (Laplacian, algebraic connectivity)."""

import math

import pytest

from repro.core.existence import build_lhg
from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.generators.classic import (
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.analysis.spectral import (
    algebraic_connectivity,
    laplacian_matrix,
    laplacian_spectrum,
    spectral_gap,
    spectral_profile,
)

pytest.importorskip("numpy")


class TestLaplacian:
    def test_rows_sum_to_zero(self):
        import numpy as np

        matrix, _ = laplacian_matrix(cycle_graph(6))
        assert np.allclose(matrix.sum(axis=1), 0.0)

    def test_spectrum_starts_at_zero(self):
        spectrum = laplacian_spectrum(cycle_graph(5))
        assert abs(spectrum[0]) < 1e-9

    def test_complete_graph_spectrum(self):
        # K_n: eigenvalues 0 and n (n-1 times)
        spectrum = laplacian_spectrum(complete_graph(5))
        assert abs(spectrum[0]) < 1e-9
        assert all(abs(v - 5.0) < 1e-9 for v in spectrum[1:])

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            laplacian_spectrum(Graph())


class TestAlgebraicConnectivity:
    def test_disconnected_is_zero(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        assert algebraic_connectivity(g) < 1e-9

    def test_cycle_closed_form(self):
        # lambda_2(C_n) = 2 - 2 cos(2 pi / n)
        n = 8
        expected = 2 - 2 * math.cos(2 * math.pi / n)
        assert algebraic_connectivity(cycle_graph(n)) == pytest.approx(
            expected, abs=1e-9
        )

    def test_path_smaller_than_cycle(self):
        assert algebraic_connectivity(path_graph(8)) < algebraic_connectivity(
            cycle_graph(8)
        )

    def test_fiedler_bounds_connectivity(self):
        # Fiedler: lambda_2 <= kappa(G) for non-complete graphs
        from repro.graphs.connectivity import node_connectivity

        for n, k in [(10, 3), (14, 4)]:
            graph, _ = build_lhg(n, k)
            assert algebraic_connectivity(graph) <= node_connectivity(graph) + 1e-9

    def test_single_node_rejected(self):
        with pytest.raises(GraphError):
            algebraic_connectivity(Graph(nodes=[0]))


class TestGapAndProfile:
    def test_lhg_gap_beats_harary_and_gap_ratio_widens(self):
        # both gaps decay with n, but the ring-like Harary decays as
        # 1/n^2 while the LHG decays far slower; the ratio widens
        from repro.graphs.generators.harary import harary_graph

        k = 4
        ratios = []
        for n in (62, 128):
            lhg, _ = build_lhg(n, k)
            ratios.append(spectral_gap(lhg) / spectral_gap(harary_graph(k, n)))
        assert ratios[0] > 2
        assert ratios[1] > ratios[0]

    def test_profile_consistent(self):
        g = cycle_graph(6)
        lam2, lam_max, gap = spectral_profile(g)
        assert lam2 == pytest.approx(algebraic_connectivity(g), abs=1e-9)
        assert lam_max == pytest.approx(4.0, abs=1e-9)  # C6: max eig = 4
        assert gap == pytest.approx(lam2 / 2, abs=1e-9)

    def test_edgeless_rejected(self):
        with pytest.raises(GraphError):
            spectral_gap(Graph(nodes=[0, 1]))
