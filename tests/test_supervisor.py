"""Fault-tolerant execution: timeouts, retries, crash recovery.

The centrepiece is the crash-injection self-test required by F14: a
deterministic chaos hook (:class:`CrashInjector`) makes workers exit,
hang or raise on ~20% of attempts, and the supervised map must still
return results byte-identical to a fault-free serial run.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import pytest

from repro.errors import ExecutionError
from repro.exec import (
    CrashInjector,
    FaultContext,
    InjectedFault,
    ItemFailure,
    SupervisorConfig,
    WorkerPool,
    derive_seed,
    fork_available,
    supervised_map,
)

needs_fork = pytest.mark.skipif(not fork_available(), reason="requires fork")


def _cell(item):
    """A deterministic 'experiment cell': pure function of the item."""
    index, seed = item
    value = derive_seed(seed, "cell", index) % 9973
    return {"index": index, "value": value * (index + 1)}


def _items(count: int, seed: int = 0):
    return [(i, seed) for i in range(count)]


def _poison(x):
    if x == 2:
        raise ValueError("poison item")
    return x * x


class TestSupervisedMapPlain:
    def test_serial_supervised_matches_plain_map(self):
        items = _items(8)
        expected = [_cell(item) for item in items]
        results, stats = supervised_map(_cell, items, workers=1)
        assert results == expected
        assert stats.mode == "supervised-serial"
        assert not stats.failures

    @needs_fork
    def test_forked_supervised_matches_serial(self):
        items = _items(12)
        expected = [_cell(item) for item in items]
        results, stats = supervised_map(_cell, items, workers=3)
        assert results == expected
        assert stats.mode == "supervised-fork"
        assert stats.workers_used == 3
        assert not stats.failures

    def test_empty_items(self):
        results, stats = supervised_map(_cell, [], workers=4)
        assert results == []
        assert not stats.failures


class TestCrashInjectionSelfTest:
    """Workers randomly die mid-item; results must not notice."""

    @needs_fork
    def test_results_identical_to_fault_free_serial_run(self):
        items = _items(30)
        expected = [_cell(item) for item in items]

        injector = CrashInjector(rate=0.2, seed=0, hang_seconds=30.0)
        schedule = [injector.would_inject(i, 0) for i in range(len(items))]
        assert any(schedule), "injector must actually sabotage some items"

        results, stats = supervised_map(
            _cell,
            items,
            config=SupervisorConfig(
                timeout=0.75,
                retries=12,
                backoff_base=0.01,
                fault_hook=injector,
            ),
            workers=3,
        )
        assert results == expected
        assert not stats.failures
        # the faults really happened — recovery, not luck
        assert stats.retries > 0
        assert stats.retries >= sum(1 for action in schedule if action)

    @needs_fork
    def test_worker_deaths_are_detected_and_survived(self):
        items = _items(16)
        expected = [_cell(item) for item in items]
        injector = CrashInjector(rate=0.3, seed=1, actions=("exit",))
        results, stats = supervised_map(
            _cell,
            items,
            config=SupervisorConfig(
                retries=12, backoff_base=0.01, fault_hook=injector
            ),
            workers=2,
        )
        assert results == expected
        assert stats.worker_deaths > 0
        assert not stats.failures

    @needs_fork
    def test_hangs_are_timed_out_and_retried(self):
        items = _items(10)
        expected = [_cell(item) for item in items]
        injector = CrashInjector(
            rate=0.3, seed=2, actions=("hang",), hang_seconds=30.0
        )
        results, stats = supervised_map(
            _cell,
            items,
            config=SupervisorConfig(
                timeout=0.5, retries=12, backoff_base=0.01, fault_hook=injector
            ),
            workers=2,
        )
        assert results == expected
        assert stats.timeouts > 0
        assert not stats.failures

    @needs_fork
    def test_death_budget_degrades_to_serial_and_still_finishes(self):
        items = _items(12)
        expected = [_cell(item) for item in items]
        parent = os.getpid()

        def exit_on_first_worker_attempt(context):
            # every first attempt dies in a worker, so the death budget
            # is guaranteed to blow; the serial fallback is untouched
            if context.in_worker and os.getpid() != parent:
                if context.attempt == 0:
                    os._exit(11)

        results, stats = supervised_map(
            _cell,
            items,
            config=SupervisorConfig(
                retries=3,
                backoff_base=0.01,
                max_worker_deaths=2,
                fault_hook=exit_on_first_worker_attempt,
            ),
            workers=2,
        )
        assert results == expected
        assert stats.degraded
        assert stats.mode == "supervised-degraded"
        assert not stats.failures

    def test_injector_is_deterministic_and_parent_safe(self):
        injector = CrashInjector(rate=0.5, seed=7)
        first = [injector.would_inject(i, 0) for i in range(50)]
        again = [injector.would_inject(i, 0) for i in range(50)]
        assert first == again
        # in the parent process destructive actions downgrade to raise
        sabotaged = next(i for i, a in enumerate(first) if a is not None)
        with pytest.raises(InjectedFault):
            injector(
                FaultContext(index=sabotaged, attempt=0, seed=0, in_worker=False)
            )

    def test_injector_validation(self):
        with pytest.raises(ValueError, match="rate"):
            CrashInjector(rate=1.5)
        with pytest.raises(ValueError, match="action"):
            CrashInjector(actions=("explode",))


class TestQuarantineAndRetries:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_poison_item_is_quarantined(self, workers):
        if workers > 1 and not fork_available():
            pytest.skip("requires fork")
        results, stats = supervised_map(
            _poison,
            [1, 2, 3],
            config=SupervisorConfig(retries=2, backoff_base=0.001),
            workers=workers,
        )
        assert results[0] == 1 and results[2] == 9
        failure = results[1]
        assert isinstance(failure, ItemFailure)
        assert failure.index == 1
        assert failure.attempts == 3  # 1 try + 2 retries
        assert "poison" in failure.message
        assert "poison" in failure.remote_traceback
        assert stats.failures == [failure]
        assert "poison" in failure.summary()

    def test_raise_mode_aborts_with_execution_error(self):
        config = SupervisorConfig(
            retries=1, backoff_base=0.001, failure_mode="raise"
        )
        with pytest.raises(ExecutionError, match="poison") as excinfo:
            supervised_map(_poison, [1, 2, 3], config=config, workers=1)
        assert isinstance(excinfo.value.failure, ItemFailure)

    def test_retries_zero_fails_fast(self):
        results, stats = supervised_map(
            _poison,
            [2],
            config=SupervisorConfig(retries=0, backoff_base=0.001),
            workers=1,
        )
        assert isinstance(results[0], ItemFailure)
        assert results[0].attempts == 1

    def test_config_validation(self):
        with pytest.raises(ValueError, match="failure_mode"):
            SupervisorConfig(failure_mode="explode")
        with pytest.raises(ValueError, match="retries"):
            SupervisorConfig(retries=-1)
        with pytest.raises(ValueError, match="timeout"):
            SupervisorConfig(timeout=0.0)


class TestPoolIntegration:
    @needs_fork
    def test_report_carries_fault_counters(self):
        injector = CrashInjector(rate=0.3, seed=1, actions=("exit",))
        pool = WorkerPool(
            workers=2,
            supervisor=SupervisorConfig(
                retries=12, backoff_base=0.01, fault_hook=injector
            ),
        )
        items = _items(16)
        assert pool.map(_cell, items) == [_cell(item) for item in items]
        report = pool.last_report
        assert report.mode == "supervised-fork"
        assert report.worker_deaths > 0
        assert not report.failures
        assert "worker death" in report.summary()

    def test_quarantine_shows_up_in_summary(self):
        pool = WorkerPool(
            workers=1,
            supervisor=SupervisorConfig(retries=0, backoff_base=0.001),
        )
        results = pool.map(_poison, [1, 2, 3])
        assert isinstance(results[1], ItemFailure)
        assert len(pool.last_report.failures) == 1
        assert "quarantined" in pool.last_report.summary()


class TestCampaignUnderInjection:
    @needs_fork
    def test_matrix_identical_to_serial_fault_free_run(self):
        from repro.robustness import ChaosCampaign
        from repro.exec import build_lhg_cached

        graph, _ = build_lhg_cached(20, 3)
        campaign = ChaosCampaign([(graph.name, graph)], seeds=[0])
        baseline = campaign.run().render()

        supervised = campaign.run(
            workers=3,
            supervisor=SupervisorConfig(
                timeout=5.0,
                retries=10,
                backoff_base=0.01,
                fault_hook=CrashInjector(rate=0.2, seed=5),
            ),
        )
        assert supervised.render() == baseline
        assert supervised.all_green
        assert not supervised.failures


_INTERRUPT_SCRIPT = textwrap.dedent(
    """
    import os, signal, sys, time

    from repro.exec import SupervisorConfig, WorkerPool

    def slow(x):
        time.sleep(5.0)
        return x

    supervised = sys.argv[1] == "supervised"
    pool = WorkerPool(
        workers=2,
        supervisor=SupervisorConfig(backoff_base=0.001) if supervised else None,
    )
    # deliver a real KeyboardInterrupt mid-map, like a ^C on the terminal
    signal.signal(signal.SIGALRM, signal.default_int_handler)
    signal.setitimer(signal.ITIMER_REAL, 0.5)
    try:
        pool.map(slow, list(range(8)))
    except KeyboardInterrupt:
        pass
    signal.setitimer(signal.ITIMER_REAL, 0.0)
    # every forked child must be dead *and reaped* — no zombies left
    deadline = time.time() + 5.0
    while time.time() < deadline:
        try:
            pid, _ = os.waitpid(-1, os.WNOHANG)
        except ChildProcessError:
            print("CLEAN")
            sys.exit(0)
        time.sleep(0.05)
    print("ZOMBIES")
    sys.exit(1)
    """
)


class TestKeyboardInterruptCleanup:
    @needs_fork
    @pytest.mark.parametrize("mode", ["bare", "supervised"])
    def test_interrupted_map_leaves_no_zombies(self, mode):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        proc = subprocess.run(
            [sys.executable, "-c", _INTERRUPT_SCRIPT, mode],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "CLEAN" in proc.stdout
