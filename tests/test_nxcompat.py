"""Unit tests for the optional networkx bridge."""

import pytest

from repro.errors import GraphError
from repro.graphs.generators.classic import petersen_graph
from repro.graphs.nxcompat import from_networkx, to_networkx

networkx = pytest.importorskip("networkx")


class TestRoundTrip:
    def test_to_networkx_preserves_structure(self):
        ours = petersen_graph()
        theirs = to_networkx(ours)
        assert theirs.number_of_nodes() == 10
        assert theirs.number_of_edges() == 15

    def test_round_trip_identity(self):
        ours = petersen_graph()
        assert from_networkx(to_networkx(ours)) == ours

    def test_from_networkx_keeps_isolated_nodes(self):
        g = networkx.Graph()
        g.add_node("solo")
        assert from_networkx(g).has_node("solo")


class TestRejections:
    def test_directed_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(networkx.DiGraph())

    def test_multigraph_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(networkx.MultiGraph())
