"""Tests for overlay self-repair after crash bursts."""

import pytest

from repro.graphs.connectivity import node_connectivity
from repro.graphs.graph import edge_key
from repro.overlay.membership import LHGOverlay, MembershipError
from repro.overlay.repair import (
    crash_repair_cycle,
    execute_repair,
    plan_repair,
)


def populated_overlay(k=3, size=16):
    overlay = LHGOverlay(k=k)
    for i in range(size):
        overlay.join(f"p{i}")
    return overlay


class TestOverlayCopy:
    def test_copy_is_equal_but_independent(self):
        overlay = populated_overlay()
        clone = overlay.copy()
        assert clone.topology() == overlay.topology()
        assert clone.members == overlay.members
        clone.leave("p3")
        assert "p3" in overlay.members


class TestPlan:
    def test_plan_is_exact(self):
        overlay = populated_overlay()
        plan = plan_repair(overlay, ["p3", "p7"])
        before = overlay.topology()
        execute_repair(overlay, ["p3", "p7"])
        after = overlay.topology()
        old_edges = {
            edge_key(u, v)
            for u, v in before.iter_edges()
            if u not in plan.crashed and v not in plan.crashed
        }
        new_edges = {edge_key(u, v) for u, v in after.iter_edges()}
        assert plan.teardown == frozenset(old_edges - new_edges)
        assert plan.establish == frozenset(new_edges - old_edges)

    def test_plan_does_not_mutate(self):
        overlay = populated_overlay()
        before = overlay.topology()
        plan_repair(overlay, ["p1"])
        assert overlay.topology() == before
        assert overlay.size == 16

    def test_unknown_member_rejected(self):
        with pytest.raises(MembershipError):
            plan_repair(populated_overlay(), ["ghost"])

    def test_no_survivors_rejected(self):
        overlay = LHGOverlay(k=2)
        overlay.join("only")
        with pytest.raises(MembershipError):
            plan_repair(overlay, ["only"])

    def test_plan_counts(self):
        overlay = populated_overlay()
        plan = plan_repair(overlay, ["p0"])
        assert plan.total_edge_work == len(plan.teardown) + len(plan.establish)
        assert len(plan.survivors) == 15


class TestExecute:
    def test_restores_full_connectivity(self):
        overlay = populated_overlay(k=3, size=16)
        report = execute_repair(overlay, ["p2", "p9"])
        assert report.connectivity_before >= 1  # k-1 crashes never disconnect
        assert report.connectivity_after == 3
        assert report.restored

    def test_members_removed(self):
        overlay = populated_overlay()
        execute_repair(overlay, ["p5"])
        assert "p5" not in overlay.members
        assert overlay.size == 15

    def test_repair_into_bootstrap_regime(self):
        overlay = populated_overlay(k=3, size=7)
        report = execute_repair(overlay, ["p0", "p1"])  # 5 < 2k survivors
        # bootstrap complete graph on 5 nodes: 4-connected
        assert report.connectivity_after >= 3


class TestCycle:
    def test_unbounded_total_failures_with_bounded_bursts(self):
        k = 3
        overlay = populated_overlay(k=k, size=24)
        bursts = [
            ["p0", "p1"],
            ["p2", "p3"],
            ["p4", "p5"],
            ["p6", "p7"],
        ]  # 8 total failures >> k-1, in bursts of k-1
        reports = crash_repair_cycle(overlay, bursts)
        for report in reports:
            # damaged topology always stayed connected (burst <= k-1) ...
            assert report.connectivity_before >= 1
            # ... and each repair restored full strength
            assert report.connectivity_after == k
        assert overlay.size == 16
        assert node_connectivity(overlay.topology()) == k


class TestDegradedBurst:
    """Bursts beyond k-1 degrade gracefully instead of raising."""

    def test_k_sized_burst_reports_degraded(self):
        k = 3
        overlay = populated_overlay(k=k, size=16)
        report = execute_repair(overlay, ["p1", "p4", "p9"])  # k > k-1
        assert report.k == k
        assert report.burst_size == k
        assert report.degraded  # guarantee voided, recorded as data
        # rebuild is still best-effort full strength over the survivors
        assert report.restored
        assert report.connectivity_after == k

    def test_partitioning_burst_records_components(self):
        k = 3
        overlay = populated_overlay(k=k, size=16)
        # isolate one member by crashing its entire neighborhood
        topology = overlay.topology()
        victim = min(
            overlay.members, key=lambda m: (len(topology.neighbors(m)), m)
        )
        burst = sorted(topology.neighbors(victim))
        report = execute_repair(overlay, burst)  # must NOT raise
        assert report.partitioned
        assert report.degraded
        assert len(report.components_before) > 1
        assert 1 in report.components_before  # the isolated victim
        assert sum(report.components_before) == 16 - len(burst)
        # the repair reconnected and restored the survivors regardless
        assert report.restored
        assert node_connectivity(overlay.topology()) == k

    def test_within_contract_burst_is_not_degraded(self):
        overlay = populated_overlay(k=3, size=16)
        report = execute_repair(overlay, ["p2", "p11"])  # k-1 crashes
        assert not report.degraded
        assert not report.partitioned
        assert report.components_before == (14,)
