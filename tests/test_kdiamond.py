"""Tests for the K-DIAMOND constraint builder (extension module)."""

import pytest

from repro.errors import InfeasiblePairError
from repro.core.kdiamond import (
    kdiamond_exists,
    kdiamond_graph,
    kdiamond_only_regular_sizes,
    kdiamond_plan,
    kdiamond_regular_exists,
    kdiamond_regular_sizes,
    satisfies_kdiamond,
)
from repro.core.ktree import ktree_regular_exists
from repro.core.properties import check_lhg
from repro.graphs.properties import is_k_regular

from tests.conftest import SMALL_PAIRS


class TestExistence:
    def test_exists_iff_n_at_least_2k(self):
        for k in (2, 3, 4, 5):
            assert not kdiamond_exists(2 * k - 1, k)
            for n in range(2 * k, 2 * k + 20):
                assert kdiamond_exists(n, k)

    def test_equivalent_to_ktree_existence(self):
        from repro.core.ktree import ktree_exists

        for k in (2, 3, 4, 5, 6):
            for n in range(2, 60):
                assert kdiamond_exists(n, k) == ktree_exists(n, k)

    def test_plan_shape(self):
        for k in (3, 4, 5):
            for n in range(2 * k, 2 * k + 25):
                plan = kdiamond_plan(n, k)
                assert plan.unshared in (0, 1)
                assert 0 <= plan.added_leaves <= k - 2
                total = (
                    2 * k
                    + 2 * plan.conversions * (k - 1)
                    + plan.unshared * (k - 1)
                    + plan.added_leaves
                )
                assert total == n

    def test_plan_rejects_out_of_domain(self):
        with pytest.raises(InfeasiblePairError):
            kdiamond_plan(5, 3)
        with pytest.raises(InfeasiblePairError):
            kdiamond_plan(4, 1)


class TestConstruction:
    @pytest.mark.parametrize("n,k", SMALL_PAIRS)
    def test_builds_every_pair(self, n, k):
        graph, cert = kdiamond_graph(n, k)
        assert graph.number_of_nodes() == n
        assert cert.rule == "k-diamond"
        cert.verify_graph(graph)
        assert satisfies_kdiamond(cert)

    @pytest.mark.parametrize("n,k", SMALL_PAIRS)
    def test_satisfies_lhg_properties(self, n, k):
        graph, _ = kdiamond_graph(n, k)
        report = check_lhg(graph, k)
        assert report.node_connected, report.summary()
        assert report.link_connected, report.summary()
        assert report.link_minimal, report.summary()
        if k >= 3:
            assert report.log_diameter, report.summary()

    def test_unshared_members_have_degree_k(self):
        graph, cert = kdiamond_graph(8, 3)  # one unshared slot
        unshared_nodes = [v for v in graph.nodes() if v[0] == "U"]
        assert len(unshared_nodes) == 3
        assert all(graph.degree(v) == 3 for v in unshared_nodes)


class TestRegularity:
    def test_reg_formula_doubles_density(self):
        # K-DIAMOND regular sizes have step k-1 instead of 2(k-1)
        assert kdiamond_regular_sizes(3, 20) == [6, 8, 10, 12, 14, 16, 18, 20]
        assert kdiamond_regular_sizes(4, 23) == [8, 11, 14, 17, 20, 23]

    def test_regular_points_build_regular(self):
        for k in (2, 3, 4, 5):
            for n in kdiamond_regular_sizes(k, 4 * k):
                graph, _ = kdiamond_graph(n, k)
                assert is_k_regular(graph, k), (n, k)

    def test_non_regular_points_irregular(self):
        for n, k in [(9, 4), (13, 5)]:
            assert not kdiamond_regular_exists(n, k)
            graph, _ = kdiamond_graph(n, k)
            assert not is_k_regular(graph, k)

    def test_ktree_regular_implies_kdiamond_regular(self):
        # Corollary 2 of the follow-on analysis
        for k in (2, 3, 4, 5, 6):
            for n in range(2 * k, 2 * k + 40):
                if ktree_regular_exists(n, k):
                    assert kdiamond_regular_exists(n, k)

    def test_strictly_more_regular_sizes(self):
        # Theorem 7: infinitely many sizes only K-DIAMOND makes regular
        only = kdiamond_only_regular_sizes(3, 30)
        assert only == [8, 12, 16, 20, 24, 28]
        for n in only:
            graph, _ = kdiamond_graph(n, 3)
            assert is_k_regular(graph, 3)

    def test_k2_every_size_regular(self):
        # for k=2 K-DIAMOND regular points are ALL n >= 4 (cycles)
        assert kdiamond_regular_sizes(2, 10) == [4, 5, 6, 7, 8, 9, 10]
        for n in range(4, 11):
            graph, _ = kdiamond_graph(n, 2)
            assert is_k_regular(graph, 2)


class TestConstraintChecker:
    def test_accepts_own_certificates(self):
        for n, k in SMALL_PAIRS:
            _, cert = kdiamond_graph(n, k)
            assert satisfies_kdiamond(cert)

    def test_rejects_oversized_added_quota(self):
        from repro.core.ktree import ktree_graph

        # k-tree with many added leaves violates k-diamond's k-2 quota
        _, cert = ktree_graph(9, 3)  # 3 added leaves > k-2 = 1
        assert not satisfies_kdiamond(cert)
