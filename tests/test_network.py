"""Tests for the simulated network layer."""

import pytest

from repro.errors import ProtocolError, SimulationError
from repro.flooding.network import (
    ConstantLatency,
    ExponentialLatency,
    Network,
    NodeApi,
    Protocol,
    UniformLatency,
)
from repro.flooding.simulator import Simulator
from repro.graphs.generators.classic import cycle_graph, path_graph


class Recorder(Protocol):
    """Records every callback for assertions."""

    def __init__(self):
        self.starts = []
        self.messages = []
        self.timers = []

    def on_start(self, node, api):
        self.starts.append((node, api.now))

    def on_message(self, node, payload, sender, api):
        self.messages.append((node, payload, sender, api.now))

    def on_timer(self, node, tag, api):
        self.timers.append((node, tag, api.now))


class Forwarder(Protocol):
    """Sends one message from node 0 to node 1 at start."""

    def on_start(self, node, api):
        if node == 0:
            api.send(1, "ping")

    def on_message(self, node, payload, sender, api):
        pass


class TestLatencyModels:
    def test_constant(self):
        assert ConstantLatency(2.5).sample(0, 1) == 2.5

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            ConstantLatency(0)

    def test_uniform_in_range_and_deterministic(self):
        a = UniformLatency(1.0, 2.0, seed=3)
        b = UniformLatency(1.0, 2.0, seed=3)
        samples = [a.sample(0, 1) for _ in range(50)]
        assert all(1.0 <= s <= 2.0 for s in samples)
        assert samples == [b.sample(0, 1) for _ in range(50)]

    def test_uniform_domain(self):
        with pytest.raises(SimulationError):
            UniformLatency(2.0, 1.0)

    def test_exponential_positive(self):
        model = ExponentialLatency(base=0.1, mean=1.0, seed=1)
        assert all(model.sample(0, 1) > 0.1 for _ in range(20))

    def test_exponential_domain(self):
        with pytest.raises(SimulationError):
            ExponentialLatency(base=0)


class TestDelivery:
    def test_message_arrives_after_latency(self):
        sim = Simulator()
        net = Network(path_graph(2), sim, latency=ConstantLatency(3.0))
        recorder = Recorder()
        net.attach(recorder, start_nodes=[0])

        def kick():
            NodeApi(net, 0).send(1, "hello")

        sim.schedule(1.0, kick)
        sim.run()
        assert recorder.messages == [(1, "hello", 0, 4.0)]
        assert net.stats.messages_sent == 1
        assert net.stats.messages_delivered == 1

    def test_non_neighbor_send_rejected(self):
        sim = Simulator()
        net = Network(path_graph(3), sim)
        net.attach(Recorder(), start_nodes=[])
        with pytest.raises(ProtocolError):
            NodeApi(net, 0).send(2, "skip")

    def test_neighbors_sorted_and_read_only(self):
        sim = Simulator()
        net = Network(cycle_graph(5), sim)
        api = NodeApi(net, 0)
        assert api.neighbors() == [1, 4]

    def test_double_attach_rejected(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        net.attach(Recorder())
        with pytest.raises(SimulationError):
            net.attach(Recorder())

    def test_start_only_on_selected_nodes(self):
        sim = Simulator()
        net = Network(path_graph(3), sim)
        recorder = Recorder()
        net.attach(recorder, start_nodes=[1])
        sim.run()
        assert recorder.starts == [(1, 0.0)]


class TestFailureSemantics:
    def test_crashed_sender_drops(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        net.attach(Forwarder(), start_nodes=[])
        net.crash_node(0)
        NodeApi(net, 0).send(1, "x")
        sim.run()
        assert net.stats.messages_sent == 0
        assert net.stats.messages_dropped == 1

    def test_receiver_crash_at_delivery_time_drops(self):
        sim = Simulator()
        net = Network(path_graph(2), sim, latency=ConstantLatency(2.0))
        recorder = Recorder()
        net.attach(recorder, start_nodes=[])
        NodeApi(net, 0).send(1, "x")
        sim.schedule(1.0, lambda: net.crash_node(1))
        sim.run()
        assert recorder.messages == []
        assert net.stats.messages_dropped == 1

    def test_dead_link_drops_both_directions(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        recorder = Recorder()
        net.attach(recorder, start_nodes=[])
        net.fail_link(1, 0)
        NodeApi(net, 0).send(1, "x")
        NodeApi(net, 1).send(0, "y")
        sim.run()
        assert recorder.messages == []
        assert net.stats.messages_dropped == 2

    def test_crashed_node_does_not_start(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        recorder = Recorder()
        net.attach(recorder)
        net.crash_node(0)
        sim.run()
        assert recorder.starts == [(1, 0.0)]

    def test_is_alive_and_link_up(self):
        sim = Simulator()
        net = Network(path_graph(3), sim)
        assert net.is_alive(0) and net.is_link_up(0, 1)
        net.crash_node(0)
        net.fail_link(1, 2)
        assert not net.is_alive(0)
        assert not net.is_link_up(2, 1)
        assert net.crashed_nodes == {0}

    def test_crash_and_fail_link_idempotent(self):
        sim = Simulator()
        net = Network(path_graph(3), sim)
        events = []
        net.add_observer(lambda kind, time, **d: events.append(kind))
        net.crash_node(0)
        net.crash_node(0)
        net.fail_link(1, 2)
        net.fail_link(2, 1)  # same undirected link
        assert events == ["crash", "link-down"]


class TestRecovery:
    def test_recover_node_restores_delivery(self):
        sim = Simulator()
        net = Network(path_graph(2), sim, latency=ConstantLatency(1.0))
        recorder = Recorder()
        net.attach(recorder, start_nodes=[])
        net.crash_node(1)
        sim.schedule(1.0, lambda: net.recover_node(1))
        sim.schedule(2.0, lambda: NodeApi(net, 0).send(1, "late"))
        sim.run()
        assert net.is_alive(1)
        assert recorder.messages == [(1, "late", 0, 3.0)]

    def test_recover_alive_node_is_noop(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        events = []
        net.add_observer(lambda kind, time, **d: events.append(kind))
        net.recover_node(0)
        assert events == []

    def test_restore_link_is_undirected_and_noop_when_up(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        events = []
        net.add_observer(lambda kind, time, **d: events.append(kind))
        net.restore_link(0, 1)  # already up
        net.fail_link(0, 1)
        net.restore_link(1, 0)  # other direction, same link
        assert net.is_link_up(0, 1)
        assert events == ["link-down", "link-up"]

    def test_messages_lost_during_outage_stay_lost(self):
        sim = Simulator()
        net = Network(path_graph(2), sim, latency=ConstantLatency(2.0))
        recorder = Recorder()
        net.attach(recorder, start_nodes=[])
        NodeApi(net, 0).send(1, "doomed")
        sim.schedule(1.0, lambda: net.crash_node(1))
        sim.schedule(1.5, lambda: net.recover_node(1))
        # in flight across the crash window but delivered after recovery: ok
        sim.run()
        assert recorder.messages == [(1, "doomed", 0, 2.0)]
        # now one that arrives inside the window
        sim2 = Simulator()
        net2 = Network(path_graph(2), sim2, latency=ConstantLatency(2.0))
        recorder2 = Recorder()
        net2.attach(recorder2, start_nodes=[])
        NodeApi(net2, 0).send(1, "doomed")
        sim2.schedule(1.0, lambda: net2.crash_node(1))
        sim2.schedule(3.0, lambda: net2.recover_node(1))
        sim2.run()
        assert recorder2.messages == []
        assert net2.stats.messages_dropped == 1


class TestTimers:
    def test_timer_fires(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        recorder = Recorder()
        net.attach(recorder, start_nodes=[])
        net.set_timer(0, 5.0, "tick")
        sim.run()
        assert recorder.timers == [(0, "tick", 5.0)]

    def test_timer_suppressed_after_crash(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        recorder = Recorder()
        net.attach(recorder, start_nodes=[])
        net.set_timer(0, 5.0, "tick")
        sim.schedule(1.0, lambda: net.crash_node(0))
        sim.run()
        assert recorder.timers == []

    def test_mark_delivered_records_first_time_only(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        sim.schedule(1.0, lambda: net.mark_delivered(0))
        sim.schedule(2.0, lambda: net.mark_delivered(0))
        sim.run()
        assert net.delivery_times == {0: 1.0}
