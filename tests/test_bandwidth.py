"""Tests for the store-and-forward bandwidth model and stream flooding."""

import pytest

from repro.core.existence import build_lhg
from repro.errors import SimulationError
from repro.flooding.experiments import run_broadcast_stream, run_flood
from repro.flooding.network import BandwidthLatency
from repro.graphs.generators.classic import path_graph, star_graph
from repro.graphs.generators.harary import harary_graph


class TestBandwidthLatency:
    def test_parameters_validated(self):
        with pytest.raises(SimulationError):
            BandwidthLatency(service=0.0)
        with pytest.raises(SimulationError):
            BandwidthLatency(service=1.0, propagation=-1.0)

    def test_idle_link_takes_service_plus_propagation(self):
        model = BandwidthLatency(service=2.0, propagation=0.5)
        assert model.sample_at(0, 1, now=10.0) == 2.5

    def test_busy_link_queues_fifo(self):
        model = BandwidthLatency(service=1.0, propagation=0.0)
        first = model.sample_at(0, 1, now=0.0)
        second = model.sample_at(0, 1, now=0.0)
        third = model.sample_at(0, 1, now=0.0)
        assert (first, second, third) == (1.0, 2.0, 3.0)

    def test_directions_are_independent(self):
        model = BandwidthLatency(service=1.0, propagation=0.0)
        assert model.sample_at(0, 1, now=0.0) == 1.0
        assert model.sample_at(1, 0, now=0.0) == 1.0  # no queueing

    def test_link_drains_over_time(self):
        model = BandwidthLatency(service=1.0, propagation=0.0)
        model.sample_at(0, 1, now=0.0)
        # after the link went idle, a later message pays only service
        assert model.sample_at(0, 1, now=10.0) == 1.0

    def test_stateless_sample_rejected(self):
        with pytest.raises(SimulationError):
            BandwidthLatency().sample(0, 1)


class TestSingleFloodUnderBandwidth:
    def test_path_serialises(self):
        g = path_graph(4)
        result = run_flood(g, 0, latency=BandwidthLatency(1.0, 0.0))
        # one message per link, no contention: 3 hops
        assert result.completion_time == 3.0
        assert result.fully_covered

    def test_star_source_bottleneck(self):
        # flooding FROM the hub: leaves are on distinct links -> parallel
        g = star_graph(5)
        result = run_flood(g, 0, latency=BandwidthLatency(1.0, 0.0))
        assert result.completion_time == 1.0


class TestBroadcastStream:
    def test_single_message_matches_flood(self):
        graph, _ = build_lhg(30, 3)
        source = graph.nodes()[0]
        makespan, covered, _ = run_broadcast_stream(
            graph, source, 1, latency=BandwidthLatency(1.0, 0.1)
        )
        assert covered
        flood = run_flood(graph, source, latency=BandwidthLatency(1.0, 0.1))
        assert makespan == flood.completion_time

    def test_pipeline_cost_is_linear_in_messages(self):
        graph, _ = build_lhg(30, 3)
        source = graph.nodes()[0]
        model = lambda: BandwidthLatency(1.0, 0.1)
        one, _, _ = run_broadcast_stream(graph, source, 1, latency=model())
        many, covered, _ = run_broadcast_stream(graph, source, 9, latency=model())
        assert covered
        # pipelining: each extra message adds ~1 service time, not a
        # whole broadcast latency
        assert many == pytest.approx(one + 8 * 1.0)

    def test_interval_staggering(self):
        graph, _ = build_lhg(14, 3)
        source = graph.nodes()[0]
        makespan, covered, _ = run_broadcast_stream(
            graph, source, 3, latency=BandwidthLatency(1.0, 0.0), interval=5.0
        )
        assert covered
        one, _, _ = run_broadcast_stream(
            graph, source, 1, latency=BandwidthLatency(1.0, 0.0)
        )
        # with a generous interval there is no contention: last message
        # finishes at 2*interval + single-broadcast latency
        assert makespan == pytest.approx(10.0 + one)

    def test_latency_advantage_persists_under_bandwidth(self):
        n, k, messages = 64, 4, 8
        lhg, _ = build_lhg(n, k)
        harary = harary_graph(k, n)
        lhg_makespan, lhg_cov, _ = run_broadcast_stream(
            lhg, lhg.nodes()[0], messages, latency=BandwidthLatency(1.0, 0.1)
        )
        harary_makespan, harary_cov, _ = run_broadcast_stream(
            harary, 0, messages, latency=BandwidthLatency(1.0, 0.1)
        )
        assert lhg_cov and harary_cov
        assert lhg_makespan < harary_makespan / 1.5
