"""Unit tests for the repro.obs telemetry subsystem."""

import io
import json

import pytest

from repro import obs
from repro.obs.metrics import Histogram, MetricsRegistry, metrics_delta


@pytest.fixture(autouse=True)
def no_leaked_collector():
    """Every test starts and ends with telemetry off."""
    obs.uninstall()
    yield
    obs.uninstall()


class TestInertWhenOff:
    def test_span_is_shared_singleton(self):
        first = obs.span("a", x=1)
        second = obs.span("b")
        assert first is second  # no allocation per call site

    def test_null_span_api(self):
        with obs.span("anything", n=3) as span:
            span.set(late=True)
        # nothing recorded anywhere, nothing raised

    def test_shortcuts_are_noops(self):
        obs.event("e", detail=1)
        obs.counter("c")
        obs.gauge("g", 2.0)
        obs.observe("h", 0.5)
        assert obs.active() is None

    def test_capture_returns_none(self):
        assert obs.capture_start() is None
        assert obs.capture_finish(None) is None
        obs.adopt(None)  # no-op

    def test_record_network_is_noop(self):
        obs.record_network(object())  # stats never touched, nothing raised

    def test_traced_decorator_passthrough(self):
        @obs.traced()
        def f(x):
            return x + 1

        assert f(1) == 2


class TestCollector:
    def test_span_nesting_and_attrs(self):
        collector = obs.install()
        with obs.span("outer", a=1) as outer:
            with obs.span("inner"):
                obs.event("ping", x=2)
            outer.set(late="yes")
        obs.uninstall()
        kinds = [e["kind"] for e in collector.events]
        assert kinds == [
            "span-open",
            "span-open",
            "event",
            "span-close",
            "span-close",
        ]
        open_outer, open_inner, ping, close_inner, close_outer = (
            collector.events
        )
        assert open_inner["parent"] == open_outer["id"]
        assert ping["parent"] == open_inner["id"]
        assert close_outer["attrs"] == {"late": "yes"}
        assert open_outer["attrs"] == {"a": 1}

    def test_seq_is_dense_and_ordered(self):
        collector = obs.install()
        with obs.span("s"):
            obs.event("e")
        assert [e["seq"] for e in collector.events] == [0, 1, 2]

    def test_metrics_shortcuts_accumulate(self):
        collector = obs.install()
        obs.counter("hits")
        obs.counter("hits", 2)
        obs.gauge("level", 7)
        obs.observe("lat", 0.02)
        snapshot = collector.metrics.snapshot()
        assert snapshot["counters"]["hits"] == 3
        assert snapshot["gauges"]["level"] == 7
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_record_network_harvests_stats(self):
        from repro.flooding.network import NetworkStats

        class FakeNetwork:
            stats = NetworkStats(
                messages_sent=7, messages_delivered=5, messages_dropped=2
            )

        collector = obs.install()
        obs.record_network(FakeNetwork())
        counters = collector.metrics.snapshot()["counters"]
        assert counters == {
            "net.send": 7,
            "net.deliver": 5,
            "net.drop": 2,
        }

    def test_traced_decorator_records(self):
        collector = obs.install()

        @obs.traced("labelled")
        def f(x):
            return x * 2

        assert f(3) == 6
        names = [e["name"] for e in collector.events]
        assert names == ["labelled", "labelled"]

    def test_sink_streams_in_owner_process_only(self):
        stream = io.StringIO()
        collector = obs.Collector(sink=obs.JsonlSink(stream))
        obs.install(collector)
        obs.event("hello")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "hello"

    def test_validate_clean_stream(self):
        collector = obs.install()
        with obs.span("a"):
            with obs.span("b"):
                obs.event("e")
        assert obs.validate_events(collector.events) == []

    def test_validate_rejects_bad_events(self):
        assert obs.validate_event({"kind": "event"})  # missing fields
        bad = {
            "seq": 0,
            "t": 0.0,
            "kind": "mystery",
            "name": "x",
            "src": "main",
            "pid": 1,
            "attrs": {},
        }
        assert any("kind" in p for p in obs.validate_event(bad))

    def test_validate_catches_unclosed_span(self):
        collector = obs.install()
        collector.open_span("dangling")
        problems = obs.validate_events(collector.events)
        assert any("never closed" in p for p in problems)


class TestCaptureAdopt:
    def test_roundtrip_restores_parent_state(self):
        collector = obs.install()
        obs.counter("before")
        token = obs.capture_start()
        with obs.span("work"):
            obs.counter("inside", 5)
        payload = obs.capture_finish(token)
        # capture removed its events and rolled metrics back
        assert collector.events == []
        assert "inside" not in collector.metrics.counters
        obs.adopt(payload, label="cell-0")
        assert collector.metrics.counters["inside"] == 5
        assert collector.metrics.counters["before"] == 1
        names = [e["name"] for e in collector.events]
        assert "cell" in names and "work" in names
        assert obs.validate_events(collector.events) == []

    def test_adopted_ids_identical_serial_and_prefork(self):
        # serial capture consumes parent ids then rolls them back, so
        # adoption assigns the same ids a forked worker's copy would
        def capture_once():
            token = obs.capture_start()
            with obs.span("work"):
                pass
            return obs.capture_finish(token)

        collector = obs.install()
        first = capture_once()
        second = capture_once()
        obs.adopt(first, label="a")
        obs.adopt(second, label="b")
        ids = [
            e["id"] for e in collector.events if e["kind"] == "span-open"
        ]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)
        assert obs.validate_events(collector.events) == []

    def test_adopt_merges_metric_delta_once(self):
        collector = obs.install()
        obs.counter("n", 10)
        token = obs.capture_start()
        obs.counter("n", 1)
        payload = obs.capture_finish(token)
        assert collector.metrics.counters["n"] == 10
        obs.adopt(payload)
        assert collector.metrics.counters["n"] == 11
        deltas = [e for e in collector.events if e["kind"] == "metrics"]
        assert len(deltas) == 1
        assert deltas[0]["attrs"]["counters"] == {"n": 1}

    def test_adopt_wraps_with_capture_times(self):
        collector = obs.install()
        token = obs.capture_start()
        payload = obs.capture_finish(token)
        payload["t0"], payload["t1"] = 1.5, 2.5
        obs.adopt(payload, label="timed")
        spans = list(obs.iter_spans(collector.events))
        assert spans[0]["t0"] == 1.5
        assert spans[0]["t1"] == 2.5


class TestMetrics:
    def test_histogram_buckets(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.minimum == 0.05
        assert histogram.maximum == 5.0

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_histogram_merge_requires_same_buckets(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        other = Histogram(buckets=(0.5,))
        with pytest.raises(ValueError):
            histogram.merge(other.snapshot())

    def test_delta_roundtrip_exact(self):
        registry = MetricsRegistry()
        registry.counter("c", 3)
        registry.observe("h", 0.2)
        before = registry.snapshot()
        registry.counter("c", 2)
        registry.counter("fresh")
        registry.gauge("g", 9)
        registry.observe("h", 0.7)
        after = registry.snapshot()
        delta = metrics_delta(before, after)
        rebuilt = MetricsRegistry()
        rebuilt.restore(before)
        rebuilt.merge(delta)
        assert rebuilt.snapshot() == after

    def test_empty_delta(self):
        registry = MetricsRegistry()
        registry.counter("c")
        snapshot = registry.snapshot()
        delta = metrics_delta(snapshot, snapshot)
        assert not any(delta.values())


class TestExport:
    def _sample_events(self):
        collector = obs.install()
        with obs.span("root", n=8):
            with obs.span("child", i=0):
                obs.event("marker")
            with obs.span("child", i=1):
                pass
        obs.uninstall()
        return collector.events

    def test_chrome_trace_shape(self):
        trace = obs.chrome_trace(self._sample_events())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == 3
        assert len(instants) == 1
        for entry in trace["traceEvents"]:
            assert entry["ts"] >= 0
            assert isinstance(entry["pid"], int)
        assert json.dumps(trace)  # JSON-serialisable end to end

    def test_span_tree_nesting(self):
        tree = obs.build_span_tree(self._sample_events())
        assert len(tree) == 1
        assert tree[0]["name"] == "root"
        assert [c["name"] for c in tree[0]["children"]] == ["child", "child"]

    def test_format_aggregates_same_name_siblings(self):
        lines = obs.format_span_tree(
            obs.build_span_tree(self._sample_events())
        )
        rendered = "\n".join(lines)
        assert "child ×2" in rendered
        assert "root" in rendered

    def test_summary_lists_metrics_snapshot(self):
        collector = obs.install()
        obs.counter("net.send", 4)
        collector.emit(
            "metrics-snapshot",
            kind="metrics",
            attrs=collector.metrics.snapshot(),
        )
        obs.uninstall()
        digest = obs.summarize_events(collector.events)
        assert "net.send = 4" in digest

    def test_jsonl_roundtrip(self, tmp_path):
        events = self._sample_events()
        path = str(tmp_path / "run.jsonl")
        assert obs.write_jsonl(events, path) == len(events)
        assert obs.read_jsonl(path) == events

    def test_write_chrome_trace_loads_as_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = obs.write_chrome_trace(self._sample_events(), path)
        with open(path) as handle:
            parsed = json.load(handle)
        assert len(parsed["traceEvents"]) == count


class TestHistogramQuantiles:
    def test_explicit_inf_bucket(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        assert histogram.bounds() == (1.0, 2.0, float("inf"))
        for value in (0.5, 1.5, 99.0, 100.0):
            histogram.observe(value)
        assert histogram.overflow == 2
        assert len(histogram.counts) == len(histogram.buckets) + 1

    def test_quantile_walks_buckets(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(0.75) == 2.0
        assert histogram.quantile(1.0) == 4.0

    def test_quantile_overflow_reports_maximum(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(0.5)
        histogram.observe(37.0)
        # p99 lands in the +Inf bucket: the honest answer is the max,
        # not the top finite bound
        assert histogram.quantile(0.99) == 37.0

    def test_quantile_empty_and_bad_q(self):
        histogram = Histogram(buckets=(1.0,))
        assert histogram.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.quantile(0.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)


class TestRegistryMergeEdgeCases:
    def test_merge_empty_delta_is_identity(self):
        registry = MetricsRegistry()
        registry.counter("c", 2)
        registry.observe("h", 0.3)
        before = registry.snapshot()
        registry.merge({"counters": {}, "gauges": {}, "histograms": {}})
        registry.merge({})
        assert registry.snapshot() == before

    def test_delta_of_identical_snapshots_merges_clean(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.3)
        snapshot = registry.snapshot()
        delta = metrics_delta(snapshot, snapshot)
        registry.merge(delta)
        assert registry.snapshot() == snapshot

    def test_merge_mismatched_buckets_raises(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.3, buckets=(1.0, 2.0))
        other = MetricsRegistry()
        other.observe("h", 0.3, buckets=(5.0,))
        with pytest.raises(ValueError):
            registry.merge(other.snapshot())

    def test_merge_after_restore_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c", 3)
        registry.observe("h", 0.2, buckets=(1.0,))
        first = registry.snapshot()
        registry.counter("c", 4)
        registry.observe("h", 9.0, buckets=(1.0,))
        registry.gauge("g", 7)
        second = registry.snapshot()
        delta = metrics_delta(first, second)

        rebuilt = MetricsRegistry()
        rebuilt.restore(first)
        rebuilt.merge(delta)
        assert rebuilt.snapshot() == second
        # restore replaces state, so a second restore+merge is stable
        rebuilt.restore(first)
        rebuilt.merge(delta)
        assert rebuilt.snapshot() == second

    def test_metrics_delta_new_histogram_appears_whole(self):
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.observe("h", 0.2)
        delta = metrics_delta(before, registry.snapshot())
        assert delta["histograms"]["h"]["count"] == 1


class TestBoundedBuffer:
    def test_cap_requires_sink(self):
        with pytest.raises(ValueError):
            obs.Collector(max_buffered=10)
        with pytest.raises(ValueError):
            obs.Collector(sink=lambda e: None, max_buffered=0)

    def test_buffer_stays_bounded_and_stream_stays_dense(self):
        streamed = []
        collector = obs.install(
            obs.Collector(sink=streamed.append, max_buffered=8)
        )
        for i in range(50):
            obs.event("tick", i=i)
        obs.uninstall()
        assert len(collector.events) <= 8
        assert collector.events_recorded == 50
        assert len(streamed) == 50
        # the stream is what validates: dense seq from zero
        assert [e["seq"] for e in streamed] == list(range(50))
        assert obs.validate_events(streamed) == []

    def test_unbounded_without_cap(self):
        collector = obs.install(obs.Collector(sink=lambda e: None))
        for i in range(50):
            obs.event("tick", i=i)
        obs.uninstall()
        assert len(collector.events) == 50

    def test_capture_survives_eviction(self):
        # stream 20 events (evicting down to 4), then run a capture
        # cycle: the mark arithmetic must survive the evicted prefix
        streamed = []
        collector = obs.install(
            obs.Collector(sink=streamed.append, max_buffered=4)
        )
        for i in range(20):
            obs.event("tick", i=i)
        token = obs.capture_start()
        with obs.span("cell"):
            obs.event("inside")
        captured = obs.capture_finish(token)
        obs.adopt(captured)
        obs.uninstall()
        # adopt re-records the 3 captured events inside a wrapping span
        assert collector.events_recorded == 20 + 5
        assert [e["seq"] for e in streamed] == list(range(25))
        assert obs.validate_events(streamed) == []
        names = [e["name"] for e in streamed[-5:]]
        assert names == ["cell", "cell", "inside", "cell", "cell"]
        assert all(e["src"] == "cell" for e in streamed[-5:])


class TestSpanStack:
    def test_stack_reflects_open_spans(self):
        collector = obs.install()
        assert collector.span_stack() == ()
        with obs.span("outer"):
            with obs.span("inner"):
                assert collector.span_stack() == ("outer", "inner")
            assert collector.span_stack() == ("outer",)
        assert collector.span_stack() == ()
        obs.uninstall()


class TestOpenMetrics:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("net.send", 7)
        registry.gauge("soak.population", 20)
        registry.observe("soak.flood.latency", 1.5, buckets=(1.0, 2.0))
        registry.observe("soak.flood.latency", 9.0, buckets=(1.0, 2.0))
        return registry.snapshot()

    def test_render_shape(self):
        text = obs.render_openmetrics(self._snapshot())
        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        assert 'repro_net_send_total 7' in lines
        assert 'repro_soak_population 20' in lines
        assert 'repro_soak_flood_latency_bucket{le="1"} 0' in lines
        assert 'repro_soak_flood_latency_bucket{le="2"} 1' in lines
        assert 'repro_soak_flood_latency_bucket{le="+Inf"} 2' in lines
        assert 'repro_soak_flood_latency_count 2' in lines
        assert 'repro_soak_flood_latency_sum 10.5' in lines
        assert "# TYPE repro_net_send counter" in lines
        assert "# TYPE repro_soak_flood_latency histogram" in lines

    def test_names_sanitised(self):
        registry = MetricsRegistry()
        registry.counter("weird-name.2x", 1)
        text = obs.render_openmetrics(registry.snapshot(), prefix="p")
        assert "p_weird_name_2x_total 1" in text

    def test_metrics_stream(self, tmp_path):
        jsonl = tmp_path / "m.jsonl"
        om = tmp_path / "m.om"
        with obs.MetricsStream(str(jsonl), openmetrics_path=str(om)) as stream:
            stream.export(self._snapshot(), tick=4, state="healthy")
            stream.export(self._snapshot(), tick=9, state="healthy")
            assert stream.exports == 2
        rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert [r["tick"] for r in rows] == [4, 9]
        assert rows[0]["metrics"]["counters"]["net.send"] == 7
        # the OpenMetrics textfile holds the *latest* snapshot only
        text = om.read_text()
        assert text.count("# EOF") == 1
        with pytest.raises(ValueError):
            stream.export(self._snapshot())

    def test_metrics_stream_close_idempotent(self, tmp_path):
        stream = obs.MetricsStream(str(tmp_path / "m.jsonl"))
        stream.close()
        stream.close()
