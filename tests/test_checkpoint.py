"""Checkpoint/resume: journal semantics and end-to-end kill-resume.

The acceptance bar: a checkpointed run that is killed partway through
and re-run with ``resume`` must produce results byte-identical to an
uninterrupted run — at the journal level, at every library layer
(campaign, sweep, experiment batch) and through the CLI.
"""

# repro: lint-ignore-file[DET002] kill-resume drivers need a real wall-clock watchdog around the subprocess victim

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.exec import (
    CheckpointJournal,
    checkpoint_key,
    open_journal,
    pack_pickle,
    unpack_pickle,
)


class TestCheckpointKey:
    def test_stable_and_hex(self):
        key = checkpoint_key("cell", 14, 3, "auto")
        assert key == checkpoint_key("cell", 14, 3, "auto")
        assert len(key) == 64 and int(key, 16) >= 0

    def test_sensitive_to_every_part_and_type(self):
        base = checkpoint_key("cell", 14, 3)
        assert checkpoint_key("cell", 14, 4) != base
        assert checkpoint_key("cell", 14, "3") != base
        assert checkpoint_key("cell", 143) != base  # no concat collisions


class TestPackPickle:
    def test_round_trip_through_json(self):
        value = {"nested": [1, 2.5, "x"], "tuple-free": True}
        payload = json.loads(json.dumps(pack_pickle(value)))
        assert unpack_pickle(payload) == value


class TestCheckpointJournal:
    def test_record_then_load_round_trips(self, tmp_path):
        path = tmp_path / "deep" / "run.jsonl"  # parents auto-created
        with CheckpointJournal(path) as journal:
            journal.record("k1", {"x": 1}, label="cell-1")
            journal.record("k2", {"x": 2}, label="cell-2")

        fresh = CheckpointJournal(path)
        assert fresh.load() == 2
        assert "k1" in fresh and fresh.get("k2") == {"x": 2}
        assert len(fresh) == 2
        assert sorted(fresh.labels()) == ["cell-1", "cell-2"]

    def test_later_duplicate_wins(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record("k", {"x": "old"})
            journal.record("k", {"x": "new"})
        fresh = CheckpointJournal(path)
        assert fresh.load() == 1
        assert fresh.get("k") == {"x": "new"}

    def test_truncated_last_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record("k1", {"x": 1})
            journal.record("k2", {"x": 2})
        # simulate a crash mid-append: chop the tail of the last line
        raw = path.read_bytes()
        path.write_bytes(raw[:-9])
        fresh = CheckpointJournal(path)
        assert fresh.load() == 1
        assert "k1" in fresh and "k2" not in fresh

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            'not json at all\n{"no-key": true}\n'
            '{"key": "good", "payload": 7}\n\n'
        )
        journal = CheckpointJournal(path)
        assert journal.load() == 1
        assert journal.get("good") == 7

    def test_missing_file_loads_empty(self, tmp_path):
        assert CheckpointJournal(tmp_path / "absent.jsonl").load() == 0


class TestOpenJournal:
    def test_none_passthrough(self):
        assert open_journal(None, resume=False) is None

    def test_resume_without_path_is_an_error(self):
        with pytest.raises(ValueError, match="resume"):
            open_journal(None, resume=True)

    def test_refuses_to_overwrite_existing_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record("k", 1)
        with pytest.raises(ValueError, match="resume=True"):
            open_journal(path, resume=False)
        resumed = open_journal(path, resume=True)
        assert "k" in resumed
        resumed.close()


class TestSweepResume:
    @staticmethod
    def _measure_calls(calls):
        def measure(n):
            calls.append(n)
            return {"square": n * n}

        return measure

    def test_checkpointed_sweep_equals_plain_sweep(self, tmp_path):
        from repro.analysis.sweep import run_sweep

        grid = {"n": [1, 2, 3, 4]}
        plain = run_sweep(grid, lambda n: {"square": n * n})
        journaled = run_sweep(
            grid,
            lambda n: {"square": n * n},
            checkpoint=tmp_path / "sweep.jsonl",
        )
        assert journaled.points == plain.points

    def test_resume_skips_journaled_points(self, tmp_path):
        from repro.analysis.sweep import run_sweep

        path = tmp_path / "sweep.jsonl"
        grid = {"n": [1, 2, 3, 4]}
        first_calls = []
        run_sweep(grid, self._measure_calls(first_calls), checkpoint=path)
        assert first_calls == [1, 2, 3, 4]

        # drop the last journal line: a run that died at point 4
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:3]))

        second_calls = []
        resumed = run_sweep(
            grid, self._measure_calls(second_calls), checkpoint=path, resume=True
        )
        assert second_calls == [4]  # only the missing point recomputed
        assert resumed.column("square") == [1, 4, 9, 16]

    def test_full_resume_recomputes_nothing(self, tmp_path):
        from repro.analysis.sweep import run_sweep

        path = tmp_path / "sweep.jsonl"
        grid = {"n": [2, 3]}
        run_sweep(grid, lambda n: {"square": n * n}, checkpoint=path)
        calls = []
        resumed = run_sweep(
            grid, self._measure_calls(calls), checkpoint=path, resume=True
        )
        assert calls == []
        assert resumed.column("square") == [4, 9]


class TestExperimentResume:
    def _specs(self):
        from repro.core.existence import build_lhg
        from repro.flooding.experiments import ExperimentSpec

        graph, _ = build_lhg(14, 3)
        source = graph.nodes()[0]
        return [
            ExperimentSpec(protocol="flood", graph=graph, source=source, seed=s)
            for s in range(3)
        ]

    def test_batch_resume_is_identical(self, tmp_path):
        from repro.flooding.experiments import run_experiments

        path = tmp_path / "batch.jsonl"
        specs = self._specs()
        plain = run_experiments(specs)
        run_experiments(specs, checkpoint=path)

        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:1]))  # died after the first run
        resumed = run_experiments(specs, checkpoint=path, resume=True)
        assert resumed == list(plain)

    def test_repeat_runs_checkpoint_matches_plain(self, tmp_path):
        from repro.core.existence import build_lhg
        from repro.flooding.experiments import repeat_runs, run_flood
        from repro.flooding.failures import random_crashes

        graph, _ = build_lhg(14, 3)
        source = graph.nodes()[0]

        def schedule_factory(seed):
            return random_crashes(graph, 2, seed=seed, protect={source})

        plain = repeat_runs(run_flood, graph, source, schedule_factory, 4)
        journaled = repeat_runs(
            run_flood,
            graph,
            source,
            schedule_factory,
            4,
            checkpoint=tmp_path / "reps.jsonl",
        )
        assert [r.delivery_ratio for r in journaled.results] == [
            r.delivery_ratio for r in plain.results
        ]
        assert [r.messages for r in journaled.results] == [
            r.messages for r in plain.results
        ]

    def test_supervision_needs_a_registered_runner(self):
        from repro.core.existence import build_lhg
        from repro.flooding.experiments import repeat_runs

        graph, _ = build_lhg(14, 3)
        source = graph.nodes()[0]

        def unregistered_runner(graph, source, failures=None):
            raise AssertionError("never reached")

        with pytest.raises(ValueError, match="registered runner"):
            repeat_runs(
                unregistered_runner, graph, source, None, 2, retries=1
            )


class TestCampaignResume:
    def test_interrupted_campaign_resumes_byte_identical(self, tmp_path):
        from repro.exec import build_lhg_cached
        from repro.robustness import ChaosCampaign

        graph, _ = build_lhg_cached(20, 3)
        campaign = ChaosCampaign([(graph.name, graph)], seeds=[0])
        baseline = campaign.run().render()

        path = tmp_path / "campaign.jsonl"
        campaign.run(checkpoint=path).render()
        lines = path.read_text().splitlines(keepends=True)
        assert len(lines) == len(campaign.scenarios) * len(campaign.protocols)
        path.write_text("".join(lines[: len(lines) // 2]))

        resumed = campaign.run(checkpoint=path, resume=True)
        assert resumed.render() == baseline
        assert resumed.all_green

    def test_journal_is_human_readable_json(self, tmp_path):
        from repro.exec import build_lhg_cached
        from repro.robustness import ChaosCampaign

        graph, _ = build_lhg_cached(20, 3)
        path = tmp_path / "campaign.jsonl"
        ChaosCampaign([(graph.name, graph)], seeds=[0]).run(checkpoint=path)
        record = json.loads(path.read_text().splitlines()[0])
        # campaign cells journal as plain JSON, not base64 pickle blobs
        assert "__pickle__" not in record["payload"]
        assert record["payload"]["topology"] == graph.name
        assert record["label"]


def _cli(args, env, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
    )


def _matrix_portion(stdout: str) -> str:
    """The deterministic part of chaos output (drop the timing line)."""
    lines = stdout.splitlines()
    keep = [
        line
        for line in lines
        if "cells in" not in line  # wall-time line varies run to run
    ]
    return "\n".join(keep)


class TestKillResumeEndToEnd:
    """Kill a checkpointed CLI run with SIGKILL; resume must match serial."""

    def test_killed_then_resumed_run_matches_uninterrupted(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        args = ["chaos", "64", "4", "--repeats", "2"]
        journal = tmp_path / "ck.jsonl"

        uninterrupted = _cli(args, env)
        assert uninterrupted.returncode == 0, uninterrupted.stderr

        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", *args, "--checkpoint", str(journal)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        # hard-kill as soon as a few cells are journaled (mid-run)
        deadline = time.time() + 60
        while time.time() < deadline and victim.poll() is None:
            if journal.exists() and journal.read_text().count("\n") >= 4:
                victim.send_signal(signal.SIGKILL)
                break
            time.sleep(0.005)
        victim.wait(timeout=60)

        completed = journal.read_text().count("\n") if journal.exists() else 0
        resumed = _cli(
            args + ["--checkpoint", str(journal), "--resume"], env
        )
        assert resumed.returncode == 0, resumed.stderr
        assert _matrix_portion(resumed.stdout) == _matrix_portion(
            uninterrupted.stdout
        )
        # the resumed run really continued the journal rather than
        # starting over: every cell appears exactly once overall
        total = journal.read_text().count("\n")
        assert total == 28  # 14 scenario x protocol cells x 2 seeds
        assert total >= completed
