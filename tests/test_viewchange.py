"""Tests for the in-band view-change membership protocol."""

import pytest

from repro.core.existence import build_lhg
from repro.errors import ProtocolError, SimulationError
from repro.flooding.experiments import run_view_change
from repro.flooding.network import Network
from repro.flooding.protocols.viewchange import ViewChangeProtocol
from repro.flooding.simulator import Simulator
from repro.graphs.generators.classic import cycle_graph


class TestParameters:
    def test_timeout_must_exceed_period(self):
        sim = Simulator()
        net = Network(cycle_graph(4), sim)
        with pytest.raises(ProtocolError):
            ViewChangeProtocol(net, 0, period=2.0, timeout=1.0)

    def test_negative_decision_delay_rejected(self):
        sim = Simulator()
        net = Network(cycle_graph(4), sim)
        with pytest.raises(ProtocolError):
            ViewChangeProtocol(net, 0, decision_delay=-1.0)

    def test_crashed_coordinator_rejected(self):
        graph, _ = build_lhg(12, 3)
        coordinator = graph.nodes()[0]
        with pytest.raises(SimulationError):
            run_view_change(graph, coordinator, [coordinator], 10.0)


class TestConvergence:
    def test_single_crash_converges(self):
        graph, _ = build_lhg(20, 3)
        coordinator = graph.nodes()[0]
        victim = graph.nodes()[7]
        report = run_view_change(graph, coordinator, [victim], 10.0)
        assert report.converged
        assert report.correct_membership
        assert report.adopters == report.survivors == 19

    def test_k_minus_1_burst_converges(self):
        graph, _ = build_lhg(24, 4)
        coordinator = graph.nodes()[0]
        victims = graph.nodes()[5:8]  # 3 = k-1 simultaneous crashes
        report = run_view_change(graph, coordinator, victims, 10.0)
        assert report.converged
        assert report.survivors == 21

    def test_no_crash_no_view_change(self):
        graph, _ = build_lhg(14, 3)
        coordinator = graph.nodes()[0]
        report = run_view_change(graph, coordinator, [], 10.0)
        assert report.decided_at is None
        assert report.adopters == 0

    def test_decision_delay_batches_the_burst(self):
        # one burst -> one decision containing every victim
        graph, _ = build_lhg(22, 3)
        coordinator = graph.nodes()[0]
        victims = [graph.nodes()[4], graph.nodes()[9]]
        report = run_view_change(
            graph, coordinator, victims, 10.0, decision_delay=4.0
        )
        assert report.converged  # membership excludes BOTH victims

    def test_latency_ordering(self):
        # convergence happens after the decision, which happens after
        # the crash plus detection time
        graph, _ = build_lhg(20, 3)
        coordinator = graph.nodes()[0]
        victim = graph.nodes()[5]
        report = run_view_change(
            graph, coordinator, [victim], 10.0, timeout=3.0
        )
        assert report.decided_at > 10.0 + 3.0
        assert report.last_adoption >= report.decided_at

    def test_tighter_timeout_converges_faster(self):
        graph, _ = build_lhg(20, 3)
        coordinator = graph.nodes()[0]
        victim = graph.nodes()[5]
        fast = run_view_change(
            graph, coordinator, [victim], 10.0, period=0.5, timeout=1.5
        )
        slow = run_view_change(
            graph, coordinator, [victim], 10.0, period=1.0, timeout=6.0
        )
        assert fast.converged and slow.converged
        assert fast.last_adoption < slow.last_adoption


class TestProtocolContract:
    def test_unexpected_payload_rejected(self):
        from repro.flooding.network import NodeApi

        sim = Simulator()
        net = Network(cycle_graph(4), sim)
        protocol = ViewChangeProtocol(net, 0)
        api = NodeApi(net, 0)
        protocol.on_start(0, api)
        with pytest.raises(ProtocolError):
            protocol.on_message(0, object(), 1, api)
