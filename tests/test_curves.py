"""Tests for coverage curves and ASCII rendering."""

import pytest

from repro.analysis.curves import (
    ascii_curve,
    ascii_curves,
    coverage_curve,
    time_to_fraction,
)
from repro.core.existence import build_lhg
from repro.flooding.experiments import run_flood
from repro.flooding.metrics import FloodResult
from repro.graphs.generators.classic import path_graph


def make_result(times, n=None):
    n = n if n is not None else len(times)
    return FloodResult(
        protocol="flood",
        n=n,
        alive=n,
        reachable=n,
        covered=len(times),
        messages=0,
        completion_time=max(times.values()) if times else None,
        delivery_times=times,
    )


class TestCoverageCurve:
    def test_monotone_and_normalised(self):
        result = make_result({i: float(i) for i in range(10)})
        curve = coverage_curve(result, buckets=5)
        fractions = [f for _, f in curve]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        assert curve[0][0] == 0.0

    def test_partial_coverage_normalised_to_n(self):
        result = make_result({i: float(i) for i in range(5)}, n=10)
        curve = coverage_curve(result, buckets=4)
        assert curve[-1][1] == 0.5

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            coverage_curve(make_result({}, n=5))

    def test_bucket_domain(self):
        with pytest.raises(ValueError):
            coverage_curve(make_result({0: 1.0}), buckets=0)

    def test_matches_real_flood(self):
        g = path_graph(6)
        result = run_flood(g, 0)
        curve = coverage_curve(result, buckets=5)
        # on a path, coverage grows linearly: at t=T the fraction is 1
        assert curve[-1][1] == 1.0


class TestTimeToFraction:
    def test_median_time(self):
        result = make_result({i: float(i) for i in range(1, 11)}, n=10)
        assert time_to_fraction(result, 0.5) == 5.0
        assert time_to_fraction(result, 1.0) == 10.0

    def test_unreached_fraction_rejected(self):
        result = make_result({0: 1.0}, n=10)
        with pytest.raises(ValueError):
            time_to_fraction(result, 0.5)

    def test_domain(self):
        result = make_result({0: 1.0})
        with pytest.raises(ValueError):
            time_to_fraction(result, 0.0)

    def test_lhg_beats_harary_to_half_coverage(self):
        from repro.graphs.generators.harary import harary_graph

        n, k = 126, 4
        lhg, _ = build_lhg(n, k)
        lhg_half = time_to_fraction(run_flood(lhg, lhg.nodes()[0]), 0.5)
        harary_half = time_to_fraction(run_flood(harary_graph(k, n), 0), 0.5)
        assert lhg_half < harary_half


class TestAsciiRendering:
    def test_single_curve_dimensions(self):
        samples = [(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)]
        text = ascii_curve(samples, width=30, height=8, label="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 8 + 1  # label + height-2 middle + top + bottom
        assert "*" in text

    def test_multi_curve_legend(self):
        a = [(0.0, 0.0), (1.0, 1.0)]
        b = [(0.0, 0.0), (2.0, 0.5)]
        text = ascii_curves([("fast", a), ("slow", b)])
        assert "*=fast" in text and "+=slow" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_curve([])
        with pytest.raises(ValueError):
            ascii_curves([])
