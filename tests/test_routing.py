"""Tests for certificate-based routing and Menger witnesses."""

import random

import pytest

from repro.errors import CertificateError, GraphError
from repro.core.existence import build_lhg
from repro.core.routing import (
    locate,
    menger_witness,
    route_length_bound,
    tree_route,
)
from repro.graphs.traversal import (
    is_simple_path,
    paths_internally_disjoint,
    shortest_path_length,
)

PAIRS = [(6, 3), (10, 3), (13, 3), (17, 3), (46, 3), (20, 4), (27, 4), (18, 5)]


class TestLocate:
    def test_classifies_interiors(self):
        _, cert = build_lhg(10, 3, rule="jenkins-demers")
        loc = locate(cert, ("T", 1, 0))
        assert loc.kind == "interior" and loc.copy == 1 and loc.tree_id == 0

    def test_classifies_shared_leaves(self):
        _, cert = build_lhg(6, 3)
        leaf_id = next(iter(cert.leaves))
        loc = locate(cert, ("L", leaf_id))
        assert loc.kind == "shared-leaf" and loc.copy is None

    def test_classifies_unshared_members(self):
        _, cert = build_lhg(8, 3)  # k-diamond with unshared slot
        unshared = [l for l in cert.leaves.values() if l.kind == "unshared"]
        assert unshared
        loc = locate(cert, ("U", unshared[0].id, 2))
        assert loc.kind == "unshared-leaf" and loc.copy == 2

    def test_rejects_foreign_labels(self):
        _, cert = build_lhg(6, 3)
        with pytest.raises(CertificateError):
            locate(cert, ("T", 99, 99))
        with pytest.raises(CertificateError):
            locate(cert, "stranger")


class TestTreeRoute:
    @pytest.mark.parametrize("n,k", PAIRS)
    def test_routes_are_valid_simple_paths(self, n, k):
        graph, cert = build_lhg(n, k)
        rng = random.Random(n * 31 + k)
        nodes = graph.nodes()
        for _ in range(30):
            s, t = rng.sample(nodes, 2)
            path = tree_route(cert, s, t)
            assert path[0] == s and path[-1] == t
            assert is_simple_path(graph, path), (s, t, path)

    @pytest.mark.parametrize("n,k", PAIRS)
    def test_routes_within_length_bound(self, n, k):
        graph, cert = build_lhg(n, k)
        bound = route_length_bound(cert)
        rng = random.Random(7)
        nodes = graph.nodes()
        for _ in range(30):
            s, t = rng.sample(nodes, 2)
            assert len(tree_route(cert, s, t)) - 1 <= bound

    def test_self_route(self):
        graph, cert = build_lhg(10, 3)
        node = graph.nodes()[0]
        assert tree_route(cert, node, node) == [node]

    def test_stretch_is_bounded(self):
        graph, cert = build_lhg(46, 3)
        rng = random.Random(3)
        nodes = graph.nodes()
        worst_stretch = 0.0
        for _ in range(40):
            s, t = rng.sample(nodes, 2)
            structural = len(tree_route(cert, s, t)) - 1
            optimal = shortest_path_length(graph, s, t)
            worst_stretch = max(worst_stretch, structural / optimal)
        assert worst_stretch <= 4.0


class TestMengerWitness:
    @pytest.mark.parametrize("n,k", [(6, 3), (13, 3), (20, 4), (18, 5)])
    def test_witness_family(self, n, k):
        graph, cert = build_lhg(n, k)
        rng = random.Random(n + k)
        nodes = graph.nodes()
        for _ in range(5):
            s, t = rng.sample(nodes, 2)
            paths = menger_witness(graph, cert, s, t)
            assert len(paths) == k
            assert paths_internally_disjoint(paths)
            assert all(is_simple_path(graph, p) for p in paths)
            assert all(p[0] == s and p[-1] == t for p in paths)

    def test_witness_detects_damaged_graph(self):
        graph, cert = build_lhg(10, 3)
        # cut one node's links down below k
        victim = graph.nodes()[0]
        for neighbor in list(graph.neighbors(victim))[:2]:
            graph.remove_edge(victim, neighbor)
        other = [v for v in graph.nodes() if v != victim][-1]
        with pytest.raises(GraphError):
            menger_witness(graph, cert, victim, other)
