"""Tests for the Weisfeiler-Lehman structural hash."""

from repro.core.existence import build_lhg
from repro.graphs.generators.classic import (
    complete_bipartite_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.wl_hash import weisfeiler_lehman_hash, wl_equivalent


class TestInvariance:
    def test_relabeling_preserves_hash(self):
        g = petersen_graph()
        shuffled = g.relabeled({i: f"node-{(i * 7) % 10}" for i in range(10)})
        assert weisfeiler_lehman_hash(g) == weisfeiler_lehman_hash(shuffled)

    def test_construction_rebuild_is_isomorphic(self):
        a, _ = build_lhg(14, 3)
        b, _ = build_lhg(14, 3)
        assert wl_equivalent(a, b)

    def test_deterministic(self):
        g = cycle_graph(8)
        assert weisfeiler_lehman_hash(g) == weisfeiler_lehman_hash(g)


class TestSeparation:
    def test_different_sizes_differ(self):
        assert not wl_equivalent(cycle_graph(6), cycle_graph(7))

    def test_same_counts_different_structure(self):
        # K_{3,3} and C6 + extra edges differ; simpler: path vs star, both trees
        assert not wl_equivalent(path_graph(5), star_graph(4))

    def test_same_degree_sequence_different_components(self):
        # C6 vs two triangles: both 2-regular on 6 nodes; the component
        # invariant folded into the hash separates them
        from repro.graphs.graph import Graph

        two_triangles = Graph(
            edges=[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        )
        assert not wl_equivalent(cycle_graph(6), two_triangles)

    def test_documented_blind_spot_connected_regular_pairs(self):
        # 1-WL cannot separate two connected k-regular graphs of equal
        # size: every node keeps one colour.  This test pins the
        # documented limitation so a silent behaviour change is noticed.
        from repro.core.jenkins_demers import jenkins_demers_graph
        from repro.graphs.generators.random import random_regular_graph
        from repro.graphs.traversal import is_connected

        lhg, _ = jenkins_demers_graph(10, 3)
        rand = random_regular_graph(3, 10, seed=1)
        assert is_connected(rand)
        assert wl_equivalent(lhg, rand)  # collision despite non-isomorphism

    def test_base_lhg_is_complete_bipartite(self):
        lhg, _ = build_lhg(8, 4, rule="jenkins-demers")
        assert wl_equivalent(lhg, complete_bipartite_graph(4, 4))


class TestOverlayUse:
    def test_overlay_rebuilds_are_isomorphic_across_label_churn(self):
        from repro.overlay import LHGOverlay

        a = LHGOverlay(k=3)
        b = LHGOverlay(k=3)
        for i in range(12):
            a.join(f"alpha-{i}")
            b.join(f"beta-{i}")
        assert wl_equivalent(a.topology(), b.topology())
