"""The execution engine: pool semantics, seeding, caching, profiling."""

from __future__ import annotations

import os

import pytest

from repro.exec import (
    GRAPH_CACHE,
    GraphCache,
    KeyedCache,
    RemoteTraceback,
    TopologySpec,
    WorkerPool,
    build_lhg_cached,
    derive_seed,
    fork_available,
    parallel_map,
    resolve_workers,
)
from repro.exec.profiling import CellTiming, ExecutionReport


def _square(x: int) -> int:
    return x * x


class TestResolveWorkers:
    def test_none_and_one_are_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_minus_one_means_all_cores(self):
        assert resolve_workers(-1) >= 1

    def test_explicit_count_passes_through(self):
        assert resolve_workers(4) == 4

    @pytest.mark.parametrize("bad", [0, -2, -16])
    def test_zero_and_other_negatives_raise(self, bad):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(bad)

    def test_pool_rejects_invalid_count_eagerly(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(workers=0).map(_square, [1, 2])


class TestWorkerPool:
    def test_serial_map_preserves_order(self):
        pool = WorkerPool(workers=1)
        assert pool.map(_square, [3, 1, 2]) == [9, 1, 4]
        assert pool.last_report.mode == "serial"
        assert pool.last_report.workers == 1

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_map_matches_serial(self, workers):
        items = list(range(17))
        serial = WorkerPool(workers=1).map(_square, items)
        pool = WorkerPool(workers=workers)
        assert pool.map(_square, items) == serial
        if fork_available() and (os.cpu_count() or 1) > 1:
            assert pool.last_report.mode == "fork-pool"
            assert pool.last_report.workers == min(workers, len(items))
        else:
            # single-core (or fork-less) boxes degrade to in-process
            assert pool.last_report.mode == "serial"

    def test_single_core_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        pool = WorkerPool(workers=4)
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert pool.last_report.mode == "serial"

    def test_closures_are_mappable(self):
        # the fork-based design ships indices, not pickled callables,
        # so lambdas and closures work across the pool
        offset = 100
        results = parallel_map(lambda x: x + offset, [1, 2, 3], workers=2)
        assert results == [101, 102, 103]

    def test_empty_items(self):
        pool = WorkerPool(workers=4)
        assert pool.map(_square, []) == []
        assert pool.last_report.cells == 0

    def test_single_item_runs_serial(self):
        pool = WorkerPool(workers=8)
        assert pool.map(_square, [5]) == [25]
        assert pool.last_report.workers == 1

    def test_report_labels_and_timings(self):
        pool = WorkerPool(workers=1)
        pool.map(_square, [1, 2], labels=["a", "b"])
        report = pool.last_report
        assert [t.label for t in report.timings] == ["a", "b"]
        assert all(t.seconds >= 0 for t in report.timings)
        assert report.wall_seconds >= 0

    def test_worker_exception_propagates(self):
        def boom(x):
            raise ValueError(f"bad cell {x}")

        with pytest.raises(ValueError, match="bad cell"):
            WorkerPool(workers=2).map(boom, [1, 2, 3])
        with pytest.raises(ValueError, match="bad cell"):
            WorkerPool(workers=1).map(boom, [1])

    @pytest.mark.skipif(not fork_available(), reason="requires fork")
    def test_worker_exception_keeps_remote_traceback(self, monkeypatch):
        def boom(x):
            raise ValueError(f"bad cell {x}")

        # pretend to be multicore so the fork path runs even on 1-CPU CI
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with pytest.raises(ValueError, match="bad cell") as excinfo:
            WorkerPool(workers=2).map(boom, [1, 2, 3])
        exc = excinfo.value
        # the worker-side traceback survives the pickle round-trip both
        # as an attribute and as the __cause__ chain pytest will render
        assert "bad cell" in exc.remote_traceback
        assert "in boom" in exc.remote_traceback
        assert isinstance(exc.__cause__, RemoteTraceback)
        assert "in boom" in str(exc.__cause__)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "flood", 3) == derive_seed(0, "flood", 3)

    def test_sensitive_to_every_part(self):
        base = derive_seed(7, "a", "b")
        assert derive_seed(8, "a", "b") != base
        assert derive_seed(7, "a", "c") != base
        assert derive_seed(7, "ab", "") != base  # no concat collisions

    def test_type_distinction(self):
        assert derive_seed(0, 1) != derive_seed(0, "1")

    def test_range(self):
        seed = derive_seed(123, "x")
        assert 0 <= seed < 2**63

    def test_stable_pinned_value(self):
        # pinned so any accidental change to the derivation scheme
        # (which would silently change every parallel cell) fails loudly
        assert derive_seed(0) == derive_seed(0)
        first = derive_seed(42, "campaign", 0)
        assert first == derive_seed(42, "campaign", 0)


class TestKeyedCache:
    def test_hit_miss_accounting(self):
        cache = KeyedCache("test")
        built = []

        def builder():
            built.append(1)
            return "value"

        assert cache.get_or_build("k", builder) == "value"
        assert cache.get_or_build("k", builder) == "value"
        assert built == [1]
        assert cache.hits == 1 and cache.misses == 1
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_peek_never_builds(self):
        cache = KeyedCache()
        assert cache.peek("absent") is None
        assert cache.misses == 0

    def test_clear_resets(self):
        cache = KeyedCache()
        cache.get_or_build("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestGraphCache:
    def test_same_object_on_hit(self):
        cache = GraphCache()
        g1, c1 = cache.lhg(14, 3)
        g2, c2 = cache.lhg(14, 3)
        assert g1 is g2 and c1 is c2
        assert cache.hits == 1 and cache.misses == 1

    def test_rule_is_part_of_the_key(self):
        cache = GraphCache()
        cache.lhg(14, 3, rule="auto")
        cache.lhg(14, 3, rule="k-tree")
        assert cache.misses == 2

    def test_shared_cache_facade(self):
        GRAPH_CACHE.clear()
        g1, _ = build_lhg_cached(10, 3)
        g2, _ = build_lhg_cached(10, 3)
        assert g1 is g2
        assert GRAPH_CACHE.hits >= 1

    def test_topology_spec_resolution(self):
        spec = TopologySpec(14, 3)
        assert spec.label == "lhg-n14-k3"
        assert TopologySpec(14, 3, rule="k-tree").label == "lhg-n14-k3-k-tree"
        cache = GraphCache()
        graph, certificate = cache.resolve(spec)
        assert graph.number_of_nodes() == 14
        assert certificate is not None

    def test_key_is_stable_across_processes(self):
        # cache keys (and the checkpoint keys derived from them) must not
        # depend on PYTHONHASHSEED, or a resumed run would recompute — or
        # worse, mis-attribute — every journaled cell
        import subprocess
        import sys

        script = (
            "from repro.exec.checkpoint import checkpoint_key\n"
            "from repro.robustness import ChaosCampaign\n"
            "from repro.exec import TopologySpec\n"
            "c = ChaosCampaign([('t', TopologySpec(14, 3))])\n"
            "print(checkpoint_key('graph', 14, 3, 'auto'))\n"
            "print(c.cell_key('t', 'crash-1', 'flood', 7))\n"
        )
        outputs = set()
        for hashseed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(proc.stdout)
        assert len(outputs) == 1

    def test_same_display_name_different_params_stay_distinct(self):
        # two topologies can share a human-facing name; the cache and
        # the checkpoint keys must still treat them as different work,
        # not serve one construction (or one journal entry) for both
        from repro.robustness import ChaosCampaign

        small, big = TopologySpec(14, 3), TopologySpec(30, 3)
        cache = GraphCache()
        g_small, _ = cache.resolve(small)
        g_big, _ = cache.resolve(big)
        assert cache.misses == 2 and cache.hits == 0
        assert g_small.number_of_nodes() != g_big.number_of_nodes()

        key_small = ChaosCampaign([("ring", small)]).cell_key(
            "ring", "crash-1", "flood", 0
        )
        key_big = ChaosCampaign([("ring", big)]).cell_key(
            "ring", "crash-1", "flood", 0
        )
        assert key_small != key_big


class TestExecutionReport:
    def test_roll_ups(self):
        report = ExecutionReport(
            mode="fork-pool",
            workers=2,
            requested_workers=2,
            wall_seconds=2.0,
            timings=[CellTiming("a", 1.0), CellTiming("b", 3.0)],
            cache={"hits": 3, "misses": 1, "entries": 1},
        )
        assert report.cells == 2
        assert report.total_cell_seconds() == 4.0
        assert report.parallel_efficiency() == 1.0
        assert report.cache_hit_rate() == 0.75
        assert [t.label for t in report.slowest(1)] == ["b"]
        assert "2 cells" in report.summary()
        assert "75%" in report.summary()

    def test_defaults(self):
        report = ExecutionReport()
        assert report.cache_hit_rate() is None
        assert report.parallel_efficiency() == 0.0
