"""Tests for the discrete-event engine and event queue."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.flooding.events import EventQueue
from repro.flooding.simulator import Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("b"))
        q.push(1.0, lambda: fired.append("a"))
        while True:
            event = q.pop()
            if event is None:
                break
            event.action()
        assert fired == ["a", "b"]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        fired = []
        q.push(1.0, lambda: fired.append("normal"), priority=0)
        q.push(1.0, lambda: fired.append("urgent"), priority=-10)
        q.pop().action()
        assert fired == ["urgent"]

    def test_sequence_breaks_full_ties(self):
        q = EventQueue()
        fired = []
        q.push(1.0, lambda: fired.append(1))
        q.push(1.0, lambda: fired.append(2))
        q.pop().action()
        q.pop().action()
        assert fired == [1, 2]

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        event.cancel()
        assert q.pop() is None

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        first.cancel()
        assert q.peek_time() == 2.0

    def test_rejects_negative_and_nan(self):
        q = EventQueue()
        with pytest.raises(SchedulingError):
            q.push(-1.0, lambda: None)
        with pytest.raises(SchedulingError):
            q.push(float("nan"), lambda: None)


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(3.0, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        processed = sim.run()
        assert processed == 2
        assert times == [1.5, 3.0]
        assert sim.now == 3.0

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule(1.0, lambda: None)

    def test_schedule_after(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule_after(2.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [3.0]

    def test_schedule_after_negative_rejected(self):
        with pytest.raises(SchedulingError):
            Simulator().schedule_after(-0.5, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run(until=2.0)
        assert fired == [1.0, 2.0]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_cascading_events(self):
        sim = Simulator()
        count = [0]

        def chain():
            count[0] += 1
            if count[0] < 5:
                sim.schedule_after(1.0, chain)

        sim.schedule(0.0, chain)
        sim.run()
        assert count[0] == 5
        assert sim.processed_events == 5

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule_after(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=50)

    def test_not_reentrant(self):
        sim = Simulator()
        caught = []

        def recurse():
            try:
                sim.run()
            except SimulationError:
                caught.append(True)

        sim.schedule(0.0, recurse)
        sim.run()
        assert caught == [True]

    def test_pending_events_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0
