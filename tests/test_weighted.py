"""Tests for weighted shortest paths and the simulator cross-validation."""

import pytest

from repro.core.existence import build_lhg
from repro.errors import DisconnectedGraphError, GraphError, NodeNotFoundError
from repro.flooding.experiments import run_flood
from repro.flooding.network import FixedLinkLatency
from repro.graphs.graph import Graph
from repro.graphs.generators.classic import cycle_graph, path_graph
from repro.graphs.weighted import (
    dijkstra,
    link_weights_from_seed,
    weighted_diameter,
    weighted_eccentricity,
    weighted_shortest_path,
)


def unit(u, v):
    return 1.0


class TestDijkstra:
    def test_unit_weights_match_bfs(self):
        from repro.graphs.traversal import bfs_levels

        graph, _ = build_lhg(22, 3)
        source = graph.nodes()[0]
        weighted = dijkstra(graph, source, unit)
        hops = bfs_levels(graph, source)
        assert weighted == {node: float(d) for node, d in hops.items()}

    def test_weights_change_routes(self):
        # square where the direct edge is expensive
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        weight = lambda u, v: 10.0 if {u, v} == {0, 2} else 1.0
        assert dijkstra(g, 0, weight)[2] == 2.0
        assert weighted_shortest_path(g, 0, 2, weight) == [0, 1, 2]

    def test_unreachable_omitted(self):
        g = Graph(nodes=[0, 1])
        assert dijkstra(g, 0, unit) == {0: 0.0}
        assert weighted_shortest_path(g, 0, 1, unit) is None

    def test_missing_source(self):
        with pytest.raises(NodeNotFoundError):
            dijkstra(Graph(), 0, unit)

    def test_negative_weight_rejected(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            dijkstra(g, 0, lambda u, v: -1.0)

    def test_path_reconstruction_valid(self):
        graph, _ = build_lhg(14, 3)
        weight = link_weights_from_seed(graph, 0.5, 2.0, seed=3)
        nodes = graph.nodes()
        path = weighted_shortest_path(graph, nodes[0], nodes[-1], weight)
        assert path[0] == nodes[0] and path[-1] == nodes[-1]
        assert all(graph.has_edge(u, v) for u, v in zip(path, path[1:]))


class TestEccentricityDiameter:
    def test_cycle_unit_diameter(self):
        assert weighted_diameter(cycle_graph(8), unit) == 4.0

    def test_disconnected_raises(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(DisconnectedGraphError):
            weighted_eccentricity(g, 0, unit)

    def test_empty_diameter(self):
        assert weighted_diameter(Graph(), unit) == 0.0


class TestLinkWeightsFromSeed:
    def test_symmetric_and_deterministic(self):
        graph, _ = build_lhg(10, 3)
        a = link_weights_from_seed(graph, 0.5, 1.5, seed=7)
        b = link_weights_from_seed(graph, 0.5, 1.5, seed=7)
        for u, v in graph.iter_edges():
            assert a(u, v) == a(v, u) == b(u, v)
            assert 0.5 <= a(u, v) <= 1.5

    def test_non_link_rejected(self):
        g = path_graph(3)
        weight = link_weights_from_seed(g, 1.0, 2.0)
        with pytest.raises(GraphError):
            weight(0, 2)

    def test_domain(self):
        with pytest.raises(GraphError):
            link_weights_from_seed(path_graph(3), 0.0, 1.0)


class TestSimulatorCrossValidation:
    """Two independent implementations must agree: event-driven flooding
    over fixed link latencies vs Dijkstra weighted eccentricity."""

    @pytest.mark.parametrize("n,k,seed", [(14, 3, 1), (22, 3, 2), (20, 4, 3)])
    def test_flood_completion_equals_weighted_eccentricity(self, n, k, seed):
        graph, _ = build_lhg(n, k)
        weight = link_weights_from_seed(graph, 0.3, 2.5, seed=seed)
        source = graph.nodes()[0]
        result = run_flood(graph, source, latency=FixedLinkLatency(weight))
        assert result.fully_covered
        expected = weighted_eccentricity(graph, source, weight)
        assert result.completion_time == pytest.approx(expected)

    def test_per_node_delivery_times_equal_dijkstra(self):
        graph, _ = build_lhg(17, 3)
        weight = link_weights_from_seed(graph, 0.5, 2.0, seed=9)
        source = graph.nodes()[0]
        result = run_flood(graph, source, latency=FixedLinkLatency(weight))
        distances = dijkstra(graph, source, weight)
        for node, time in result.delivery_times.items():
            assert time == pytest.approx(distances[node])