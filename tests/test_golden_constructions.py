"""Golden structural tests: pin the exact output of each builder.

The property tests prove the constructions *valid*; these pin them
*stable*.  An intentional construction change must update the expected
edge sets below — an unintentional one fails loudly.  Labels:
``("T", copy, interior)`` tree copies, ``("L", leaf)`` shared leaves,
``("U", leaf, copy)`` unshared-clique members.
"""

from repro.core.existence import build_lhg


def edge_set(graph):
    return sorted(tuple(sorted(e, key=repr)) for e in graph.iter_edges())


class TestGoldenEdgeSets:
    def test_jd_base_6_3_is_k33(self):
        graph, _ = build_lhg(6, 3, rule="jenkins-demers")
        assert edge_set(graph) == [
            (("L", 0), ("T", 0, 0)),
            (("L", 0), ("T", 1, 0)),
            (("L", 0), ("T", 2, 0)),
            (("L", 1), ("T", 0, 0)),
            (("L", 1), ("T", 1, 0)),
            (("L", 1), ("T", 2, 0)),
            (("L", 2), ("T", 0, 0)),
            (("L", 2), ("T", 1, 0)),
            (("L", 2), ("T", 2, 0)),
        ]

    def test_kdiamond_8_3_one_unshared_clique(self):
        graph, _ = build_lhg(8, 3, rule="k-diamond")
        assert edge_set(graph) == [
            (("L", 0), ("T", 0, 0)),
            (("L", 0), ("T", 1, 0)),
            (("L", 0), ("T", 2, 0)),
            (("L", 1), ("T", 0, 0)),
            (("L", 1), ("T", 1, 0)),
            (("L", 1), ("T", 2, 0)),
            (("T", 0, 0), ("U", 2, 0)),
            (("T", 1, 0), ("U", 2, 1)),
            (("T", 2, 0), ("U", 2, 2)),
            (("U", 2, 0), ("U", 2, 1)),
            (("U", 2, 0), ("U", 2, 2)),
            (("U", 2, 1), ("U", 2, 2)),
        ]

    def test_ktree_7_3_one_added_leaf(self):
        graph, _ = build_lhg(7, 3, rule="k-tree")
        assert edge_set(graph) == [
            (("L", 0), ("T", 0, 0)),
            (("L", 0), ("T", 1, 0)),
            (("L", 0), ("T", 2, 0)),
            (("L", 1), ("T", 0, 0)),
            (("L", 1), ("T", 1, 0)),
            (("L", 1), ("T", 2, 0)),
            (("L", 2), ("T", 0, 0)),
            (("L", 2), ("T", 1, 0)),
            (("L", 2), ("T", 2, 0)),
            (("L", 3), ("T", 0, 0)),
            (("L", 3), ("T", 1, 0)),
            (("L", 3), ("T", 2, 0)),
        ]

    def test_jd_10_3_first_conversion(self):
        graph, _ = build_lhg(10, 3, rule="jenkins-demers")
        assert edge_set(graph) == [
            (("L", 1), ("T", 0, 0)),
            (("L", 1), ("T", 1, 0)),
            (("L", 1), ("T", 2, 0)),
            (("L", 2), ("T", 0, 0)),
            (("L", 2), ("T", 1, 0)),
            (("L", 2), ("T", 2, 0)),
            (("L", 3), ("T", 0, 1)),
            (("L", 3), ("T", 1, 1)),
            (("L", 3), ("T", 2, 1)),
            (("L", 4), ("T", 0, 1)),
            (("L", 4), ("T", 1, 1)),
            (("L", 4), ("T", 2, 1)),
            (("T", 0, 0), ("T", 0, 1)),
            (("T", 1, 0), ("T", 1, 1)),
            (("T", 2, 0), ("T", 2, 1)),
        ]

    def test_k2_base_is_c4(self):
        graph, _ = build_lhg(4, 2, rule="k-tree")
        assert edge_set(graph) == [
            (("L", 0), ("T", 0, 0)),
            (("L", 0), ("T", 1, 0)),
            (("L", 1), ("T", 0, 0)),
            (("L", 1), ("T", 1, 0)),
        ]
