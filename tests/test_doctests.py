"""Run every doctest embedded in the library's docstrings.

Docstring examples are documentation that can rot; this hook keeps them
executable.  Any module with ``>>>`` examples must pass them verbatim.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"
