"""Tests for sweeps, tables, and shape statistics."""

import math

import pytest

from repro.analysis.stats import (
    growth_exponent,
    is_roughly_logarithmic,
    linear_slope,
    mean_and_ci,
    ratio_series,
)
from repro.analysis.sweep import geometric_sizes, run_sweep
from repro.analysis.tables import render_series, render_table


class TestStats:
    def test_mean_and_ci(self):
        mean, ci = mean_and_ci([2.0, 4.0, 6.0])
        assert mean == 4.0
        assert ci > 0

    def test_single_sample_ci_zero(self):
        assert mean_and_ci([3.0]) == (3.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_and_ci([])

    def test_linear_slope(self):
        assert linear_slope([0, 1, 2], [1, 3, 5]) == pytest.approx(2.0)

    def test_slope_domain(self):
        with pytest.raises(ValueError):
            linear_slope([1], [2])
        with pytest.raises(ValueError):
            linear_slope([1, 1], [2, 3])
        with pytest.raises(ValueError):
            linear_slope([1, 2], [3])

    def test_growth_exponent_linear(self):
        ns = [10, 20, 40, 80]
        assert growth_exponent(ns, ns) == pytest.approx(1.0)

    def test_growth_exponent_logarithmic(self):
        ns = [16, 64, 256, 1024]
        values = [math.log(n) for n in ns]
        assert growth_exponent(ns, values) < 0.4

    def test_growth_domain(self):
        with pytest.raises(ValueError):
            growth_exponent([1, 0], [1, 1])

    def test_is_roughly_logarithmic(self):
        ns = [8, 64, 512]
        assert is_roughly_logarithmic(ns, [3.0, 6.0, 9.0])
        assert not is_roughly_logarithmic(ns, [8.0, 64.0, 512.0])

    def test_ratio_series(self):
        assert ratio_series([4, 9], [2, 3]) == [2.0, 3.0]
        assert ratio_series([1], [0]) == [math.inf]
        with pytest.raises(ValueError):
            ratio_series([1], [1, 2])


class TestSweep:
    def test_cartesian_grid(self):
        result = run_sweep(
            {"a": [1, 2], "b": [10, 20]}, lambda a, b: {"sum": a + b}
        )
        assert result.column("sum") == [11, 21, 12, 22]

    def test_skip_predicate(self):
        result = run_sweep(
            {"n": [1, 2, 3, 4]},
            lambda n: {"sq": n * n},
            skip=lambda n: n % 2 == 1,
        )
        assert result.column("sq") == [4, 16]

    def test_where_filter(self):
        result = run_sweep(
            {"k": [2, 3], "n": [5, 6]}, lambda k, n: {"v": k * n}
        )
        assert result.where(k=3).column("v") == [15, 18]

    def test_rows_mixes_params_and_records(self):
        result = run_sweep({"n": [2, 3]}, lambda n: {"sq": n * n})
        assert result.rows(["n", "sq"]) == [[2, 4], [3, 9]]

    def test_geometric_sizes(self):
        assert geometric_sizes(8, 64) == [8, 16, 32, 64]
        assert geometric_sizes(10, 100, factor=3) == [10, 30, 90]

    def test_geometric_domain(self):
        with pytest.raises(ValueError):
            geometric_sizes(4, 10, factor=1.0)
        with pytest.raises(ValueError):
            geometric_sizes(0, 10)


class TestTables:
    def test_render_alignment(self):
        text = render_table(["n", "value"], [[1, 2.5], [100, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("n")
        assert "100" in lines[3]

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_booleans_rendered_yes_no(self):
        text = render_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_series(self):
        text = render_series("n", ["lhg", "harary"], [[8, 2, 2], [16, 3, 4]])
        assert "lhg" in text and "harary" in text

    def test_empty_rows_table(self):
        text = render_table(["only", "headers"], [])
        assert "only" in text
