"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.existence import build_lhg, exists, regular_exists
from repro.core.jenkins_demers import is_jd_constructible, jenkins_demers_graph
from repro.core.kdiamond import kdiamond_graph, kdiamond_plan
from repro.core.ktree import ktree_graph, ktree_plan
from repro.core.properties import theoretical_diameter_bound
from repro.graphs.connectivity import (
    is_k_edge_connected,
    is_k_node_connected,
    local_edge_connectivity,
    local_node_connectivity,
)
from repro.graphs.generators.harary import harary_graph, harary_minimum_edges
from repro.graphs.generators.random import gnp_random_graph
from repro.graphs.graph import Graph
from repro.graphs.io import from_json, to_json
from repro.graphs.minimality import has_degree_witness_minimality
from repro.graphs.properties import is_k_regular
from repro.graphs.traversal import bfs_levels, diameter, is_connected

# Compact strategies: pairs stay small because connectivity checks are
# max-flow-heavy; the point is breadth of (n, k) shapes, not graph size.
ks = st.integers(min_value=2, max_value=5)
pair = ks.flatmap(
    lambda k: st.tuples(st.integers(min_value=2 * k, max_value=2 * k + 26), st.just(k))
)

slow = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestGraphStructure:
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15))))
    def test_edge_insertion_invariants(self, raw_edges):
        g = Graph()
        for u, v in raw_edges:
            if u != v:
                g.add_edge(u, v)
        assert 2 * g.number_of_edges() == sum(g.degrees().values())
        for u, v in g.iter_edges():
            assert g.has_edge(v, u)

    @given(st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=40))
    def test_json_round_trip(self, raw_edges):
        g = Graph()
        for u, v in raw_edges:
            if u != v:
                g.add_edge(u, v)
        assert from_json(to_json(g)) == g

    @given(
        st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=30),
        st.integers(0, 10),
    )
    def test_remove_node_removes_all_incidences(self, raw_edges, victim):
        g = Graph(nodes=[victim])
        for u, v in raw_edges:
            if u != v:
                g.add_edge(u, v)
        g.remove_node(victim)
        assert victim not in g
        assert all(victim not in g.neighbors(u) for u in g)


class TestConnectivityAlgorithms:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 200), st.floats(0.15, 0.6))
    def test_local_connectivity_sandwich(self, seed, p):
        g = gnp_random_graph(10, p, seed=seed)
        nodes = g.nodes()
        s, t = nodes[0], nodes[-1]
        if g.has_edge(s, t):
            return
        kappa = local_node_connectivity(g, s, t)
        lam = local_edge_connectivity(g, s, t)
        assert kappa <= lam <= min(g.degree(s), g.degree(t))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100))
    def test_predicates_agree_with_removal_reality(self, seed):
        g = gnp_random_graph(9, 0.45, seed=seed)
        if not is_connected(g):
            return
        if is_k_node_connected(g, 2):
            # removing any single node leaves the graph connected
            for v in g.nodes():
                assert is_connected(g.without_nodes([v]))
        if is_k_edge_connected(g, 2):
            for e in g.edges():
                assert is_connected(g.without_edges([e]))


class TestConstructionInvariants:
    @slow
    @given(pair)
    def test_every_pair_builds_and_counts(self, nk):
        n, k = nk
        for builder in (ktree_graph, kdiamond_graph):
            graph, cert = builder(n, k)
            assert graph.number_of_nodes() == n
            assert graph.min_degree() >= k
            cert.verify_graph(graph)

    @slow
    @given(pair)
    def test_constructions_are_k_connected(self, nk):
        n, k = nk
        graph, _ = build_lhg(n, k)
        assert is_k_node_connected(graph, k)
        assert is_k_edge_connected(graph, k)

    @slow
    @given(pair)
    def test_degree_witness_minimality_always_holds(self, nk):
        n, k = nk
        for builder in (ktree_graph, kdiamond_graph):
            graph, _ = builder(n, k)
            assert has_degree_witness_minimality(graph, k)

    @slow
    @given(pair)
    def test_diameter_within_certificate_bound(self, nk):
        n, k = nk
        graph, cert = build_lhg(n, k)
        assert diameter(graph) <= theoretical_diameter_bound(cert)

    @slow
    @given(pair)
    def test_regularity_formula_matches_reality(self, nk):
        n, k = nk
        graph, _ = kdiamond_graph(n, k)
        assert is_k_regular(graph, k) == ((n - 2 * k) % (k - 1) == 0)

    @slow
    @given(pair)
    def test_jd_when_feasible_matches_ktree_shape(self, nk):
        n, k = nk
        if not is_jd_constructible(n, k):
            return
        jd_graph, _ = jenkins_demers_graph(n, k)
        kt_graph, _ = ktree_graph(n, k)
        assert jd_graph.number_of_nodes() == kt_graph.number_of_nodes()
        # both are LHGs with min degree k; JD edge count within the
        # K-TREE envelope
        assert abs(jd_graph.number_of_edges() - kt_graph.number_of_edges()) <= k * k

    @slow
    @given(pair)
    def test_edge_budget_close_to_harary_minimum(self, nk):
        # Link-minimal LHGs carry at most (k-2)/2 extra edges per node
        # over Harary's bound; in practice far less.
        n, k = nk
        graph, _ = build_lhg(n, k)
        minimum = harary_minimum_edges(k, n)
        assert minimum <= graph.number_of_edges() <= minimum + n

    @slow
    @given(pair)
    def test_plans_account_exactly(self, nk):
        n, k = nk
        kt = ktree_plan(n, k)
        assert 2 * k + 2 * kt.conversions * (k - 1) + kt.added_leaves == n
        kd = kdiamond_plan(n, k)
        assert (
            2 * k
            + 2 * kd.conversions * (k - 1)
            + kd.unshared * (k - 1)
            + kd.added_leaves
            == n
        )


class TestExistenceFunctions:
    @given(st.integers(2, 8), st.integers(2, 80))
    def test_ex_equivalence_theorem(self, k, n):
        # Corollary 1: EX_K-TREE(n,k) <=> EX_K-DIAMOND(n,k)
        assert exists(n, k, "k-tree") == exists(n, k, "k-diamond")

    @given(st.integers(2, 8), st.integers(2, 80))
    def test_reg_implication_theorem(self, k, n):
        # Corollary 2: REG_K-TREE => REG_K-DIAMOND
        if regular_exists(n, k, "k-tree"):
            assert regular_exists(n, k, "k-diamond")

    @given(st.integers(2, 8), st.integers(2, 80))
    def test_jd_subset_of_ktree(self, k, n):
        if is_jd_constructible(n, k):
            assert exists(n, k, "k-tree")


class TestHarary:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 6).flatmap(
        lambda k: st.tuples(st.just(k), st.integers(k + 1, k + 16))
    ))
    def test_harary_edge_count_and_connectivity(self, kn):
        k, n = kn
        g = harary_graph(k, n)
        assert g.number_of_edges() == math.ceil(k * n / 2)
        assert is_k_node_connected(g, k)
        assert is_k_edge_connected(g, k)


class TestDecompositionAgainstGroundTruth:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 150), st.floats(0.1, 0.5))
    def test_articulation_points_match_removal_reality(self, seed, p):
        from repro.graphs.decomposition import articulation_points
        from repro.graphs.traversal import connected_components

        g = gnp_random_graph(10, p, seed=seed)
        baseline = len(connected_components(g))
        expected = {
            v
            for v in g.nodes()
            if len(connected_components(g.without_nodes([v]))) > baseline
        }
        assert articulation_points(g) == expected

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 150), st.floats(0.1, 0.5))
    def test_bridges_match_removal_reality(self, seed, p):
        from repro.graphs.decomposition import bridges
        from repro.graphs.graph import edge_key
        from repro.graphs.traversal import connected_components

        g = gnp_random_graph(10, p, seed=seed)
        baseline = len(connected_components(g))
        expected = {
            edge_key(u, v)
            for u, v in g.edges()
            if len(connected_components(g.without_edges([(u, v)]))) > baseline
        }
        assert bridges(g) == expected


class TestWLHashInvariance:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100), st.randoms(use_true_random=False))
    def test_hash_invariant_under_relabeling(self, seed, rng):
        from repro.graphs.wl_hash import weisfeiler_lehman_hash

        g = gnp_random_graph(9, 0.35, seed=seed)
        names = [f"peer-{i}" for i in range(9)]
        rng.shuffle(names)
        relabeled = g.relabeled(dict(zip(range(9), names)))
        assert weisfeiler_lehman_hash(g) == weisfeiler_lehman_hash(relabeled)


class TestEchoInvariants:
    @settings(max_examples=15, deadline=None)
    @given(pair)
    def test_echo_counts_exactly_n_and_tree_spans(self, nk):
        from repro.flooding.experiments import run_echo

        n, k = nk
        graph, _ = build_lhg(n, k)
        source = graph.nodes()[0]
        protocol = run_echo(graph, source)
        assert protocol.completed
        assert protocol.aggregate == n
        # the implicit parent tree spans the graph with valid edges
        assert protocol.covered() == set(graph.nodes())
        for child, parent in protocol.parent.items():
            if parent is not None:
                assert graph.has_edge(child, parent)

    @settings(max_examples=10, deadline=None)
    @given(pair, st.integers(0, 50))
    def test_echo_sum_matches_direct_computation(self, nk, seed):
        import random as random_module

        from repro.flooding.experiments import run_echo

        n, k = nk
        graph, _ = build_lhg(n, k)
        rng = random_module.Random(seed)
        weights = {node: rng.randint(0, 100) for node in graph.nodes()}
        protocol = run_echo(
            graph, graph.nodes()[0], value_of=lambda node: weights[node]
        )
        assert protocol.aggregate == sum(weights.values())


class TestPlannerInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 5).flatmap(
        lambda f: st.tuples(st.integers(2 * (f + 1), 80), st.just(f))
    ))
    def test_plan_is_internally_consistent(self, nf):
        from repro.core.planning import plan_topology

        n, failures = nf
        plan = plan_topology(n, failures)
        assert plan.k == failures + 1
        assert plan.expected_diameter <= plan.latency_bound
        assert plan.message_cost_per_broadcast == 2 * plan.edges - (n - 1)
        # edge bill between Harary's bound and the added-leaf envelope
        assert plan.edges >= math.ceil(plan.k * n / 2)
        assert plan.edges <= math.ceil(plan.k * n / 2) + plan.k * plan.k


class TestFloodingInvariant:
    @settings(max_examples=12, deadline=None)
    @given(pair, st.integers(0, 10))
    def test_flood_covers_exactly_bfs_reachability(self, nk, seed):
        from repro.flooding.experiments import run_flood
        from repro.flooding.failures import random_crashes, survivors

        n, k = nk
        graph, _ = build_lhg(n, k)
        source = graph.nodes()[0]
        schedule = random_crashes(graph, min(k, n - 2 * k + 1) % k, seed=seed, protect={source})
        result = run_flood(graph, source, failures=schedule)
        remaining = survivors(graph, schedule)
        expected = set(bfs_levels(remaining, source))
        assert result.covered == len(expected)
