"""Oracle equivalence: CSR, implicit JD, and dict Graph answer alike.

The ``NeighborOracle`` protocol only earns its keep if every backend
gives byte-identical answers to every structural question.  These tests
pin the three backends to each other over the small-(n, k) census:
neighbourhoods and degrees through the label bijection, BFS layerings,
diameters, edge counts, and the synchronous-round flood against the
event-driven simulator.
"""

import pytest

from repro.core.jenkins_demers import jd_feasibility, jenkins_demers_graph
from repro.errors import GraphError, NodeNotFoundError
from repro.flooding.experiments import run_flood
from repro.flooding.rounds import round_flood
from repro.graphs import (
    CSRGraph,
    Graph,
    ImplicitJDOracle,
    NeighborOracle,
    materialize,
    oracle_has_edge,
    oracle_has_node,
    oracle_nodes,
    oracle_num_edges,
)
from repro.graphs.io import from_json, to_json
from repro.graphs.traversal import bfs_levels, diameter, eccentricity

# every JD-feasible pair with k in 2..5 and n within 3 growth rounds
CENSUS = [
    (n, k)
    for k in range(2, 6)
    for n in range(2 * k, 2 * k + 20)
    if jd_feasibility(n, k) is not None
]

SPOT = [(4, 2), (10, 3), (22, 3), (16, 4), (26, 5)]


class TestProtocol:
    def test_backends_satisfy_protocol(self):
        assert isinstance(Graph(edges=[(0, 1)]), NeighborOracle)
        assert isinstance(ImplicitJDOracle(10, 3), NeighborOracle)
        assert isinstance(CSRGraph.from_oracle(Graph(nodes=[0])), NeighborOracle)

    def test_helpers_on_minimal_oracle(self):
        class Bare:
            def num_nodes(self):
                return 2

            def degree(self, v):
                if v not in (0, 1):
                    raise NodeNotFoundError(v)
                return 1

            def neighbors(self, v):
                return [1 - v]

            def iter_nodes(self):
                return iter((0, 1))

        bare = Bare()
        assert oracle_has_node(bare, 0)
        assert not oracle_has_node(bare, 9)
        assert oracle_has_edge(bare, 0, 1)
        assert not oracle_has_edge(bare, 0, 0)
        assert oracle_nodes(bare) == [0, 1]
        assert oracle_num_edges(bare) == 1
        assert materialize(bare) == Graph(edges=[(0, 1)])


class TestImplicitEquivalence:
    @pytest.mark.parametrize("n,k", CENSUS)
    def test_matches_materialised_construction(self, n, k):
        graph, _ = jenkins_demers_graph(n, k)
        oracle = ImplicitJDOracle(n, k)
        assert oracle.num_nodes() == graph.number_of_nodes() == n
        assert oracle.number_of_edges() == graph.number_of_edges()
        for node_id in oracle.iter_nodes():
            label = oracle.label_of(node_id)
            assert oracle.id_of(label) == node_id
            expected = {oracle.id_of(v) for v in graph.neighbors(label)}
            assert set(oracle.neighbors(node_id)) == expected
            assert oracle.degree(node_id) == graph.degree(label)

    @pytest.mark.parametrize("n,k", SPOT)
    def test_bfs_and_diameter_agree(self, n, k):
        graph, _ = jenkins_demers_graph(n, k)
        oracle = ImplicitJDOracle(n, k)
        root = oracle.id_of(("T", 0, 0))
        levels = bfs_levels(oracle, root)
        expected = bfs_levels(graph, ("T", 0, 0))
        assert levels == {
            oracle.id_of(label): d for label, d in expected.items()
        }
        assert diameter(oracle) == diameter(graph)

    def test_unknown_nodes_rejected(self):
        oracle = ImplicitJDOracle(10, 3)
        with pytest.raises(NodeNotFoundError):
            oracle.neighbors(10)
        with pytest.raises(NodeNotFoundError):
            oracle.degree(-1)
        with pytest.raises(NodeNotFoundError):
            oracle.id_of(("T", 3, 0))
        assert not oracle.has_node(True)  # bools are not node ids


class TestCSR:
    @pytest.mark.parametrize("n,k", SPOT)
    def test_csr_matches_source_oracle(self, n, k):
        oracle = ImplicitJDOracle(n, k)
        csr = CSRGraph.from_oracle(oracle)
        assert csr.dense_labels
        assert csr.num_nodes() == n
        assert csr.number_of_edges() == oracle.number_of_edges()
        for v in oracle.iter_nodes():
            assert list(csr.neighbors(v)) == sorted(oracle.neighbors(v))
            assert csr.degree(v) == oracle.degree(v)
        assert eccentricity(csr, 0) == eccentricity(oracle, 0)

    def test_csr_preserves_arbitrary_labels(self):
        g = Graph(edges=[("a", "b"), ("b", ("T", 0, 1))], name="labels")
        csr = CSRGraph.from_oracle(g)
        assert not csr.dense_labels
        assert set(csr.nodes()) == set(g.nodes())
        assert sorted(csr.neighbors("b"), key=repr) == sorted(
            g.neighbors("b"), key=repr
        )
        assert csr.to_graph() == g

    def test_csr_round_trip_keeps_int_ids(self):
        """Dense int ids survive CSR → Graph → JSON → Graph → CSR."""
        original = CSRGraph.from_oracle(ImplicitJDOracle(22, 3))
        revived = from_json(to_json(original.to_graph()))
        assert all(isinstance(v, int) for v in revived.nodes())
        recompiled = CSRGraph.from_oracle(revived)
        assert recompiled.dense_labels
        assert recompiled.number_of_edges() == original.number_of_edges()
        for v in range(22):
            assert list(recompiled.neighbors(v)) == list(original.neighbors(v))

    def test_csr_serialises_directly(self):
        """to_json accepts the CSR backend itself, ints intact."""
        csr = CSRGraph.from_oracle(ImplicitJDOracle(10, 3), name="jd")
        revived = from_json(to_json(csr))
        assert revived.name == "jd"
        assert all(isinstance(v, int) for v in revived.nodes())
        assert revived == csr.to_graph()

    def test_subgraph_keeps_int_ids(self):
        g = CSRGraph.from_oracle(ImplicitJDOracle(10, 3)).to_graph()
        sub = g.subgraph(range(5))
        assert all(isinstance(v, int) for v in sub.nodes())

    def test_duplicate_nodes_rejected(self):
        class Dup:
            def num_nodes(self):
                return 2

            def degree(self, v):
                return 0

            def neighbors(self, v):
                return []

            def iter_nodes(self):
                return iter((0, 0))

        with pytest.raises(GraphError):
            CSRGraph.from_oracle(Dup())

    def test_has_edge_and_iter_edges(self):
        oracle = ImplicitJDOracle(10, 3)
        csr = CSRGraph.from_oracle(oracle)
        edges = set(csr.iter_edges())
        assert len(edges) == csr.number_of_edges()
        for u, v in sorted(edges):
            assert u < v
            assert csr.has_edge(u, v) and csr.has_edge(v, u)
        assert not csr.has_edge(0, 0)

    def test_has_edge_bisect_row_boundaries(self):
        # a star: the hub's row spans the whole index array, every leaf
        # row holds a single entry — first/last-neighbour bisect probes
        star = Graph(edges=[(0, i) for i in range(1, 6)])
        csr = CSRGraph.from_oracle(star)
        row = list(csr.neighbors(0))
        assert csr.has_edge(0, row[0])  # first slot of the row
        assert csr.has_edge(0, row[-1])  # last slot of the row
        assert csr.has_edge(row[0], 0) and csr.has_edge(row[-1], 0)
        # absent id falling between present neighbours, and past the end
        assert not csr.has_edge(1, 2)
        assert not csr.has_edge(0, 6)

    def test_has_edge_empty_row(self):
        # an isolated node has an empty CSR row: start == end, so the
        # bisect window is empty and must not read a neighbouring row
        g = Graph(edges=[(0, 1)], nodes=[2])
        csr = CSRGraph.from_oracle(g)
        assert csr.degree(2) == 0
        assert not csr.has_edge(2, 0)
        assert not csr.has_edge(0, 2)
        assert not csr.has_edge(2, 2)

    def test_has_edge_absent_ids_are_false_not_errors(self):
        csr = CSRGraph.from_oracle(ImplicitJDOracle(10, 3))
        assert not csr.has_edge(0, 999)
        assert not csr.has_edge(999, 0)
        assert not csr.has_edge(-1, 0)
        assert not csr.has_edge(0, "label")
        assert not csr.has_edge(True, 0)  # bools are not dense ids

    def test_has_edge_labelled_backend(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        csr = CSRGraph.from_oracle(g)
        assert csr.has_edge("a", "b") and csr.has_edge("b", "a")
        assert not csr.has_edge("a", "c")
        assert not csr.has_edge("a", "missing")


class TestRoundFlood:
    @pytest.mark.parametrize("n,k", SPOT)
    def test_parity_with_event_driven_flood(self, n, k):
        oracle = ImplicitJDOracle(n, k)
        graph = materialize(oracle)
        event = run_flood(graph, 0)
        for backend in (oracle, CSRGraph.from_oracle(oracle), graph):
            rounds = round_flood(backend, 0)
            assert rounds.covered == event.covered == n
            assert rounds.messages == event.messages
            assert rounds.completion_time == event.completion_time
            assert rounds.rounds == eccentricity(oracle, 0)

    def test_unknown_source_rejected(self):
        with pytest.raises(NodeNotFoundError):
            round_flood(ImplicitJDOracle(10, 3), 99)
