"""Unit tests for traversal and distance algorithms."""

import pytest

from repro.errors import DisconnectedGraphError, NodeNotFoundError
from repro.graphs.graph import Graph
from repro.graphs.generators.classic import (
    balanced_tree,
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.graphs.traversal import (
    all_pairs_distances,
    approximate_diameter,
    average_path_length,
    bfs_levels,
    bfs_order,
    bfs_parents,
    connected_components,
    dfs_order,
    diameter,
    eccentricity,
    is_connected,
    is_simple_path,
    iter_bfs_edges,
    paths_edge_disjoint,
    paths_internally_disjoint,
    radius,
    shortest_path,
    shortest_path_length,
)


class TestBFS:
    def test_order_starts_at_source(self):
        g = path_graph(5)
        assert bfs_order(g, 2)[0] == 2

    def test_order_visits_all_reachable(self):
        g = path_graph(5)
        assert set(bfs_order(g, 0)) == set(range(5))

    def test_levels_on_path(self):
        g = path_graph(4)
        assert bfs_levels(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_levels_omit_unreachable(self):
        g = Graph(nodes=[0, 1], edges=[])
        assert bfs_levels(g, 0) == {0: 0}

    def test_missing_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            bfs_order(Graph(), 0)

    def test_parents_form_tree(self):
        g = cycle_graph(6)
        parents = bfs_parents(g, 0)
        assert parents[0] is None
        assert len(parents) == 6
        tree_edges = list(iter_bfs_edges(g, 0))
        assert len(tree_edges) == 5


class TestDFS:
    def test_preorder_visits_all(self):
        g = balanced_tree(2, 3)
        assert set(dfs_order(g, 0)) == set(g.nodes())

    def test_deterministic_on_sortable_labels(self):
        g = Graph(edges=[(0, 2), (0, 1)])
        assert dfs_order(g, 0) == dfs_order(g, 0)


class TestShortestPaths:
    def test_trivial_path(self):
        g = path_graph(3)
        assert shortest_path(g, 1, 1) == [1]

    def test_path_endpoints_and_length(self):
        g = cycle_graph(8)
        path = shortest_path(g, 0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) - 1 == 3

    def test_unreachable_returns_none(self):
        g = Graph(nodes=[0, 1])
        assert shortest_path(g, 0, 1) is None

    def test_length_raises_when_disconnected(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(DisconnectedGraphError):
            shortest_path_length(g, 0, 1)

    def test_length_on_cycle(self):
        g = cycle_graph(10)
        assert shortest_path_length(g, 0, 5) == 5
        assert shortest_path_length(g, 0, 7) == 3


class TestComponentsAndConnectivity:
    def test_single_component(self):
        assert len(connected_components(cycle_graph(5))) == 1

    def test_two_components(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        comps = connected_components(g)
        assert sorted(map(len, comps)) == [2, 2]

    def test_is_connected_conventions(self):
        assert is_connected(Graph())
        assert is_connected(Graph(nodes=[7]))
        assert not is_connected(Graph(nodes=[0, 1]))


class TestEccentricityDiameterRadius:
    def test_path_metrics(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2
        assert diameter(g) == 4
        assert radius(g) == 2

    def test_cycle_diameter(self):
        assert diameter(cycle_graph(9)) == 4
        assert diameter(cycle_graph(10)) == 5

    def test_complete_graph_diameter(self):
        assert diameter(complete_graph(6)) == 1

    def test_disconnected_raises(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(DisconnectedGraphError):
            eccentricity(g, 0)
        with pytest.raises(DisconnectedGraphError):
            diameter(g)

    def test_empty_diameter_zero(self):
        assert diameter(Graph()) == 0

    def test_approximate_never_exceeds_exact(self):
        for n in (8, 13, 20):
            g = cycle_graph(n)
            approx = approximate_diameter(g, samples=4, seed=1)
            assert approx <= diameter(g)
            # double sweep is exact on cycles
            assert approx == diameter(g)

    def test_approximate_disconnected_raises(self):
        with pytest.raises(DisconnectedGraphError):
            approximate_diameter(Graph(nodes=[0, 1]))


class TestAggregateDistances:
    def test_average_path_length_path3(self):
        # P3 distances: (1,2,1,1,2,1)/6 = 4/3
        assert average_path_length(path_graph(3)) == pytest.approx(4 / 3)

    def test_average_needs_two_nodes(self):
        with pytest.raises(ValueError):
            average_path_length(Graph(nodes=[0]))

    def test_all_pairs_matches_bfs(self):
        g = cycle_graph(6)
        table = all_pairs_distances(g)
        assert table[0][3] == 3
        assert all(table[u][u] == 0 for u in g)


class TestPathPredicates:
    def test_simple_path_detection(self):
        g = path_graph(4)
        assert is_simple_path(g, [0, 1, 2, 3])
        assert not is_simple_path(g, [0, 2])  # no edge
        assert not is_simple_path(g, [0, 1, 0])  # repeat
        assert not is_simple_path(g, [])

    def test_edge_disjointness(self):
        assert paths_edge_disjoint([[0, 1, 2], [0, 3, 2]])
        assert not paths_edge_disjoint([[0, 1, 2], [2, 1, 3]])

    def test_internal_disjointness(self):
        assert paths_internally_disjoint([[0, 1, 5], [0, 2, 5], [0, 5]])
        assert not paths_internally_disjoint([[0, 1, 5], [0, 1, 5]])
        assert not paths_internally_disjoint([[0, 1, 5], [5, 2, 0], [0, 3, 9]])

    def test_internal_disjoint_empty(self):
        assert paths_internally_disjoint([])
