"""Unit tests for node/edge connectivity, cuts and disjoint paths."""

import pytest

from repro.errors import GraphError, NodeNotFoundError
from repro.graphs.graph import Graph
from repro.graphs.generators.classic import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
)
from repro.graphs.connectivity import (
    edge_connectivity,
    edge_disjoint_paths,
    is_k_edge_connected,
    is_k_node_connected,
    local_edge_connectivity,
    local_node_connectivity,
    minimum_edge_cut,
    minimum_node_cut,
    node_connectivity,
    node_disjoint_paths,
)
from repro.graphs.traversal import (
    is_connected,
    is_simple_path,
    paths_edge_disjoint,
    paths_internally_disjoint,
)


class TestLocalConnectivity:
    def test_path_graph(self):
        g = path_graph(4)
        assert local_edge_connectivity(g, 0, 3) == 1
        assert local_node_connectivity(g, 0, 3) == 1

    def test_cycle(self):
        g = cycle_graph(7)
        assert local_edge_connectivity(g, 0, 3) == 2
        assert local_node_connectivity(g, 0, 3) == 2

    def test_adjacent_pair_in_complete_graph(self):
        g = complete_graph(5)
        assert local_node_connectivity(g, 0, 1) == 4

    def test_same_node_rejected(self):
        g = cycle_graph(4)
        with pytest.raises(GraphError):
            local_node_connectivity(g, 1, 1)

    def test_missing_node_rejected(self):
        with pytest.raises(NodeNotFoundError):
            local_edge_connectivity(cycle_graph(4), 0, 99)

    def test_cutoff_caps_answer(self):
        g = complete_graph(6)
        assert local_node_connectivity(g, 0, 1, cutoff=2) == 2


class TestGlobalConnectivity:
    def test_known_values(self):
        assert node_connectivity(cycle_graph(5)) == 2
        assert edge_connectivity(cycle_graph(5)) == 2
        assert node_connectivity(complete_graph(6)) == 5
        assert edge_connectivity(complete_graph(6)) == 5
        assert node_connectivity(path_graph(5)) == 1
        assert node_connectivity(petersen_graph()) == 3
        assert edge_connectivity(petersen_graph()) == 3

    def test_complete_bipartite(self):
        assert node_connectivity(complete_bipartite_graph(3, 5)) == 3
        assert edge_connectivity(complete_bipartite_graph(3, 5)) == 3

    def test_disconnected_zero(self):
        g = Graph(nodes=[0, 1])
        assert node_connectivity(g) == 0
        assert edge_connectivity(g) == 0

    def test_tiny_graphs(self):
        assert node_connectivity(Graph(nodes=[0])) == 0
        assert node_connectivity(Graph(edges=[(0, 1)])) == 1

    def test_bridge_graph(self, two_triangles_bridge):
        assert edge_connectivity(two_triangles_bridge) == 1
        assert node_connectivity(two_triangles_bridge) == 1


class TestKPredicates:
    def test_thresholds_on_cycle(self):
        g = cycle_graph(6)
        assert is_k_node_connected(g, 2)
        assert not is_k_node_connected(g, 3)
        assert is_k_edge_connected(g, 2)
        assert not is_k_edge_connected(g, 3)

    def test_k_zero_vacuous(self):
        assert is_k_node_connected(Graph(), 0)
        assert is_k_edge_connected(Graph(), 0)

    def test_needs_enough_nodes(self):
        assert not is_k_node_connected(complete_graph(3), 3)
        assert is_k_node_connected(complete_graph(4), 3)

    def test_min_degree_short_circuit(self):
        g = cycle_graph(5)
        g.add_edge(0, 2)
        assert not is_k_node_connected(g, 3)  # node 4 has degree 2


class TestCuts:
    def test_min_edge_cut_bridge(self, two_triangles_bridge):
        cut = minimum_edge_cut(two_triangles_bridge)
        assert len(cut) == 1
        assert {tuple(sorted(e)) for e in cut} == {(2, 3)}

    def test_min_edge_cut_disconnects(self):
        g = cycle_graph(6)
        cut = minimum_edge_cut(g)
        assert len(cut) == 2
        assert not is_connected(g.without_edges(cut))

    def test_min_node_cut_articulation(self, square_with_tail):
        cut = minimum_node_cut(square_with_tail)
        assert cut == {3}

    def test_min_node_cut_disconnects(self):
        g = cycle_graph(8)
        cut = minimum_node_cut(g)
        assert len(cut) == 2
        assert not is_connected(g.without_nodes(cut))

    def test_min_node_cut_complete_graph_empty(self):
        assert minimum_node_cut(complete_graph(4)) == set()

    def test_cut_errors(self):
        with pytest.raises(GraphError):
            minimum_edge_cut(Graph(nodes=[0]))
        with pytest.raises(GraphError):
            minimum_node_cut(Graph(nodes=[0, 1]))


class TestDisjointPaths:
    def test_edge_disjoint_family_size(self):
        g = cycle_graph(6)
        paths = edge_disjoint_paths(g, 0, 3)
        assert len(paths) == 2
        assert paths_edge_disjoint(paths)
        assert all(is_simple_path(g, p) for p in paths)
        assert all(p[0] == 0 and p[-1] == 3 for p in paths)

    def test_node_disjoint_family_size(self):
        g = petersen_graph()
        paths = node_disjoint_paths(g, 0, 7)
        assert len(paths) == 3
        assert paths_internally_disjoint(paths)
        assert all(is_simple_path(g, p) for p in paths)

    def test_node_disjoint_adjacent_endpoints(self):
        g = complete_graph(5)
        paths = node_disjoint_paths(g, 0, 1)
        assert len(paths) == 4
        assert paths_internally_disjoint(paths)

    def test_disconnected_pair_empty(self):
        g = Graph(nodes=[0, 1])
        assert node_disjoint_paths(g, 0, 1) == []
        assert edge_disjoint_paths(g, 0, 1) == []

    def test_matches_local_connectivity_on_random_graphs(self):
        from repro.graphs.generators.random import gnp_random_graph

        for seed in range(6):
            g = gnp_random_graph(12, 0.35, seed=seed)
            nodes = g.nodes()
            s, t = nodes[0], nodes[-1]
            expected = local_node_connectivity(g, s, t)
            paths = node_disjoint_paths(g, s, t)
            assert len(paths) == expected
            assert paths_internally_disjoint(paths)
            assert all(is_simple_path(g, p) for p in paths)
