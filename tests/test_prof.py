"""Unit tests for the repro.obs.prof sampling profiler."""

# repro: lint-ignore-file[DET002] profiler tests spin real wall time to give the sampler something to observe

import sys
import time

import pytest

from repro import obs
from repro.obs.prof import (
    NO_SPAN,
    Profile,
    SamplingProfiler,
    profile_call,
)


@pytest.fixture(autouse=True)
def no_leaked_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def _spin(seconds: float) -> int:
    """Burn CPU (and wall) time doing deterministic arithmetic."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(i * i for i in range(200))
    return total


class TestValidation:
    def test_bad_hz(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_bad_backend(self):
        with pytest.raises(ValueError):
            SamplingProfiler(backend="magic")

    def test_bad_timer(self):
        with pytest.raises(ValueError):
            SamplingProfiler(timer="lunar")

    def test_cpu_timer_needs_signal_backend(self):
        with pytest.raises(ValueError):
            SamplingProfiler(backend="setprofile", timer="cpu")

    def test_double_start_refused(self):
        profiler = SamplingProfiler(hz=50)
        with profiler:
            with pytest.raises(RuntimeError):
                profiler.start()

    def test_two_profilers_refused(self):
        with SamplingProfiler(hz=50):
            with pytest.raises(RuntimeError):
                SamplingProfiler(hz=50).start()

    def test_stop_idempotent(self):
        profiler = SamplingProfiler(hz=50)
        profiler.start()
        first = profiler.stop()
        assert profiler.stop() is first


class TestBackends:
    @pytest.mark.parametrize("backend", ["signal", "setprofile"])
    def test_samples_land(self, backend):
        profiler = SamplingProfiler(hz=200, backend=backend)
        with profiler:
            _spin(0.15)
        profile = profiler.profile
        assert profile.sample_count > 0
        assert profile.backend == backend
        assert profile.duration > 0.1
        # the busy loop is on every hot stack
        assert any("_spin" in line for line in profile.collapsed())

    def test_auto_resolves(self):
        profiler = SamplingProfiler(hz=100, backend="auto")
        assert profiler.backend in ("signal", "setprofile")

    def test_restores_previous_profile_hook(self):
        sentinel_calls = []

        def sentinel(frame, event, arg):
            sentinel_calls.append(event)

        sys.setprofile(sentinel)
        try:
            with SamplingProfiler(hz=100, backend="setprofile"):
                _spin(0.01)
            assert sys.getprofile() is sentinel
        finally:
            sys.setprofile(None)

    def test_cpu_timer(self):
        profiler = SamplingProfiler(hz=200, backend="signal", timer="cpu")
        with profiler:
            _spin(0.15)
        assert profiler.profile.timer == "cpu"
        assert profiler.profile.sample_count > 0


class TestSpanAttribution:
    @pytest.mark.parametrize("backend", ["signal", "setprofile"])
    def test_samples_carry_open_spans(self, backend):
        obs.install()
        with SamplingProfiler(hz=200, backend=backend) as profiler:
            with obs.span("outer"):
                with obs.span("inner"):
                    _spin(0.15)
        span_paths = {key[0] for key in profiler.profile.samples}
        assert ("outer", "inner") in span_paths

    def test_no_collector_means_no_span(self):
        with SamplingProfiler(hz=200) as profiler:
            _spin(0.1)
        assert {key[0] for key in profiler.profile.samples} == {()}
        times = profiler.profile.span_times()
        assert set(times) == {NO_SPAN}

    def test_span_times_self_vs_cumulative(self):
        obs.install()
        with SamplingProfiler(hz=200) as profiler:
            with obs.span("outer"):
                with obs.span("inner"):
                    _spin(0.15)
        times = profiler.profile.span_times()
        # all samples landed inside inner, which is inside outer
        assert times["inner"]["self"] > 0
        assert times["outer"]["cum"] >= times["inner"]["cum"]
        assert times["outer"]["self"] == pytest.approx(
            times["outer"]["cum"] - times["inner"]["cum"]
        )


class TestProfileOutput:
    def _profile(self) -> Profile:
        obs.install()
        with SamplingProfiler(hz=200) as profiler:
            with obs.span("work"):
                _spin(0.15)
        obs.uninstall()
        return profiler.profile

    def test_collapsed_format(self):
        collapsed = self._profile().collapsed()
        assert collapsed == sorted(collapsed)
        for line in collapsed:
            stack, _, count = line.rpartition(" ")
            assert int(count) > 0
            assert stack
            frames = stack.split(";")
            assert frames[0] == "span:work"

    def test_collapsed_without_spans(self):
        collapsed = self._profile().collapsed(include_spans=False)
        assert collapsed
        assert not any(line.startswith("span:") for line in collapsed)

    def test_write_collapsed(self, tmp_path):
        profile = self._profile()
        path = tmp_path / "out.collapsed"
        lines = profile.write_collapsed(str(path))
        content = path.read_text().splitlines()
        assert lines == len(content) == len(profile.collapsed())

    def test_render_mentions_hot_frame(self):
        text = self._profile().render()
        assert "profile:" in text
        # every sample's leaf frame is the busy loop or its genexpr
        assert "_spin" in text or "<genexpr>" in text
        assert "work" in text

    def test_empty_profile_renders(self):
        profile = Profile(hz=100, backend="signal", timer="wall")
        assert profile.sample_count == 0
        assert profile.collapsed() == []
        assert "0 sample" in profile.render()


class TestProfileCall:
    def test_returns_result_and_profile(self):
        result, profile = profile_call(_spin, 0.1, hz=200)
        assert result > 0
        assert profile.sample_count > 0

    def test_exception_still_stops(self):
        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            profile_call(boom, hz=100)
        # the profiler disarmed despite the raise
        with SamplingProfiler(hz=100):
            pass
