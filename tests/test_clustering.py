"""Tests for clustering coefficients and triangle counting."""

import pytest

from repro.core.jenkins_demers import jenkins_demers_graph
from repro.core.kdiamond import kdiamond_graph
from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.generators.classic import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.properties import (
    average_clustering,
    local_clustering,
    triangle_count,
)


class TestLocalClustering:
    def test_complete_graph_fully_clustered(self):
        g = complete_graph(5)
        assert all(local_clustering(g, v) == 1.0 for v in g)

    def test_cycle_unclustered(self):
        g = cycle_graph(6)
        assert all(local_clustering(g, v) == 0.0 for v in g)

    def test_low_degree_zero(self):
        g = path_graph(3)
        assert local_clustering(g, 0) == 0.0  # degree 1

    def test_partial_clustering(self):
        # node 0 adjacent to 1,2,3; only (1,2) adjacent -> 1/3
        g = Graph(edges=[(0, 1), (0, 2), (0, 3), (1, 2)])
        assert local_clustering(g, 0) == pytest.approx(1 / 3)


class TestAverageClustering:
    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            average_clustering(Graph())

    def test_star_is_zero(self):
        assert average_clustering(star_graph(5)) == 0.0

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        from repro.graphs.generators.random import gnp_random_graph
        from repro.graphs.nxcompat import to_networkx

        for seed in range(5):
            g = gnp_random_graph(12, 0.4, seed=seed)
            ours = average_clustering(g)
            theirs = networkx.average_clustering(to_networkx(g))
            assert ours == pytest.approx(theirs)


class TestTriangles:
    def test_complete_graph_count(self):
        assert triangle_count(complete_graph(6)) == 20

    def test_triangle_free_families(self):
        assert triangle_count(cycle_graph(8)) == 0
        assert triangle_count(star_graph(6)) == 0

    def test_single_triangle(self):
        assert triangle_count(Graph(edges=[(0, 1), (1, 2), (0, 2)])) == 1


class TestConstructionSignatures:
    def test_jd_constructions_are_triangle_free(self):
        # shared-leaf pasting creates no triangles: copies are trees and
        # leaves join distinct copies
        for n, k in [(10, 3), (14, 3), (20, 4)]:
            graph, _ = jenkins_demers_graph(n, k)
            assert triangle_count(graph) == 0
            assert average_clustering(graph) == 0.0

    def test_unshared_cliques_are_the_only_triangles(self):
        # K-DIAMOND with u unshared slots has exactly u * C(k,3) triangles
        import math

        for n, k in [(8, 3), (11, 4), (14, 5)]:
            graph, cert = kdiamond_graph(n, k)
            unshared = len(cert.unshared_leaves)
            assert unshared == 1
            assert triangle_count(graph) == math.comb(k, 3)
