"""Unit tests for the TreeSchema construction engine."""

import pytest

from repro.errors import ConstructionError
from repro.core.tree_schema import (
    SHARED,
    UNSHARED,
    TreeSchema,
    grown_schema,
    paste_copies,
)


class TestBaseSchema:
    def test_base_counts(self):
        schema = TreeSchema(3)
        assert schema.interior_count == 1
        assert schema.shared_leaf_count == 3
        assert schema.unshared_leaf_count == 0
        assert schema.node_count() == 6  # 2k

    def test_root_has_k_children(self):
        schema = TreeSchema(4)
        root = schema.interiors[0]
        assert root.parent is None
        assert root.child_count == 4

    def test_k_too_small(self):
        with pytest.raises(ConstructionError):
            TreeSchema(1)

    def test_base_height(self):
        assert TreeSchema(3).height() == 1
        assert TreeSchema(3).is_height_balanced()


class TestConversions:
    def test_conversion_arithmetic(self):
        k = 4
        schema = TreeSchema(k)
        before = schema.node_count()
        schema.convert_next_leaf()
        assert schema.node_count() == before + 2 * (k - 1)
        assert schema.interior_count == 2

    def test_new_interior_gets_k_minus_1_leaves(self):
        schema = TreeSchema(5)
        new_id = schema.convert_next_leaf()
        assert len(schema.interiors[new_id].leaf_children) == 4

    def test_fifo_keeps_balance(self):
        schema = grown_schema(3, 12)
        assert schema.is_height_balanced()

    def test_height_grows_logarithmically(self):
        # k=4: each level multiplies leaves by k-1=3
        schema = grown_schema(4, 40)
        assert schema.is_height_balanced()
        assert schema.height() <= 5

    def test_k2_conversion_chain(self):
        schema = grown_schema(2, 10)
        # k=2 trees are paths: 2 leaf slots forever
        assert schema.shared_leaf_count == 2
        assert schema.interior_count == 11

    def test_grown_schema_node_count_formula(self):
        for k in (2, 3, 4, 5):
            for c in (0, 1, 2, 5):
                schema = grown_schema(k, c)
                assert schema.node_count() == 2 * k + 2 * c * (k - 1)


class TestExtraLeaves:
    def test_added_leaf_increments_count(self):
        schema = TreeSchema(3)
        schema.add_extra_leaf()
        assert schema.added_leaf_count == 1
        assert schema.node_count() == 7

    def test_added_leaf_targets_node_above_leaves(self):
        schema = grown_schema(3, 3)
        host = schema.interiors_above_leaves()[0]
        leaf_id = schema.add_extra_leaf(host)
        assert schema.leaves[leaf_id].parent == host

    def test_added_leaf_rejected_off_leaf_level(self):
        schema = grown_schema(3, 3)
        # root converted all its leaves away after 3 conversions
        root = schema.interiors[0]
        assert not root.leaf_children
        with pytest.raises(ConstructionError):
            schema.add_extra_leaf(0)


class TestUnsharedLeaves:
    def test_mark_unshared_changes_accounting(self):
        k = 4
        schema = TreeSchema(k)
        before = schema.node_count()
        schema.mark_unshared()
        assert schema.unshared_leaf_count == 1
        assert schema.node_count() == before + (k - 1)

    def test_mark_unshared_specific(self):
        schema = TreeSchema(3)
        leaf_id = next(iter(schema.leaves))
        assert schema.mark_unshared(leaf_id) == leaf_id
        assert schema.leaves[leaf_id].kind == UNSHARED

    def test_double_mark_rejected(self):
        schema = TreeSchema(3)
        leaf_id = schema.mark_unshared()
        with pytest.raises(ConstructionError):
            schema.mark_unshared(leaf_id)

    def test_unknown_leaf_rejected(self):
        with pytest.raises(ConstructionError):
            TreeSchema(3).mark_unshared(999)


class TestPasting:
    def test_base_pastes_to_complete_bipartite(self):
        k = 3
        graph, cert = paste_copies(TreeSchema(k))
        assert graph.number_of_nodes() == 2 * k
        assert graph.number_of_edges() == k * k
        assert graph.regular_degree() == k

    def test_pasted_counts_match_certificate(self):
        schema = grown_schema(4, 5)
        schema.mark_unshared()
        graph, cert = paste_copies(schema)
        assert graph.number_of_nodes() == cert.expected_node_count()
        assert graph.number_of_edges() == cert.expected_edge_count()
        cert.verify_graph(graph)

    def test_unshared_slot_forms_clique(self):
        k = 3
        schema = TreeSchema(k)
        leaf_id = schema.mark_unshared()
        graph, _ = paste_copies(schema)
        members = [("U", leaf_id, c) for c in range(k)]
        for i in range(k):
            for j in range(i + 1, k):
                assert graph.has_edge(members[i], members[j])

    def test_describe_mentions_counts(self):
        text = TreeSchema(3).describe()
        assert "k=3" in text and "n=6" in text
