"""Unit tests for degree statistics, regularity, girth, expansion."""

import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.generators.classic import (
    balanced_tree,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.properties import (
    degree_excess_nodes,
    degree_stats,
    distance_histogram,
    edge_expansion_estimate,
    girth,
    irregularity,
    is_k_regular,
    logarithmic_diameter_bound,
)


class TestDegreeStats:
    def test_cycle_stats(self):
        stats = degree_stats(cycle_graph(6))
        assert stats.minimum == stats.maximum == 2
        assert stats.mean == 2.0
        assert stats.histogram == {2: 6}
        assert stats.is_regular

    def test_star_stats(self):
        stats = degree_stats(star_graph(4))
        assert stats.minimum == 1
        assert stats.maximum == 4
        assert not stats.is_regular
        assert stats.histogram == {1: 4, 4: 1}

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            degree_stats(Graph())


class TestRegularity:
    def test_is_k_regular(self):
        assert is_k_regular(cycle_graph(5), 2)
        assert not is_k_regular(cycle_graph(5), 3)
        assert not is_k_regular(path_graph(4), 1)
        assert not is_k_regular(Graph(), 0)

    def test_irregularity_zero_for_regular(self):
        assert irregularity(petersen_graph(), 3) == 0

    def test_irregularity_counts_excess(self):
        g = star_graph(4)  # center degree 4, leaves 1
        assert irregularity(g, 1) == 3
        assert degree_excess_nodes(g, 1) == [(0, 3)]


class TestGirth:
    def test_acyclic_none(self):
        assert girth(balanced_tree(2, 3)) is None

    def test_triangle(self):
        assert girth(complete_graph(4)) == 3

    def test_cycle(self):
        assert girth(cycle_graph(7)) == 7

    def test_petersen_girth_five(self):
        assert girth(petersen_graph()) == 5

    def test_cap_early_exit(self):
        assert girth(complete_graph(6), cap=3) == 3


class TestExpansionEstimate:
    def test_complete_graph_expands_well(self):
        estimate = edge_expansion_estimate(complete_graph(10), samples=50, seed=0)
        assert estimate >= 5.0  # |boundary|/|S| >= n/2 for K_n

    def test_path_expands_poorly(self):
        estimate = edge_expansion_estimate(path_graph(20), samples=100, seed=0)
        assert estimate <= 1.0

    def test_deterministic_in_seed(self):
        g = petersen_graph()
        a = edge_expansion_estimate(g, samples=30, seed=5)
        b = edge_expansion_estimate(g, samples=30, seed=5)
        assert a == b

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            edge_expansion_estimate(Graph(nodes=[0]))


class TestDiameterBudget:
    def test_k2_budget_vacuous(self):
        assert logarithmic_diameter_bound(100, 2) == 100

    def test_k3_budget_logarithmic(self):
        assert logarithmic_diameter_bound(1024, 3) == int(4 * 10 + 4)

    def test_budget_grows_slowly(self):
        small = logarithmic_diameter_bound(100, 4)
        large = logarithmic_diameter_bound(10000, 4)
        assert large < 2 * small + 10

    def test_domain(self):
        with pytest.raises(GraphError):
            logarithmic_diameter_bound(1, 3)


class TestDistanceHistogram:
    def test_path_histogram(self):
        assert distance_histogram(path_graph(4), 0) == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_star_histogram(self):
        assert distance_histogram(star_graph(5), 0) == {0: 1, 1: 5}

    def test_total_counts_nodes(self):
        g = petersen_graph()
        assert sum(distance_histogram(g, 0).values()) == 10
