"""Tests for the heartbeat failure detector."""

import pytest

from repro.core.existence import build_lhg
from repro.errors import ProtocolError
from repro.flooding.experiments import run_failure_detection
from repro.flooding.failures import FailureSchedule, apply_schedule
from repro.flooding.network import ExponentialLatency, Network
from repro.flooding.protocols.heartbeat import HeartbeatProtocol
from repro.flooding.simulator import Simulator
from repro.graphs.generators.classic import cycle_graph


def detector_run(graph, crashed, crash_time, **kwargs):
    return run_failure_detection(graph, crashed, crash_time, **kwargs)


class TestParameters:
    def test_timeout_must_exceed_period(self):
        sim = Simulator()
        net = Network(cycle_graph(4), sim)
        with pytest.raises(ProtocolError):
            HeartbeatProtocol(net, period=2.0, timeout=1.0)

    def test_positive_parameters(self):
        sim = Simulator()
        net = Network(cycle_graph(4), sim)
        with pytest.raises(ProtocolError):
            HeartbeatProtocol(net, period=0.0)


class TestDetection:
    def test_crash_detected_by_all_neighbours(self):
        graph, _ = build_lhg(14, 3)
        victim = graph.nodes()[3]
        report = detector_run(graph, [victim], 10.0)
        assert report.complete
        assert report.accurate

    def test_detection_delay_bounded_by_timeout_plus_period(self):
        graph, _ = build_lhg(14, 3)
        victim = graph.nodes()[0]
        period, timeout = 1.0, 3.5
        report = detector_run(
            graph, [victim], 10.0, period=period, timeout=timeout
        )
        assert report.worst_detection_delay is not None
        # delay <= timeout + check period + last heartbeat's flight time
        assert report.worst_detection_delay <= timeout + 2 * period + 1.0
        assert report.best_detection_delay > timeout - period - 1.0

    def test_multiple_crashes_all_detected(self):
        graph, _ = build_lhg(20, 4)
        victims = graph.nodes()[2:5]
        report = detector_run(graph, victims, 8.0)
        assert report.complete
        assert report.accurate

    def test_no_crash_no_suspicion_under_constant_latency(self):
        graph, _ = build_lhg(14, 3)
        report = detector_run(graph, [], 0.0)
        assert report.accurate
        assert report.detection_delays == ()

    def test_shorter_timeout_detects_faster(self):
        graph, _ = build_lhg(14, 3)
        victim = graph.nodes()[1]
        fast = detector_run(graph, [victim], 10.0, period=0.5, timeout=1.2)
        slow = detector_run(graph, [victim], 10.0, period=1.0, timeout=6.0)
        assert fast.worst_detection_delay < slow.worst_detection_delay


class TestAccuracyTradeoff:
    def test_tight_timeout_with_heavy_tail_latency_false_suspects(self):
        graph, _ = build_lhg(20, 3)
        report = run_failure_detection(
            graph,
            [],
            0.0,
            period=1.0,
            timeout=2.2,
            latency=ExponentialLatency(0.1, 1.5, seed=4),
        )
        assert report.false_suspicions > 0  # eventually-perfect, not perfect

    def test_generous_timeout_restores_accuracy(self):
        graph, _ = build_lhg(20, 3)
        report = run_failure_detection(
            graph,
            [],
            0.0,
            period=1.0,
            timeout=12.0,
            latency=ExponentialLatency(0.1, 1.5, seed=4),
        )
        assert report.accurate

    def test_detection_robust_to_message_loss(self):
        # losing 20% of heartbeats must not trigger suspicion with a
        # timeout covering a few periods
        graph, _ = build_lhg(14, 3)
        victim = graph.nodes()[2]
        report = run_failure_detection(
            graph, [victim], 10.0, period=1.0, timeout=4.5, loss_rate=0.2
        )
        assert report.complete
        assert report.accurate


class TestRevocation:
    def test_false_suspicion_revoked_on_next_heartbeat(self):
        from repro.flooding.network import NodeApi

        graph = cycle_graph(4)
        sim = Simulator()
        net = Network(graph, sim)
        protocol = HeartbeatProtocol(net, period=1.0, timeout=2.0, horizon=5.0)
        api = NodeApi(net, 0)
        protocol.on_start(0, api)
        # force a suspicion of neighbour 1, then deliver its heartbeat
        protocol.suspected[0].add(1)
        protocol.on_message(0, "heartbeat", 1, api)
        assert 1 not in protocol.suspected[0]

    def test_unexpected_payload_rejected(self):
        from repro.flooding.network import NodeApi

        sim = Simulator()
        net = Network(cycle_graph(4), sim)
        protocol = HeartbeatProtocol(net)
        api = NodeApi(net, 0)
        protocol.on_start(0, api)
        with pytest.raises(ProtocolError):
            protocol.on_message(0, "garbage", 1, api)
