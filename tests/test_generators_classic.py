"""Unit tests for the classic deterministic generators."""

import pytest

from repro.errors import GeneratorParameterError
from repro.graphs.generators.classic import (
    balanced_tree,
    circulant_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    edge_list_pairs,
    empty_graph,
    grid_graph,
    path_graph,
    petersen_graph,
    star_graph,
    wheel_graph,
)
from repro.graphs.traversal import diameter, is_connected


class TestBasicFamilies:
    def test_empty(self):
        g = empty_graph(4)
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 0

    def test_empty_negative_rejected(self):
        with pytest.raises(GeneratorParameterError):
            empty_graph(-1)

    def test_path_counts(self):
        g = path_graph(6)
        assert g.number_of_edges() == 5
        assert diameter(g) == 5

    def test_cycle_counts(self):
        g = cycle_graph(6)
        assert g.number_of_edges() == 6
        assert g.regular_degree() == 2

    def test_cycle_too_small(self):
        with pytest.raises(GeneratorParameterError):
            cycle_graph(2)

    def test_complete_counts(self):
        g = complete_graph(7)
        assert g.number_of_edges() == 21
        assert g.regular_degree() == 6

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.number_of_edges() == 12
        assert is_connected(g)
        # parts are independent sets
        assert not g.has_edge(0, 1)
        assert not g.has_edge(3, 4)

    def test_star(self):
        g = star_graph(5)
        assert g.number_of_nodes() == 6
        assert g.degree(0) == 5

    def test_wheel(self):
        g = wheel_graph(5)
        assert g.number_of_nodes() == 6
        assert g.degree(0) == 5
        assert all(g.degree(i) == 3 for i in range(1, 6))

    def test_petersen(self):
        g = petersen_graph()
        assert g.number_of_nodes() == 10
        assert g.number_of_edges() == 15
        assert g.regular_degree() == 3
        assert diameter(g) == 2


class TestBalancedTree:
    def test_counts(self):
        g = balanced_tree(2, 3)
        assert g.number_of_nodes() == 15
        assert g.number_of_edges() == 14

    def test_height_zero_is_single_node(self):
        g = balanced_tree(3, 0)
        assert g.number_of_nodes() == 1

    def test_branching_one_is_path(self):
        g = balanced_tree(1, 4)
        assert g.number_of_nodes() == 5
        assert diameter(g) == 4

    def test_diameter_twice_height(self):
        assert diameter(balanced_tree(3, 2)) == 4

    def test_domain(self):
        with pytest.raises(GeneratorParameterError):
            balanced_tree(0, 2)
        with pytest.raises(GeneratorParameterError):
            balanced_tree(2, -1)


class TestGridAndCirculant:
    def test_grid_counts(self):
        g = grid_graph(3, 4)
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == 3 * 3 + 2 * 4
        assert diameter(g) == 5

    def test_grid_domain(self):
        with pytest.raises(GeneratorParameterError):
            grid_graph(0, 3)

    def test_circulant_ring(self):
        g = circulant_graph(8, [1])
        assert g == cycle_graph(8)

    def test_circulant_degree(self):
        g = circulant_graph(10, [1, 2])
        assert g.regular_degree() == 4

    def test_circulant_half_offset(self):
        g = circulant_graph(6, [3])
        assert all(g.degree(v) == 1 for v in g)  # perfect matching

    def test_circulant_offset_domain(self):
        with pytest.raises(GeneratorParameterError):
            circulant_graph(6, [4])
        with pytest.raises(GeneratorParameterError):
            circulant_graph(2, [1])

    def test_edge_list_pairs_sorted(self):
        pairs = edge_list_pairs(cycle_graph(4))
        assert pairs == [(0, 1), (0, 3), (1, 2), (2, 3)]
