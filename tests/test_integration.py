"""End-to-end integration tests spanning all packages."""

import pytest

from repro import build_lhg, check_lhg, run_flood
from repro.core.certificates import ConstructionCertificate
from repro.core.routing import tree_route
from repro.flooding import random_crashes, repeat_runs
from repro.graphs.io import from_json, to_json
from repro.graphs.nxcompat import to_networkx
from repro.overlay import LHGOverlay, generate_trace


class TestBuildVerifyFloodPipeline:
    def test_full_pipeline(self):
        graph, cert = build_lhg(34, 3)
        report = check_lhg(graph, 3)
        assert report.is_lhg
        source = graph.nodes()[0]
        agg = repeat_runs(
            run_flood,
            graph,
            source,
            lambda seed: random_crashes(graph, 2, seed=seed, protect={source}),
            10,
        )
        assert agg.min_delivery_ratio() == 1.0

    def test_serialise_everything_and_resume(self):
        graph, cert = build_lhg(14, 3)
        graph2 = from_json(to_json(graph))
        cert2 = ConstructionCertificate.from_json(cert.to_json())
        cert2.verify_graph(graph2)
        # routing still works on the restored pair
        nodes = graph2.nodes()
        path = tree_route(cert2, nodes[0], nodes[-1])
        assert path[0] == nodes[0] and path[-1] == nodes[-1]

    def test_networkx_cross_validation(self):
        networkx = pytest.importorskip("networkx")
        graph, _ = build_lhg(20, 4)
        nx_graph = to_networkx(graph)
        assert networkx.node_connectivity(nx_graph) == 4
        assert networkx.edge_connectivity(nx_graph) == 4
        from repro.graphs.traversal import diameter

        assert networkx.diameter(nx_graph) == diameter(graph)


class TestOverlayToFloodingPipeline:
    def test_churned_overlay_floods_reliably(self):
        overlay = LHGOverlay(k=3)
        trace = generate_trace(25, 14, 3, seed=5)
        for event in trace:
            if event.kind == "join":
                overlay.join(event.member)
            else:
                overlay.leave(event.member)
        topology = overlay.topology()
        source = overlay.members[0]
        for seed in range(5):
            schedule = random_crashes(topology, 2, seed=seed, protect={source})
            result = run_flood(topology, source, failures=schedule)
            assert result.fully_covered

    def test_overlay_growth_spans_rules(self):
        # growing one by one crosses JD-feasible, K-DIAMOND-regular and
        # K-TREE-only sizes; the overlay must never miss a beat
        overlay = LHGOverlay(k=3)
        for i in range(6):
            overlay.join(i)
        for i in range(6, 20):
            overlay.join(i)
            assert overlay.topology().number_of_nodes() == i + 1
            assert overlay.topology().min_degree() >= 3
