"""Unit tests for graph serialisation (edge list, JSON, DOT)."""

import io

import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.generators.classic import cycle_graph, petersen_graph
from repro.graphs.io import (
    from_json,
    read_integer_edge_list,
    to_dot,
    to_json,
    write_edge_list,
)


class TestEdgeList:
    def test_write_produces_one_line_per_edge(self):
        stream = io.StringIO()
        write_edge_list(cycle_graph(4), stream)
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == 4

    def test_read_round_trip(self):
        text = "0 1\n1 2\n# comment\n\n2 0\n"
        g = read_integer_edge_list(io.StringIO(text))
        assert g.number_of_edges() == 3
        assert g.has_edge(2, 0)

    def test_read_rejects_bad_width(self):
        with pytest.raises(GraphError):
            read_integer_edge_list(io.StringIO("0 1 2\n"))

    def test_read_rejects_non_integer(self):
        with pytest.raises(GraphError):
            read_integer_edge_list(io.StringIO("a b\n"))


class TestJson:
    def test_round_trip_simple(self):
        g = petersen_graph()
        restored = from_json(to_json(g))
        assert restored == g
        assert restored.name == "petersen"

    def test_round_trip_tuple_labels(self):
        g = Graph(edges=[(("T", 0, 1), ("L", 5)), (("L", 5), ("U", 2, 0))])
        restored = from_json(to_json(g))
        assert restored == g
        assert restored.has_node(("T", 0, 1))

    def test_round_trip_isolated_nodes(self):
        g = Graph(nodes=["lonely"], edges=[(1, 2)])
        restored = from_json(to_json(g))
        assert restored.has_node("lonely")

    def test_nested_tuples(self):
        g = Graph(nodes=[(1, (2, 3))])
        restored = from_json(to_json(g))
        assert restored.has_node((1, (2, 3)))

    def test_unserialisable_label_rejected(self):
        g = Graph(nodes=[object()])
        with pytest.raises(GraphError):
            to_json(g)

    def test_invalid_json_rejected(self):
        with pytest.raises(GraphError):
            from_json("{not json")

    def test_missing_keys_rejected(self):
        with pytest.raises(GraphError):
            from_json('{"nodes": []}')

    def test_malformed_edge_rejected(self):
        with pytest.raises(GraphError):
            from_json('{"nodes": [1, 2], "edges": [[1, 2, 3]]}')


class TestDot:
    def test_contains_nodes_and_edges(self):
        g = cycle_graph(3)
        dot = to_dot(g)
        assert dot.startswith("graph G {")
        assert dot.count("--") == 3

    def test_highlight(self):
        dot = to_dot(cycle_graph(3), highlight=[0])
        assert "filled" in dot
