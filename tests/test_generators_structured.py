"""Unit tests for the structured log-diameter families."""

import math

import pytest

from repro.errors import GeneratorParameterError
from repro.graphs.generators.structured import (
    butterfly_graph,
    cube_connected_cycles,
    debruijn_graph,
    hypercube_graph,
    special_family_coverage,
    torus_graph,
    valid_butterfly_sizes,
    valid_debruijn_sizes,
    valid_hypercube_sizes,
)
from repro.graphs.connectivity import node_connectivity
from repro.graphs.traversal import diameter, is_connected


class TestHypercube:
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_counts(self, d):
        g = hypercube_graph(d)
        assert g.number_of_nodes() == 2 ** d
        assert g.number_of_edges() == d * 2 ** (d - 1)
        assert g.regular_degree() == d

    def test_diameter_is_dimension(self):
        assert diameter(hypercube_graph(4)) == 4

    def test_connectivity_is_dimension(self):
        assert node_connectivity(hypercube_graph(3)) == 3

    def test_domain(self):
        with pytest.raises(GeneratorParameterError):
            hypercube_graph(0)


class TestDeBruijn:
    def test_counts(self):
        g = debruijn_graph(2, 3)
        assert g.number_of_nodes() == 8
        assert is_connected(g)

    def test_diameter_is_word_length(self):
        assert diameter(debruijn_graph(2, 4)) == 4

    def test_degree_bounded(self):
        g = debruijn_graph(3, 3)
        assert g.max_degree() <= 6

    def test_domain(self):
        with pytest.raises(GeneratorParameterError):
            debruijn_graph(1, 3)
        with pytest.raises(GeneratorParameterError):
            debruijn_graph(2, 0)


class TestButterflyAndCCC:
    def test_butterfly_counts(self):
        d = 3
        g = butterfly_graph(d)
        assert g.number_of_nodes() == d * 2 ** d
        assert g.regular_degree() == 4
        assert is_connected(g)

    def test_butterfly_domain(self):
        with pytest.raises(GeneratorParameterError):
            butterfly_graph(1)

    def test_ccc_counts(self):
        d = 3
        g = cube_connected_cycles(d)
        assert g.number_of_nodes() == d * 2 ** d
        assert g.regular_degree() == 3
        assert node_connectivity(g) == 3

    def test_ccc_domain(self):
        with pytest.raises(GeneratorParameterError):
            cube_connected_cycles(2)


class TestTorus:
    def test_counts(self):
        g = torus_graph(3, 4)
        assert g.number_of_nodes() == 12
        assert g.regular_degree() == 4

    def test_diameter(self):
        assert diameter(torus_graph(4, 4)) == 4

    def test_domain(self):
        with pytest.raises(GeneratorParameterError):
            torus_graph(2, 5)


class TestSizeEnumerators:
    def test_hypercube_sizes(self):
        assert valid_hypercube_sizes(40) == [2, 4, 8, 16, 32]

    def test_debruijn_sizes(self):
        assert valid_debruijn_sizes(2, 40) == [2, 4, 8, 16, 32]
        assert valid_debruijn_sizes(3, 100) == [3, 9, 27, 81]

    def test_butterfly_sizes(self):
        assert valid_butterfly_sizes(100) == [8, 24, 64]

    def test_coverage_sparsity(self):
        # the point of the experiment: special families cover a vanishing
        # fraction of sizes
        covered = {n for _, n in special_family_coverage(512)}
        assert len(covered) < 25  # vs 505+ sizes the LHG covers for k=4
