"""Tests for the chaos campaign engine (scenarios, invariants, matrix)."""

import pytest

from repro.core.existence import build_lhg
from repro.errors import SimulationError
from repro.robustness import (
    ChaosCampaign,
    ProtocolSpec,
    check_no_dead_delivery,
    check_quiescence,
    check_retransmission_budget,
    crash_recover,
    flapping,
    message_loss,
    partition_heal,
    standard_protocols,
    standard_scenarios,
)
from repro.robustness.invariants import InvariantViolation, RunRecord


def small_grid(**kwargs):
    graph, _ = build_lhg(16, 2)
    return graph, ChaosCampaign([(graph.name, graph)], **kwargs)


class TestScenarios:
    def test_standard_grid_names(self):
        names = [s.name for s in standard_scenarios()]
        assert names == [
            "baseline",
            "loss-0.1",
            "loss-0.3",
            "dup-reorder",
            "flapping",
            "partition-heal",
            "crash-recover",
        ]

    def test_builds_are_deterministic_in_seed(self):
        graph, _ = build_lhg(16, 2)
        source = graph.nodes()[0]
        scenario = crash_recover()
        a = scenario.build(graph, source, 3)
        b = scenario.build(graph, source, 3)
        assert a.schedule.crashes == b.schedule.crashes
        assert a.schedule.recoveries == b.schedule.recoveries

    def test_different_seeds_pick_different_victims(self):
        graph, _ = build_lhg(32, 2)
        source = graph.nodes()[0]
        scenario = crash_recover()
        a = scenario.build(graph, source, 1).schedule.crashed_nodes
        b = scenario.build(graph, source, 2).schedule.crashed_nodes
        assert a != b

    def test_source_never_a_victim(self):
        graph, _ = build_lhg(16, 2)
        source = graph.nodes()[0]
        for seed in range(5):
            setup = flapping().build(graph, source, seed)
            assert source not in {
                f.u for f in setup.schedule.link_failures
            }

    def test_partition_heal_restores_every_cut_link(self):
        graph, _ = build_lhg(16, 2)
        source = graph.nodes()[0]
        setup = partition_heal().build(graph, source, 0)
        assert len(setup.schedule.link_failures) >= 1
        assert len(setup.schedule.link_recoveries) == len(
            setup.schedule.link_failures
        )

    def test_loss_scenario_uses_fault_model(self):
        graph, _ = build_lhg(16, 2)
        setup = message_loss(0.2).build(graph, graph.nodes()[0], 0)
        assert setup.fault_model is not None
        assert setup.fault_model.profile.drop == 0.2

    def test_victim_pool_too_small(self):
        graph, _ = build_lhg(6, 2)
        with pytest.raises(SimulationError):
            crash_recover(victims=10).build(graph, graph.nodes()[0], 0)


class TestInvariantCheckers:
    def _record(self, trace_events=(), **kwargs):
        from repro.flooding.trace import TraceCollector

        trace = TraceCollector()
        for kind, time, details in trace_events:
            trace(kind, time, **details)
        defaults = dict(
            graph=None,
            source=0,
            schedule=None,
            network=None,
            simulator=None,
            trace=trace,
            protocol=object(),
            result=None,
        )
        defaults.update(kwargs)
        return RunRecord(**defaults)

    def test_budget_exhaustion_violates_quiescence(self):
        record = self._record(budget_exhausted=True)
        violation = check_quiescence(record)
        assert violation is not None and violation.invariant == "quiescence"

    def test_dead_delivery_detected(self):
        record = self._record(
            trace_events=[
                ("crash", 1.0, {"node": 5}),
                ("deliver", 2.0, {"sender": 1, "receiver": 5}),
            ]
        )
        violation = check_no_dead_delivery(record)
        assert violation is not None and "5" in violation.detail

    def test_recovery_reopens_delivery(self):
        record = self._record(
            trace_events=[
                ("crash", 1.0, {"node": 5}),
                ("recover", 2.0, {"node": 5}),
                ("deliver", 3.0, {"sender": 1, "receiver": 5}),
            ]
        )
        assert check_no_dead_delivery(record) is None

    def test_retransmission_budget_uses_retry_budget(self):
        class Chatty:
            retransmissions = 11
            retry_budget = 10

        violation = check_retransmission_budget(self._record(protocol=Chatty()))
        assert violation is not None and "11" in violation.detail

    def test_counterless_protocol_passes_vacuously(self):
        assert check_retransmission_budget(self._record(protocol=object())) is None

    def test_violation_renders_with_name(self):
        violation = InvariantViolation("coverage", "covered 3 of 4")
        assert str(violation) == "coverage: covered 3 of 4"


class TestCampaign:
    def test_empty_grid_rejected(self):
        with pytest.raises(SimulationError):
            ChaosCampaign([])
        graph, _ = build_lhg(16, 2)
        with pytest.raises(SimulationError):
            ChaosCampaign([(graph.name, graph)], seeds=())

    def test_small_campaign_all_green(self):
        _, campaign = small_grid(
            scenarios=[s for s in standard_scenarios() if s.name == "baseline"]
        )
        matrix = campaign.run()
        assert matrix.all_green
        assert len(matrix.cells) == 2  # two protocol columns, one seed
        assert all(cell.fully_covered for cell in matrix.cells)

    def test_arq_covers_where_plain_does_not(self):
        _, campaign = small_grid(
            scenarios=[
                s for s in standard_scenarios() if s.name == "partition-heal"
            ]
        )
        matrix = campaign.run()
        assert matrix.all_green
        (plain,) = matrix.select(protocol="reliable-flood")
        (arq,) = matrix.select(protocol="arq-reliable-flood")
        assert arq.fully_covered
        assert not plain.fully_covered

    def test_matrix_rows_deterministic(self):
        scenarios = [
            s for s in standard_scenarios() if s.name in ("loss-0.3", "flapping")
        ]
        _, campaign_a = small_grid(scenarios=scenarios, seeds=(7,))
        _, campaign_b = small_grid(scenarios=scenarios, seeds=(7,))
        assert campaign_a.run().cells == campaign_b.run().cells

    def test_select_filters_by_labels(self):
        graph, campaign = small_grid(
            scenarios=[s for s in standard_scenarios() if s.name == "baseline"],
            seeds=(0, 1),
        )
        matrix = campaign.run()
        assert len(matrix.cells) == 4
        assert len(matrix.select(protocol="reliable-flood")) == 2
        assert len(matrix.select(topology=graph.name)) == 4
        assert matrix.select(scenario="nope") == []

    def test_render_mentions_every_cell(self):
        _, campaign = small_grid(
            scenarios=[s for s in standard_scenarios() if s.name == "baseline"]
        )
        text = campaign.run().render(title="smoke")
        assert "smoke" in text
        assert "reliable-flood" in text and "arq-reliable-flood" in text
        assert "100.00%" in text

    def test_custom_protocol_spec(self):
        from repro.flooding.protocols.flood import FloodProtocol

        graph, _ = build_lhg(16, 2)
        spec = ProtocolSpec(
            name="plain-flood",
            factory=lambda network, source: FloodProtocol(network, source),
        )
        campaign = ChaosCampaign(
            [(graph.name, graph)],
            protocols=[spec],
            scenarios=[s for s in standard_scenarios() if s.name == "baseline"],
        )
        matrix = campaign.run()
        assert matrix.all_green
        assert matrix.cells[0].protocol == "plain-flood"

    def test_standard_protocols_declarations(self):
        plain, arq = standard_protocols()
        assert plain.name == "reliable-flood" and not plain.guarantees_delivery
        assert arq.name == "arq-reliable-flood" and arq.guarantees_delivery
