"""Tests for probabilistic message loss in the network model."""

import pytest

from repro.core.existence import build_lhg
from repro.errors import SimulationError
from repro.flooding.experiments import repeat_runs, run_flood, run_treecast
from repro.flooding.network import Network
from repro.flooding.simulator import Simulator
from repro.graphs.generators.classic import cycle_graph, path_graph


class TestLossParameters:
    def test_invalid_loss_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Network(path_graph(2), sim, loss_rate=1.0)
        with pytest.raises(SimulationError):
            Network(path_graph(2), sim, loss_rate=-0.1)

    def test_zero_loss_is_default_behaviour(self):
        g = cycle_graph(8)
        lossless = run_flood(g, 0)
        explicit = run_flood(g, 0, loss_rate=0.0)
        assert lossless.covered == explicit.covered == 8
        assert lossless.messages == explicit.messages


class TestLossAccounting:
    def test_lost_messages_counted_sent_and_dropped(self):
        g = path_graph(2)
        sim = Simulator()
        net = Network(g, sim, loss_rate=0.999999, loss_seed=1)

        class OneShot:
            def on_start(self, node, api):
                if node == 0:
                    api.send(1, "x")

            def on_message(self, node, payload, sender, api):
                raise AssertionError("message should have been lost")

            def on_timer(self, node, tag, api):
                pass

        net.attach(OneShot(), start_nodes=[0])
        sim.run()
        assert net.stats.messages_sent == 1
        assert net.stats.messages_dropped == 1
        assert net.stats.messages_delivered == 0

    def test_deterministic_in_loss_seed(self):
        graph, _ = build_lhg(30, 3)
        source = graph.nodes()[0]
        a = run_flood(graph, source, loss_rate=0.3, loss_seed=7)
        b = run_flood(graph, source, loss_rate=0.3, loss_seed=7)
        assert a.covered == b.covered
        assert a.messages == b.messages


class TestLossResilience:
    def test_flooding_absorbs_moderate_loss(self):
        graph, _ = build_lhg(40, 4)
        source = graph.nodes()[0]
        agg = repeat_runs(
            run_flood, graph, source, None, 10, loss_rate=0.1
        )
        # k parallel copies per node: 10% loss almost never severs all
        assert agg.mean_delivery_ratio() > 0.97

    def test_treecast_collapses_under_same_loss(self):
        graph, _ = build_lhg(40, 4)
        source = graph.nodes()[0]
        flood = repeat_runs(run_flood, graph, source, None, 10, loss_rate=0.15)
        tree = repeat_runs(run_treecast, graph, source, None, 10, loss_rate=0.15)
        assert flood.mean_delivery_ratio() > tree.mean_delivery_ratio() + 0.2

    def test_loss_reduces_coverage_monotonically_on_average(self):
        graph, _ = build_lhg(30, 3)
        source = graph.nodes()[0]
        low = repeat_runs(run_flood, graph, source, None, 15, loss_rate=0.05)
        high = repeat_runs(run_flood, graph, source, None, 15, loss_rate=0.5)
        assert high.mean_delivery_ratio() < low.mean_delivery_ratio()
