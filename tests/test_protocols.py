"""Tests for flooding, gossip and tree-cast protocols."""

import pytest

from repro.core.existence import build_lhg
from repro.errors import ProtocolError
from repro.flooding.experiments import run_flood, run_gossip, run_treecast
from repro.flooding.failures import FailureSchedule, crash_before_start
from repro.flooding.network import ConstantLatency, Network, UniformLatency
from repro.flooding.protocols.flood import FloodProtocol, MultiSourceFloodProtocol
from repro.flooding.protocols.treecast import TreeCastProtocol
from repro.flooding.simulator import Simulator
from repro.graphs.generators.classic import (
    balanced_tree,
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.graphs.traversal import bfs_levels, diameter


class TestFloodProtocol:
    def test_full_coverage_on_connected_graph(self):
        result = run_flood(cycle_graph(10), 0)
        assert result.covered == 10
        assert result.fully_covered

    def test_completion_time_is_eccentricity(self):
        g = path_graph(6)
        result = run_flood(g, 0)
        assert result.completion_time == 5.0

    def test_delivery_times_match_bfs_levels(self):
        graph, _ = build_lhg(22, 3)
        source = graph.nodes()[0]
        result = run_flood(graph, source)
        levels = bfs_levels(graph, source)
        for node, time in result.delivery_times.items():
            assert time == float(levels[node])

    def test_message_count_bounds(self):
        g = complete_graph(6)
        result = run_flood(g, 0)
        m = g.number_of_edges()
        # every covered node sends deg or deg-1 messages
        assert result.messages <= 2 * m
        assert result.messages >= m

    def test_flood_on_tree_sends_minimum(self):
        g = balanced_tree(2, 3)
        result = run_flood(g, 0)
        # On a tree flooding sends exactly one message per edge... plus
        # the child->parent echoes: each non-source node sends deg-1.
        assert result.fully_covered
        assert result.completion_time == 3.0

    def test_duplicate_suppression(self):
        g = complete_graph(5)
        result = run_flood(g, 0)
        # n-1 deliveries trigger forwarding once each
        assert result.covered == 5

    def test_non_unit_latency(self):
        g = path_graph(3)
        result = run_flood(g, 0, latency=ConstantLatency(2.0))
        assert result.completion_time == 4.0

    def test_random_latency_still_covers(self):
        graph, _ = build_lhg(14, 3)
        result = run_flood(
            graph, graph.nodes()[0], latency=UniformLatency(0.5, 1.5, seed=2)
        )
        assert result.fully_covered


class TestMultiSourceFlood:
    def test_two_messages_cover_independently(self):
        g = cycle_graph(8)
        sim = Simulator()
        net = Network(g, sim)
        protocol = MultiSourceFloodProtocol(net, sources=(0, 4))
        net.attach(protocol, start_nodes=[0, 4])
        sim.run()
        assert len(protocol.seen[(0, 0)]) == 8
        assert len(protocol.seen[(4, 1)]) == 8

    def test_message_cost_scales_with_sources(self):
        g = cycle_graph(10)

        def cost(sources):
            sim = Simulator()
            net = Network(g, sim)
            protocol = MultiSourceFloodProtocol(net, sources=sources)
            net.attach(protocol, start_nodes=list(sources))
            sim.run()
            return net.stats.messages_sent

        assert cost((0, 5)) == 2 * cost((0,))


class TestGossip:
    def test_high_fanout_covers(self):
        g = complete_graph(12)
        result = run_gossip(g, 0, fanout=4, rounds=12, seed=1)
        assert result.fully_covered

    def test_deterministic_in_seed(self):
        graph, _ = build_lhg(20, 4)
        a = run_gossip(graph, graph.nodes()[0], fanout=2, rounds=6, seed=9)
        b = run_gossip(graph, graph.nodes()[0], fanout=2, rounds=6, seed=9)
        assert a.covered == b.covered
        assert a.messages == b.messages

    def test_few_rounds_may_miss_nodes(self):
        graph, _ = build_lhg(46, 3)
        result = run_gossip(graph, graph.nodes()[0], fanout=1, rounds=2, seed=0)
        assert result.covered < result.n

    def test_more_messages_than_flooding(self):
        graph, _ = build_lhg(30, 3)
        source = graph.nodes()[0]
        flood = run_flood(graph, source)
        gossip = run_gossip(graph, source, fanout=3, rounds=12, seed=0)
        assert gossip.messages > flood.messages


class TestTreeCast:
    def test_sends_exactly_n_minus_1(self):
        g = cycle_graph(9)
        result = run_treecast(g, 0)
        assert result.messages == 8
        assert result.fully_covered

    def test_single_crash_partitions(self):
        g = path_graph(5)
        result = run_treecast(g, 0, failures=crash_before_start([2]))
        # nodes 3,4 unreachable in the tree (and the survivor graph)
        assert result.covered == 2
        assert result.reachable == 2  # fair denominator agrees here

    def test_interior_crash_loses_subtree(self):
        g = complete_graph(6)  # tree is a star rooted at 0
        result = run_treecast(g, 0, failures=crash_before_start([1]))
        # survivor graph is still connected, but the tree lost node 1 only
        assert result.reachable == 5
        assert result.covered == 5  # star: node 1 was a leaf of the tree

    def test_source_not_in_graph_rejected(self):
        sim = Simulator()
        g = cycle_graph(4)
        net = Network(g, sim)
        with pytest.raises(ProtocolError):
            TreeCastProtocol(net, g, "ghost")


class TestSourceValidation:
    def test_crashed_source_rejected_everywhere(self):
        from repro.errors import SimulationError

        g = cycle_graph(6)
        dead_source = crash_before_start([0])
        for runner in (run_flood, run_gossip, run_treecast):
            with pytest.raises(SimulationError):
                runner(g, 0, failures=dead_source)
