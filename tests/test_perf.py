"""Unit tests for the repro.perf benchmark ledger subsystem."""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.perf import (
    PERF_SCHEMA_VERSION,
    MetricDelta,
    bench_envelope,
    build_ledger,
    collect_results,
    diff_results,
    dispersion,
    emit_bench,
    has_regression,
    host_fingerprint,
    load_bench,
    load_ledger,
    metric_summary,
    render_deltas,
    validate_bench,
    write_ledger,
)


class TestSchema:
    def test_host_fingerprint_stable(self):
        first, second = host_fingerprint(), host_fingerprint()
        assert first == second
        assert len(first["id"]) == 12

    def test_dispersion(self):
        stats = dispersion([1.0, 2.0, 3.0])
        assert stats["mean"] == 2.0
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["stdev"] == 1.0
        assert stats["rel_stdev"] == 0.5

    def test_dispersion_single_sample(self):
        stats = dispersion([4.2])
        assert stats["stdev"] == 0.0
        assert stats["rel_stdev"] == 0.0

    def test_dispersion_empty_raises(self):
        with pytest.raises(ReproError):
            dispersion([])

    def test_metric_summary_lower_takes_min(self):
        entry = metric_summary([0.5, 0.4, 0.6])
        assert entry["value"] == 0.4
        assert entry["repeats"] == 3

    def test_metric_summary_higher_takes_max(self):
        entry = metric_summary([0.5, 0.9], direction="higher")
        assert entry["value"] == 0.9

    def test_metric_summary_bad_direction(self):
        with pytest.raises(ReproError):
            metric_summary([1.0], direction="sideways")

    def test_envelope_validates_clean(self):
        doc = bench_envelope("exp", {"wall": [1.0, 1.1]})
        assert doc["perf_schema"] == PERF_SCHEMA_VERSION
        assert validate_bench(doc) == []

    def test_envelope_requires_metrics(self):
        with pytest.raises(ReproError):
            bench_envelope("exp", {})

    def test_validate_rejects_drift(self):
        doc = bench_envelope("exp", {"wall": [1.0]})
        doc["metrics"]["wall"]["repeats"] = 7
        doc["perf_schema"] = 99
        problems = validate_bench(doc)
        assert any("perf_schema" in p for p in problems)
        assert any("repeats" in p for p in problems)

    def test_emit_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        emitted = emit_bench(
            path, "x", {"wall": [1.0], "frac": [0.5]},
            payload={"extra": True}, units={"frac": "fraction"},
        )
        loaded = load_bench(path)
        assert loaded == json.loads(json.dumps(emitted))
        assert loaded["payload"] == {"extra": True}
        assert loaded["metrics"]["frac"]["unit"] == "fraction"

    def test_load_rejects_legacy_shape(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps({"experiment": "old", "overhead": 0.1}))
        with pytest.raises(ReproError):
            load_bench(path)


def _results_dir(tmp_path, wall=1.0, frac=0.02, name="alpha"):
    directory = tmp_path / "results"
    directory.mkdir(exist_ok=True)
    emit_bench(
        directory / f"BENCH_{name}.json",
        name,
        {"wall_seconds": [wall, wall * 1.02], "frac": [frac]},
        units={"frac": "fraction"},
    )
    return directory


class TestLedger:
    def test_collect_requires_results(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        with pytest.raises(ReproError):
            collect_results(empty)
        with pytest.raises(ReproError):
            collect_results(tmp_path / "absent")

    def test_record_and_clean_check(self, tmp_path):
        directory = _results_dir(tmp_path)
        ledger = build_ledger(collect_results(directory))
        assert ledger["host"]["id"] == host_fingerprint()["id"]
        deltas = diff_results(collect_results(directory), ledger)
        assert [d.status for d in deltas] == ["ok", "ok"]
        assert not has_regression(deltas)

    def test_wall_regression_gates_on_same_host(self, tmp_path):
        directory = _results_dir(tmp_path, wall=1.0)
        ledger = build_ledger(collect_results(directory))
        _results_dir(tmp_path, wall=2.0)  # 2x slowdown, same host
        deltas = diff_results(collect_results(directory), ledger)
        wall = next(d for d in deltas if d.metric == "wall_seconds")
        assert wall.status == "regression"
        assert has_regression(deltas)

    def test_wall_not_gated_cross_host(self, tmp_path):
        directory = _results_dir(tmp_path, wall=1.0)
        ledger = build_ledger(collect_results(directory))
        ledger["host"]["id"] = "feedfeedfeed"
        _results_dir(tmp_path, wall=10.0)
        deltas = diff_results(collect_results(directory), ledger)
        wall = next(d for d in deltas if d.metric == "wall_seconds")
        assert wall.status == "cross-host"
        assert not has_regression(deltas)

    def test_unitless_gates_everywhere(self, tmp_path):
        directory = _results_dir(tmp_path, frac=0.02)
        ledger = build_ledger(collect_results(directory))
        ledger["host"]["id"] = "feedfeedfeed"  # different host
        _results_dir(tmp_path, frac=0.2)  # blows the 0.05 abs band
        deltas = diff_results(collect_results(directory), ledger)
        frac = next(d for d in deltas if d.metric == "frac")
        assert frac.status == "regression"

    def test_improvement_is_not_a_regression(self, tmp_path):
        directory = _results_dir(tmp_path, wall=2.0)
        ledger = build_ledger(collect_results(directory))
        _results_dir(tmp_path, wall=0.5)
        deltas = diff_results(collect_results(directory), ledger)
        wall = next(d for d in deltas if d.metric == "wall_seconds")
        assert wall.status == "improved"
        assert not has_regression(deltas)

    def test_missing_and_new_are_warnings(self, tmp_path):
        directory = _results_dir(tmp_path, name="alpha")
        ledger = build_ledger(collect_results(directory))
        (directory / "BENCH_alpha.json").unlink()
        _results_dir(tmp_path, name="beta")
        deltas = diff_results(collect_results(directory), ledger)
        statuses = {d.metric: d.status for d in deltas if d.experiment == "alpha"}
        assert set(statuses.values()) == {"missing"}
        assert all(
            d.status == "new" for d in deltas if d.experiment == "beta"
        )
        assert not has_regression(deltas)

    def test_band_widens_with_measured_noise(self, tmp_path):
        directory = tmp_path / "results"
        directory.mkdir()
        emit_bench(
            directory / "BENCH_noisy.json",
            "noisy",
            {"wall_seconds": [1.0, 2.0, 3.0]},  # rel_stdev 0.5
        )
        ledger = build_ledger(collect_results(directory))
        deltas = diff_results(collect_results(directory), ledger)
        # 3 sigmas * (0.5 + 0.5) = 3.0, far above the 0.35 floor
        assert deltas[0].band == pytest.approx(3.0)

    def test_ledger_round_trip(self, tmp_path):
        directory = _results_dir(tmp_path)
        ledger = build_ledger(collect_results(directory))
        path = tmp_path / "ledger.json"
        write_ledger(path, ledger)
        assert load_ledger(path) == ledger

    def test_load_ledger_missing_or_wrong_version(self, tmp_path):
        with pytest.raises(ReproError):
            load_ledger(tmp_path / "absent.json")
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"ledger_schema": 99, "entries": {}}))
        with pytest.raises(ReproError):
            load_ledger(path)

    def test_render_deltas_table(self):
        deltas = [
            MetricDelta("e", "m", "s", "lower", 1.0, 2.0, 0.35, "regression"),
            MetricDelta("e", "n", "s", "lower", 1.0, None, 0.0, "missing", "gone"),
        ]
        text = render_deltas(deltas)
        assert "regression" in text and "missing (gone)" in text
        assert "2 metric(s): 1 regression, 1 missing" in text


class TestPerfCLI:
    def test_record_diff_check_flow(self, tmp_path, capsys):
        directory = _results_dir(tmp_path)
        ledger = str(tmp_path / "ledger.json")
        argv = ["--results", str(directory), "--ledger", ledger]
        assert main(["perf", "record"] + argv) == 0
        assert main(["perf", "diff"] + argv) == 0
        assert main(["perf", "check"] + argv) == 0
        out = capsys.readouterr().out
        assert "recorded 1 experiment(s)" in out
        assert "2 metric(s): 2 ok" in out

    def test_check_fails_on_injected_slowdown(self, tmp_path, capsys):
        directory = _results_dir(tmp_path, wall=1.0)
        ledger = str(tmp_path / "ledger.json")
        argv = ["--results", str(directory), "--ledger", ledger]
        assert main(["perf", "record"] + argv) == 0
        _results_dir(tmp_path, wall=2.0)
        assert main(["perf", "check"] + argv) == 1
        assert main(["perf", "diff"] + argv) == 0  # diff informs, never gates
        err = capsys.readouterr().err
        assert "REGRESSION" in err

    def test_check_without_ledger_is_usage_error(self, tmp_path, capsys):
        directory = _results_dir(tmp_path)
        code = main(
            ["perf", "check", "--results", str(directory),
             "--ledger", str(tmp_path / "absent.json")]
        )
        assert code == 2
        assert "repro perf record" in capsys.readouterr().err

    def test_custom_floors(self, tmp_path):
        directory = _results_dir(tmp_path, wall=1.0)
        ledger = str(tmp_path / "ledger.json")
        argv = ["--results", str(directory), "--ledger", ledger]
        assert main(["perf", "record"] + argv) == 0
        _results_dir(tmp_path, wall=1.2)  # within the default 0.35 band
        assert main(["perf", "check"] + argv) == 0
        assert main(["perf", "check", "--rel-floor", "0.1"] + argv) == 1

    def test_committed_results_round_trip(self, capsys):
        # every committed BENCH_*.json parses under the shared schema
        # and diffs cleanly against the committed baseline ledger
        results = collect_results("benchmarks/results")
        assert results, "no committed results"
        for doc in results.values():
            assert validate_bench(doc) == []
        assert main(["perf", "diff"]) == 0
        assert "metric(s):" in capsys.readouterr().out
