"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    CertificateError,
    ConstructionError,
    DisconnectedGraphError,
    EdgeNotFoundError,
    GeneratorParameterError,
    GraphError,
    InfeasiblePairError,
    NodeNotFoundError,
    ProtocolError,
    ReproError,
    SchedulingError,
    SimulationError,
)


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for exc_type in (
            GraphError,
            NodeNotFoundError,
            EdgeNotFoundError,
            DisconnectedGraphError,
            GeneratorParameterError,
            ConstructionError,
            InfeasiblePairError,
            CertificateError,
            SimulationError,
            SchedulingError,
            ProtocolError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_value_error_compatibility(self):
        # parameter errors double as ValueError for idiomatic catching
        assert issubclass(GeneratorParameterError, ValueError)
        assert issubclass(InfeasiblePairError, ValueError)

    def test_key_error_compatibility(self):
        assert issubclass(NodeNotFoundError, KeyError)
        assert issubclass(EdgeNotFoundError, KeyError)


class TestPayloads:
    def test_node_not_found_carries_node(self):
        exc = NodeNotFoundError(("T", 0, 1))
        assert exc.node == ("T", 0, 1)
        assert "T" in str(exc)

    def test_edge_not_found_carries_endpoints(self):
        exc = EdgeNotFoundError(1, 2)
        assert (exc.u, exc.v) == (1, 2)

    def test_infeasible_pair_payload(self):
        exc = InfeasiblePairError(13, 3, "jenkins-demers", "odd offset")
        assert exc.n == 13 and exc.k == 3
        assert exc.rule == "jenkins-demers"
        assert "odd offset" in str(exc)

    def test_catching_by_family(self):
        with pytest.raises(ReproError):
            raise InfeasiblePairError(5, 3, "k-tree", "too small")
        with pytest.raises(ValueError):
            raise InfeasiblePairError(5, 3, "k-tree", "too small")
