"""The fault layer: FaultView, failure-aware rounds, attacks, recertification.

Three equivalences are pinned here:

* a :class:`FaultView` over any backend answers every structural
  question exactly like the *materialised* survivor graph (census
  parity: neighbourhoods, degrees, BFS layerings, diameters, floods);
* :func:`round_flood` under a failure schedule matches the
  event-driven simulator's ``FloodResult`` field for field on the same
  schedule;
* every targeted k−1 attack derived from the JD arithmetic leaves a
  survivor component the recertification battery certifies clean.

Plus the laziness regression: ``survivors()`` on an oracle input must
never materialise a dict Graph.
"""

import pytest

from repro.core.jenkins_demers import jd_feasibility
from repro.errors import GraphError, NodeNotFoundError, SimulationError
from repro.flooding.experiments import run_flood
from repro.flooding.failures import FailureSchedule, survivors
from repro.flooding.rounds import round_flood
from repro.graphs import (
    CSRGraph,
    FaultView,
    Graph,
    ImplicitJDOracle,
    component_size,
    id_bound,
    materialize,
)
from repro.graphs.traversal import bfs_levels, diameter, is_connected
from repro.robustness.attacks import AttackPlan, targeted_cut_attacks
from repro.robustness.invariants import recertify_survivors

CENSUS = [
    (n, k)
    for k in range(2, 6)
    for n in range(2 * k, 2 * k + 20)
    if jd_feasibility(n, k) is not None
]

SPOT = [(4, 2), (10, 3), (22, 3), (16, 4), (26, 5)]


def _pinned_schedules(n, k):
    """Deterministic failure schedules exercising every engine branch."""
    mid, last = n // 2, n - 1
    return [
        FailureSchedule().crash(last, time=0.0),
        FailureSchedule().crash(mid, time=2.0),
        FailureSchedule().fail_link(0, 1, time=0.0),
        FailureSchedule().fail_link(mid, (mid + 1) % n, time=1.0),
        FailureSchedule().crash(mid, time=1.0).recover(mid, time=3.0),
        FailureSchedule()
        .crash(last, time=0.0)
        .fail_link(0, 2, time=2.0)
        .restore_link(0, 2, time=4.0),
        FailureSchedule().crash(mid, time=1.5).fail_link(1, 2, time=2.5),
    ]


class TestFaultViewBasics:
    def setup_method(self):
        self.oracle = ImplicitJDOracle(22, 3)

    def test_down_node_is_not_a_node(self):
        view = FaultView(self.oracle, down_nodes=[5])
        assert not view.has_node(5)
        assert 5 not in view
        assert view.num_nodes() == 21
        assert len(view) == 21
        assert 5 not in view.nodes()
        with pytest.raises(NodeNotFoundError):
            view.neighbors(5)
        with pytest.raises(NodeNotFoundError):
            view.degree(5)

    def test_down_node_vanishes_from_neighbourhoods(self):
        victim = self.oracle.neighbors(0)[0]
        view = FaultView(self.oracle, down_nodes=[victim])
        assert victim not in view.neighbors(0)
        assert view.degree(0) == self.oracle.degree(0) - 1

    def test_killed_link_gone_from_both_ends(self):
        u = 0
        v = self.oracle.neighbors(0)[0]
        view = FaultView(self.oracle, killed_links=[(u, v)])
        assert v not in view.neighbors(u)
        assert u not in view.neighbors(v)
        assert not view.has_edge(u, v)
        assert view.num_nodes() == 22
        assert view.number_of_edges() == self.oracle.number_of_edges() - 1

    def test_unknown_failures_are_noops(self):
        view = FaultView(
            self.oracle, down_nodes=[999], killed_links=[(0, 999), (1, 1)]
        )
        assert view.damage == 0
        assert view.num_nodes() == 22
        assert view.number_of_edges() == self.oracle.number_of_edges()

    def test_kill_incident_to_down_node_not_double_counted(self):
        v = self.oracle.neighbors(0)[0]
        view = FaultView(self.oracle, down_nodes=[v], killed_links=[(0, v)])
        # the link died with its endpoint; edge accounting stays exact
        assert view.killed_links == frozenset()
        assert view.number_of_edges() == materialize(view).number_of_edges()

    def test_edge_count_exact_under_mixed_damage(self):
        down = [3, 7]
        alive_u = 0
        alive_v = next(
            w for w in self.oracle.neighbors(0) if w not in down
        )
        view = FaultView(
            self.oracle, down_nodes=down, killed_links=[(alive_u, alive_v)]
        )
        assert view.number_of_edges() == materialize(view).number_of_edges()

    def test_id_bound_propagates_through_nesting(self):
        view = FaultView(self.oracle, down_nodes=[4])
        assert id_bound(view) == 22
        nested = FaultView(view, down_nodes=[6])
        assert id_bound(nested) == 22
        assert nested.num_nodes() == 20
        assert not nested.has_node(4) and not nested.has_node(6)

    def test_dict_graph_base_has_no_id_bound(self):
        graph = Graph(edges=[("a", "b"), ("b", "c")])
        view = FaultView(graph, down_nodes=["c"])
        assert id_bound(view) is None
        assert view.nodes() == ["a", "b"]

    def test_damage_frontier(self):
        victim = 5
        around = set(self.oracle.neighbors(victim))
        u, v = 0, self.oracle.neighbors(0)[0]
        view = FaultView(
            self.oracle, down_nodes=[victim], killed_links=[(u, v)]
        )
        frontier = set(view.damage_frontier())
        assert around - {victim} <= frontier | {victim}
        assert u in frontier and v in frontier
        assert victim not in frontier

    def test_no_structural_proofs_forwarding(self):
        view = FaultView(self.oracle, down_nodes=[1])
        assert not hasattr(view, "structural_proofs")


class TestComponentSize:
    def test_counts_the_component(self):
        graph = Graph(edges=[(0, 1), (1, 2), (3, 4)])
        assert component_size(graph, 0) == 3
        assert component_size(graph, 3) == 2

    def test_unknown_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            component_size(Graph(nodes=[0]), 9)

    @pytest.mark.parametrize("n,k", SPOT)
    def test_matches_bfs_on_views(self, n, k):
        oracle = ImplicitJDOracle(n, k)
        view = FaultView(oracle, down_nodes=[n - 1])
        source = next(iter(view.iter_nodes()))
        assert component_size(view, source) == len(bfs_levels(view, source))


class TestSurvivorsLaziness:
    """Satellite: survivors() must stay O(#failures) for oracle inputs."""

    def test_oracle_input_returns_fault_view(self):
        oracle = ImplicitJDOracle(22, 3)
        schedule = FailureSchedule().crash(3).fail_link(0, 1)
        view = survivors(oracle, schedule)
        assert isinstance(view, FaultView)
        assert view.base is oracle
        assert not view.has_node(3)
        assert not view.has_edge(0, 1)

    def test_csr_input_returns_fault_view(self):
        csr = CSRGraph.from_oracle(ImplicitJDOracle(22, 3))
        assert isinstance(survivors(csr, FailureSchedule().crash(0)), FaultView)

    def test_graph_input_still_returns_graph(self):
        graph = materialize(ImplicitJDOracle(10, 3))
        result = survivors(graph, FailureSchedule().crash(3))
        assert isinstance(result, Graph)
        assert not result.has_node(3)

    def test_no_graph_materialised_for_oracle_input(self, monkeypatch):
        # regression: the old path built a dict Graph of all n nodes;
        # poison every Graph-construction entry point and prove the
        # oracle path never touches one
        oracle = ImplicitJDOracle(100, 3)
        schedule = FailureSchedule().crash(7).fail_link(0, 3)

        def boom(*args, **kwargs):
            raise AssertionError(
                "survivors() materialised a Graph for an oracle input"
            )

        monkeypatch.setattr(Graph, "__init__", boom)
        monkeypatch.setattr(
            "repro.graphs.oracle.materialize", boom, raising=True
        )
        view = survivors(oracle, schedule)
        assert isinstance(view, FaultView)
        assert view.num_nodes() == 99


class TestCensusParityWithMaterialisedSurvivors:
    """FaultView must be indistinguishable from the materialised cut."""

    @pytest.mark.parametrize("n,k", CENSUS)
    def test_structure_matches(self, n, k):
        oracle = ImplicitJDOracle(n, k)
        schedule = (
            FailureSchedule()
            .crash(n - 1)
            .fail_link(0, oracle.neighbors(0)[0])
        )
        view = survivors(oracle, schedule)
        expected = survivors(materialize(oracle), schedule)
        assert isinstance(view, FaultView)
        assert isinstance(expected, Graph)
        assert sorted(view.nodes()) == sorted(expected.nodes())
        assert view.number_of_edges() == expected.number_of_edges()
        for node in expected.nodes():
            assert sorted(view.neighbors(node)) == sorted(
                expected.neighbors(node)
            )
            assert view.degree(node) == expected.degree(node)

    @pytest.mark.parametrize("n,k", SPOT)
    def test_algorithms_match(self, n, k):
        oracle = ImplicitJDOracle(n, k)
        schedule = FailureSchedule().crash(n // 2)
        view = survivors(oracle, schedule)
        expected = survivors(materialize(oracle), schedule)
        source = next(iter(view.iter_nodes()))
        assert bfs_levels(view, source) == bfs_levels(expected, source)
        if is_connected(expected):
            assert diameter(view) == diameter(expected)
        flood_view = round_flood(view, source)
        flood_graph = round_flood(expected, source)
        assert flood_view.covered == flood_graph.covered
        assert flood_view.messages == flood_graph.messages
        assert flood_view.rounds == flood_graph.rounds


class TestRoundFloodUnderFailures:
    """The rounds engine vs the event simulator: same schedule, same result."""

    @pytest.mark.parametrize("n,k", CENSUS)
    def test_parity_with_event_simulator(self, n, k):
        oracle = ImplicitJDOracle(n, k)
        graph = materialize(oracle)
        for schedule in _pinned_schedules(n, k):
            rounds = round_flood(oracle, 0, schedule=schedule)
            event = run_flood(graph, 0, failures=schedule)
            label = (n, k, schedule)
            assert rounds.covered == event.covered, label
            assert rounds.messages == event.messages, label
            assert rounds.completion_time == event.completion_time, label
            assert rounds.alive == event.alive, label
            assert rounds.reachable == event.reachable, label
            assert rounds.delivery_ratio == event.delivery_ratio, label

    @pytest.mark.parametrize("backend", ["implicit", "csr", "dict"])
    def test_parity_across_backends(self, backend):
        n, k = 22, 3
        oracle = ImplicitJDOracle(n, k)
        if backend == "csr":
            oracle = CSRGraph.from_oracle(oracle)
        elif backend == "dict":
            oracle = materialize(oracle)
        graph = materialize(ImplicitJDOracle(n, k))
        schedule = FailureSchedule().crash(5, time=1.0).fail_link(0, 1)
        rounds = round_flood(oracle, 0, schedule=schedule)
        event = run_flood(graph, 0, failures=schedule)
        assert (rounds.covered, rounds.messages, rounds.completion_time) == (
            event.covered,
            event.messages,
            event.completion_time,
        )

    def test_source_crashed_at_start_raises(self):
        oracle = ImplicitJDOracle(10, 3)
        with pytest.raises(SimulationError, match="crashed at start"):
            round_flood(oracle, 0, schedule=FailureSchedule().crash(0))

    def test_invalid_loss_rate_raises(self):
        oracle = ImplicitJDOracle(10, 3)
        with pytest.raises(SimulationError, match="loss_rate"):
            round_flood(oracle, 0, loss_rate=1.5)

    def test_loss_is_seed_stable(self):
        oracle = ImplicitJDOracle(50, 3)
        first = round_flood(oracle, 0, loss_rate=0.3, loss_seed=7)
        again = round_flood(oracle, 0, loss_rate=0.3, loss_seed=7)
        other = round_flood(oracle, 0, loss_rate=0.3, loss_seed=8)
        assert (first.covered, first.messages) == (again.covered, again.messages)
        assert first.covered <= first.reachable == 50
        # a different seed draws a different loss pattern (overwhelmingly)
        assert (first.covered, first.messages, first.round_sizes) != (
            other.covered,
            other.messages,
            other.round_sizes,
        ) or first.covered == 50

    def test_no_failure_schedule_same_as_no_schedule(self):
        oracle = ImplicitJDOracle(22, 3)
        plain = round_flood(oracle, 0)
        empty = round_flood(oracle, 0, schedule=FailureSchedule())
        assert plain.covered == empty.covered == 22
        assert plain.messages == empty.messages


class TestTargetedAttacks:
    @pytest.mark.parametrize("n,k", SPOT)
    def test_plans_stay_within_budget(self, n, k):
        oracle = ImplicitJDOracle(n, k)
        plans = targeted_cut_attacks(oracle)
        assert plans
        for plan in plans:
            assert 1 <= plan.damage <= k - 1

    def test_rejects_non_implicit_backends(self):
        with pytest.raises(GraphError, match="implicit"):
            targeted_cut_attacks(Graph(edges=[(0, 1)]))

    def test_validation_rejects_bad_plans(self):
        oracle = ImplicitJDOracle(10, 3)
        from repro.robustness.attacks import _validate

        with pytest.raises(GraphError, match="damage"):
            _validate(AttackPlan(name="x"), oracle, 2)
        with pytest.raises(GraphError, match="unknown node"):
            _validate(AttackPlan(name="x", crashes=(999,)), oracle, 2)
        with pytest.raises(GraphError, match="non-edge"):
            _validate(
                AttackPlan(name="x", link_kills=((0, 999),)), oracle, 2
            )

    @pytest.mark.parametrize("n,k", SPOT)
    def test_survivors_stay_connected_and_floodable(self, n, k):
        oracle = ImplicitJDOracle(n, k)
        for plan in targeted_cut_attacks(oracle):
            schedule = plan.schedule()
            view = survivors(oracle, schedule)
            source = plan.surviving_source(oracle)
            assert component_size(view, source) == view.num_nodes(), plan.name
            flood = round_flood(oracle, source, schedule=schedule)
            assert flood.fully_covered, plan.name
            assert flood.covered == view.num_nodes(), plan.name


class TestRecertification:
    @pytest.mark.parametrize("n,k", SPOT)
    def test_attacked_survivors_certify_clean(self, n, k):
        oracle = ImplicitJDOracle(n, k)
        for plan in targeted_cut_attacks(oracle):
            view = survivors(oracle, plan.schedule())
            assert recertify_survivors(view, k) == [], plan.name

    def test_large_n_uses_local_witnesses(self):
        oracle = ImplicitJDOracle(3000, 3)
        plan = targeted_cut_attacks(oracle)[0]
        view = survivors(oracle, plan.schedule())
        # exact_limit below n forces the sampled local-cut battery
        assert recertify_survivors(view, 3, exact_limit=64) == []

    def test_detects_underbudget_disconnection(self):
        path = Graph(edges=[(0, 1), (1, 2)])
        view = FaultView(path, down_nodes=[1])
        violations = recertify_survivors(view, 2)
        assert any(v.invariant == "survivor-connectivity" for v in violations)

    def test_tolerates_at_budget_disconnection(self):
        cycle = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        view = FaultView(cycle, down_nodes=[1], killed_links=[(3, 0)])
        # damage == k: a partition is a legitimate outcome, not a bug
        assert recertify_survivors(view, 2) == []

    def test_undamaged_view_delegates_to_base(self):
        oracle = ImplicitJDOracle(22, 3)
        view = FaultView(oracle)
        from repro.robustness.invariants import check_topology_invariants

        assert recertify_survivors(view, 3) == []
        assert check_topology_invariants(view, 3) == []

    def test_degree_floor_violation_detected(self):
        # a star minus its hub's links: leaves keep degree 0 < k−1
        star = Graph(edges=[("hub", i) for i in range(4)])
        view = FaultView(star, killed_links=[("hub", 0)])
        violations = recertify_survivors(view, 2)
        assert any(v.invariant == "survivor-degree" for v in violations)
