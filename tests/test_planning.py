"""Tests for the topology planner."""

import pytest

from repro.core.planning import (
    TopologyPlan,
    nearest_regular_sizes,
    plan_topology,
    required_k,
)
from repro.errors import ConstructionError


class TestRequiredK:
    def test_k_is_failures_plus_one(self):
        assert required_k(1) == 2
        assert required_k(3) == 4

    def test_zero_failures_rejected(self):
        with pytest.raises(ConstructionError):
            required_k(0)


class TestNearestRegularSizes:
    def test_exact_hit_included(self):
        # 10 is a regular point for k=3
        assert 10 in nearest_regular_sizes(10, 3)

    def test_neighbours_of_a_gap(self):
        # 9 is not regular for k=3 (9-6 odd); neighbours 8 and 10 are
        assert nearest_regular_sizes(9, 3) == [8, 10]

    def test_count_respected(self):
        assert len(nearest_regular_sizes(20, 4, count=3)) == 3


class TestPlanTopology:
    def test_basic_plan(self):
        plan = plan_topology(n=60, failures_tolerated=3)
        assert plan.k == 4
        assert plan.n == 60
        assert plan.edges >= 120
        assert plan.expected_diameter <= plan.latency_bound
        assert plan.message_cost_per_broadcast == 2 * plan.edges - 59
        assert "k=4" in plan.summary()

    def test_regular_point_flagged(self):
        plan = plan_topology(n=10, failures_tolerated=2)  # k=3, regular
        assert plan.k_regular
        assert "minimum edges" in plan.summary()

    def test_irregular_point_suggests_neighbours(self):
        plan = plan_topology(n=9, failures_tolerated=2)
        assert not plan.k_regular
        assert plan.nearest_regular_sizes == (8, 10)
        assert "nearest regular sizes" in plan.summary()

    def test_paper_rule_flag(self):
        assert plan_topology(10, 2).paper_rule_applies
        assert not plan_topology(9, 2).paper_rule_applies

    def test_too_few_members(self):
        with pytest.raises(ConstructionError):
            plan_topology(n=4, failures_tolerated=4)

    def test_below_construction_minimum_mentions_complete_graph(self):
        with pytest.raises(ConstructionError) as excinfo:
            plan_topology(n=5, failures_tolerated=2)
        assert "complete graph" in str(excinfo.value)

    def test_latency_budget_honoured(self):
        plan = plan_topology(n=30, failures_tolerated=2, latency_budget_hops=30)
        assert plan.latency_bound <= 30

    def test_latency_budget_violation_raises(self):
        with pytest.raises(ConstructionError) as excinfo:
            plan_topology(n=500, failures_tolerated=2, latency_budget_hops=4)
        assert "bound" in str(excinfo.value)
