"""Tests for the dynamic-membership overlay and churn traces."""

import pytest

from repro.errors import ReproError
from repro.graphs.connectivity import node_connectivity
from repro.graphs.properties import is_k_regular
from repro.overlay.churn import churn_summary, generate_trace, replay
from repro.overlay.membership import LHGOverlay, MembershipError


class TestMembershipBasics:
    def test_k_too_small(self):
        with pytest.raises(MembershipError):
            LHGOverlay(k=1)

    def test_join_accumulates(self):
        overlay = LHGOverlay(k=3)
        for i in range(5):
            overlay.join(i)
        assert overlay.size == 5
        assert overlay.members == [0, 1, 2, 3, 4]

    def test_duplicate_join_rejected(self):
        overlay = LHGOverlay(k=3)
        overlay.join("a")
        with pytest.raises(MembershipError):
            overlay.join("a")

    def test_unknown_leave_rejected(self):
        with pytest.raises(MembershipError):
            LHGOverlay(k=3).leave("ghost")

    def test_leave_shrinks(self):
        overlay = LHGOverlay(k=2)
        for i in range(6):
            overlay.join(i)
        overlay.leave(3)
        assert overlay.size == 5
        assert 3 not in overlay.members


class TestTopologyInvariant:
    def test_bootstrap_phase_complete_graph(self):
        overlay = LHGOverlay(k=3)
        for i in range(4):
            overlay.join(i)
        topo = overlay.topology()
        assert not overlay.in_lhg_regime()
        assert topo.number_of_edges() == 6  # K4

    def test_lhg_regime_connectivity(self):
        overlay = LHGOverlay(k=3)
        for i in range(12):
            overlay.join(i)
        assert overlay.in_lhg_regime()
        assert node_connectivity(overlay.topology()) >= 3

    def test_invariant_across_leaves(self):
        overlay = LHGOverlay(k=3)
        for i in range(15):
            overlay.join(i)
        for victim in (2, 7, 11):
            overlay.leave(victim)
            if overlay.in_lhg_regime():
                assert node_connectivity(overlay.topology()) >= 3

    def test_regular_sizes_stay_regular(self):
        overlay = LHGOverlay(k=3)
        for i in range(8):  # 8 = 2k + (k-1): a K-DIAMOND regular point
            overlay.join(i)
        assert is_k_regular(overlay.topology(), 3)

    def test_topology_is_a_copy(self):
        overlay = LHGOverlay(k=2)
        for i in range(5):
            overlay.join(i)
        topo = overlay.topology()
        topo.remove_node(0)
        assert overlay.topology().has_node(0)


class TestChurnAccounting:
    def test_history_grows(self):
        overlay = LHGOverlay(k=2)
        overlay.join("a")
        overlay.join("b")
        overlay.leave("a")
        assert [c.event for c in overlay.history] == ["join", "join", "leave"]

    def test_cost_fields(self):
        overlay = LHGOverlay(k=2)
        overlay.join("a")
        cost = overlay.join("b")
        assert cost.n_after == 2
        assert cost.edges_added == 1
        assert cost.edges_removed == 0
        assert cost.total_churn == 1

    def test_slots_stable_across_joins(self):
        overlay = LHGOverlay(k=3)
        for i in range(12):
            overlay.join(i)
        before = overlay.slot_assignment()
        overlay.join(12)
        after = overlay.slot_assignment()
        kept = sum(1 for m, s in before.items() if after.get(m) == s)
        # most members keep their slot: churn is incremental, not total
        assert kept >= len(before) // 2


class TestTraces:
    def test_trace_reaches_target(self):
        trace = generate_trace(20, 10, 3, seed=1)
        joins = sum(1 for e in trace if e.kind == "join")
        leaves = sum(1 for e in trace if e.kind == "leave")
        assert joins - leaves >= 2 * 3  # never below 2k
        assert joins + leaves == len(trace)

    def test_trace_deterministic(self):
        a = generate_trace(15, 10, 3, seed=4)
        b = generate_trace(15, 10, 3, seed=4)
        assert a == b

    def test_trace_domain(self):
        with pytest.raises(ReproError):
            generate_trace(10, 4, 3)

    def test_replay_and_summary(self):
        trace = generate_trace(20, 12, 3, seed=2)
        costs = replay(trace, 3)
        assert len(costs) == len(trace)
        mean, p95, worst = churn_summary(costs)
        assert 0 < mean <= p95 <= worst

    def test_summary_empty(self):
        assert churn_summary([]) == (0.0, 0.0, 0)
