"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestBuild:
    def test_build_summary(self, capsys):
        assert main(["build", "10", "3"]) == 0
        out = capsys.readouterr().out
        assert "nodes=10" in out
        assert "jenkins-demers" in out

    def test_build_json(self, capsys):
        assert main(["build", "8", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["nodes"]) == 8

    def test_build_named_rule(self, capsys):
        assert main(["build", "9", "3", "--rule", "k-tree"]) == 0
        assert "k-tree" in capsys.readouterr().out

    def test_infeasible_pair_errors(self, capsys):
        assert main(["build", "5", "3"]) == 2
        assert "error" in capsys.readouterr().err


class TestCheck:
    def test_check_passes(self, capsys):
        assert main(["check", "14", "3"]) == 0
        assert "P1-kappa=ok" in capsys.readouterr().out


class TestFlood:
    def test_flood_reports_coverage(self, capsys):
        assert main(["flood", "12", "3"]) == 0
        out = capsys.readouterr().out
        assert "covered 12/12" in out

    def test_flood_with_crashes(self, capsys):
        assert main(["flood", "14", "3", "--crashes", "2", "--seed", "4"]) == 0
        assert "100.00%" in capsys.readouterr().out


class TestChaos:
    def test_chaos_baseline_all_green(self, capsys):
        assert main(["chaos", "16", "2", "--scenarios", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "invariants all green" in out
        assert "reliable-flood" in out and "arq-reliable-flood" in out

    def test_chaos_recoverable_scenarios_green(self, capsys):
        code = main(
            ["chaos", "16", "2", "--scenarios", "crash-recover", "--seed", "1"]
        )
        assert code == 0
        assert "100.00%" in capsys.readouterr().out  # the ARQ rows

    def test_chaos_unknown_scenario_errors(self, capsys):
        assert main(["chaos", "16", "2", "--scenarios", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestTables:
    def test_coverage_table(self, capsys):
        assert main(["coverage", "3", "--max-n", "10"]) == 0
        out = capsys.readouterr().out
        assert "jenkins-demers" in out
        assert out.count("\n") >= 6

    def test_diameter_table(self, capsys):
        assert main(["diameter", "3", "--max-n", "48"]) == 0
        out = capsys.readouterr().out
        assert "harary-diameter" in out


class TestPaths:
    def test_paths_shows_k_disjoint_routes(self, capsys):
        assert main(["paths", "14", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 node-disjoint paths" in out
        assert "certificate route" in out


class TestSpectral:
    def test_spectral_reports_ratio(self, capsys):
        pytest.importorskip("numpy")
        assert main(["spectral", "30", "4"]) == 0
        out = capsys.readouterr().out
        assert "algebraic connectivity" in out
        assert "ratio" in out


class TestPlan:
    def test_plan_summary(self, capsys):
        assert main(["plan", "60", "3"]) == 0
        out = capsys.readouterr().out
        assert "k=4" in out
        assert "messages/broadcast" in out

    def test_plan_gap_mentions_extension(self, capsys):
        assert main(["plan", "9", "2"]) == 0
        assert "extension rule" in capsys.readouterr().out

    def test_plan_infeasible(self, capsys):
        assert main(["plan", "4", "5"]) == 2
        assert "error" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
