"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main


class TestBuild:
    def test_build_summary(self, capsys):
        assert main(["build", "10", "3"]) == 0
        out = capsys.readouterr().out
        assert "nodes=10" in out
        assert "jenkins-demers" in out

    def test_build_json(self, capsys):
        assert main(["build", "8", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["nodes"]) == 8

    def test_build_named_rule(self, capsys):
        assert main(["build", "9", "3", "--rule", "k-tree"]) == 0
        assert "k-tree" in capsys.readouterr().out

    def test_infeasible_pair_errors(self, capsys):
        assert main(["build", "5", "3"]) == 2
        assert "error" in capsys.readouterr().err


class TestCheck:
    def test_check_passes(self, capsys):
        assert main(["check", "14", "3"]) == 0
        assert "P1-kappa=ok" in capsys.readouterr().out


class TestFlood:
    def test_flood_reports_coverage(self, capsys):
        assert main(["flood", "12", "3"]) == 0
        out = capsys.readouterr().out
        assert "covered 12/12" in out

    def test_flood_with_crashes(self, capsys):
        assert main(["flood", "14", "3", "--crashes", "2", "--seed", "4"]) == 0
        assert "100.00%" in capsys.readouterr().out


class TestChaos:
    def test_chaos_baseline_all_green(self, capsys):
        assert main(["chaos", "16", "2", "--scenarios", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "invariants all green" in out
        assert "reliable-flood" in out and "arq-reliable-flood" in out

    def test_chaos_recoverable_scenarios_green(self, capsys):
        code = main(
            ["chaos", "16", "2", "--scenarios", "crash-recover", "--seed", "1"]
        )
        assert code == 0
        assert "100.00%" in capsys.readouterr().out  # the ARQ rows

    def test_chaos_unknown_scenario_errors(self, capsys):
        assert main(["chaos", "16", "2", "--scenarios", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestSoak:
    """Exit-code contract: 0 SLOs met, 1 SLO violated, 2 usage error."""

    ARGS = ["soak", "14", "3", "--duration", "25", "--seed", "7"]

    def test_clean_soak_exits_zero(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "final state healthy" in out
        assert "latency" in out and "degraded" in out

    def test_forced_burst_recovers_and_exits_zero(self, capsys):
        assert main(self.ARGS + ["--burst", "10:3"]) == 0
        out = capsys.readouterr().out
        assert "1 window(s)" in out  # degradation happened and closed

    def test_json_report_is_machine_readable(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "soak"
        assert payload["final_state"] == "healthy"
        assert payload["latency"]["p99"] >= payload["latency"]["p50"] > 0

    def test_slo_violation_exits_one(self, capsys):
        assert main(self.ARGS + ["--slo-p99", "0.5"]) == 1
        assert "SLO violation" in capsys.readouterr().err

    def test_bad_burst_spec_exits_two(self, capsys):
        assert main(self.ARGS + ["--burst", "oops"]) == 2
        assert "TICK:SIZE" in capsys.readouterr().err

    def test_infeasible_population_exits_two(self, capsys):
        assert main(["soak", "5", "3"]) == 2
        assert "error" in capsys.readouterr().err

    def test_resume_without_checkpoint_exits_two(self, capsys):
        assert main(self.ARGS + ["--resume"]) == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_checkpoint_resume_round_trip(self, tmp_path, capsys):
        journal = tmp_path / "soak.jsonl"
        assert main(self.ARGS + ["--json", "--checkpoint", str(journal)]) == 0
        first = capsys.readouterr().out
        assert (
            main(
                self.ARGS
                + ["--json", "--checkpoint", str(journal), "--resume"]
            )
            == 0
        )
        assert capsys.readouterr().out == first


class TestTables:
    def test_coverage_table(self, capsys):
        assert main(["coverage", "3", "--max-n", "10"]) == 0
        out = capsys.readouterr().out
        assert "jenkins-demers" in out
        assert out.count("\n") >= 6

    def test_diameter_table(self, capsys):
        assert main(["diameter", "3", "--max-n", "48"]) == 0
        out = capsys.readouterr().out
        assert "harary-diameter" in out


class TestPaths:
    def test_paths_shows_k_disjoint_routes(self, capsys):
        assert main(["paths", "14", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 node-disjoint paths" in out
        assert "certificate route" in out


class TestSpectral:
    def test_spectral_reports_ratio(self, capsys):
        pytest.importorskip("numpy")
        assert main(["spectral", "30", "4"]) == 0
        out = capsys.readouterr().out
        assert "algebraic connectivity" in out
        assert "ratio" in out


class TestPlan:
    def test_plan_summary(self, capsys):
        assert main(["plan", "60", "3"]) == 0
        out = capsys.readouterr().out
        assert "k=4" in out
        assert "messages/broadcast" in out

    def test_plan_gap_mentions_extension(self, capsys):
        assert main(["plan", "9", "2"]) == 0
        assert "extension rule" in capsys.readouterr().out

    def test_plan_infeasible(self, capsys):
        assert main(["plan", "4", "5"]) == 2
        assert "error" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestTelemetry:
    def test_chaos_with_telemetry_writes_valid_jsonl(self, tmp_path, capsys):
        from repro import obs

        path = str(tmp_path / "run.jsonl")
        assert (
            main(
                [
                    "chaos",
                    "16",
                    "2",
                    "--scenarios",
                    "baseline",
                    "--telemetry",
                    path,
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "event(s) written" in captured.err
        events = obs.read_jsonl(path)
        assert obs.validate_events(events) == []
        names = {e["name"] for e in events if e["kind"] == "span-open"}
        assert "cli:chaos" in names and "campaign" in names
        # the final metrics snapshot makes the log self-contained
        assert events[-1]["kind"] == "metrics"
        assert events[-1]["name"] == "metrics-snapshot"

    def test_telemetry_output_identical_to_plain_run(self, tmp_path, capsys):
        from repro.exec.cache import GRAPH_CACHE

        def science(text):
            # drop the wall-clock footer ("14 cells in 0.05s ...")
            return [l for l in text.splitlines() if " cells in " not in l]

        argv = ["chaos", "16", "2", "--scenarios", "baseline", "crash-recover"]
        GRAPH_CACHE.clear()
        assert main(argv) == 0
        plain = capsys.readouterr().out
        path = str(tmp_path / "run.jsonl")
        GRAPH_CACHE.clear()
        assert main(argv + ["--telemetry", path]) == 0
        traced = capsys.readouterr().out
        assert science(traced) == science(plain)

    def test_log_json_streams_to_stderr(self, capsys):
        assert main(["build", "10", "3", "--log-json"]) == 0
        err_lines = [
            line
            for line in capsys.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        assert err_lines
        event = json.loads(err_lines[0])
        assert event["name"] == "cli:build"
        assert event["kind"] == "span-open"

    def test_flood_telemetry_counts_network_events(self, tmp_path, capsys):
        from repro import obs

        path = str(tmp_path / "run.jsonl")
        assert main(["flood", "12", "3", "--telemetry", path]) == 0
        events = obs.read_jsonl(path)
        snapshot = events[-1]["attrs"]
        assert snapshot["counters"]["net.send"] > 0
        assert snapshot["counters"]["net.deliver"] > 0

    def test_trace_summary_renders_span_tree(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        main(["diameter", "2", "--max-n", "16", "--telemetry", path])
        capsys.readouterr()
        assert main(["trace", "summary", path]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "cli:diameter" in out
        assert "sweep" in out

    def test_trace_chrome_emits_loadable_json(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        main(["build", "10", "3", "--telemetry", path])
        capsys.readouterr()
        output = str(tmp_path / "out.trace.json")
        assert main(["trace", "chrome", path, "-o", output]) == 0
        with open(output) as handle:
            trace = json.load(handle)
        assert trace["traceEvents"]
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_trace_missing_file_is_a_clean_error(self, capsys):
        assert main(["trace", "summary", "/nonexistent/run.jsonl"]) == 2
        assert "error" in capsys.readouterr().err

    def test_telemetry_buffer_stays_bounded(self, tmp_path, monkeypatch):
        # --telemetry streams through the sink: the in-memory ring must
        # stay under the cap even when the run records far more events
        from repro import cli, obs

        created = []
        real_collector = obs.Collector

        def capturing(*args, **kwargs):
            collector = real_collector(*args, **kwargs)
            created.append(collector)
            return collector

        monkeypatch.setattr(cli, "_TELEMETRY_BUFFER_CAP", 32)
        monkeypatch.setattr(obs, "Collector", capturing)
        path = str(tmp_path / "run.jsonl")
        assert main(["soak", "14", "3", "--duration", "30",
                     "--telemetry", path]) == 0
        (collector,) = created
        assert collector.events_recorded > 32
        assert len(collector.events) <= 32
        events = obs.read_jsonl(path)
        assert len(events) == collector.events_recorded
        assert obs.validate_events(events) == []


class TestLint:
    """Exit-code contract: 0 clean, 1 findings, 2 usage/internal error."""

    SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src", "repro")
    FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", os.path.join(self.FIXTURES, "good")]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", os.path.join(self.FIXTURES, "bad")]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "FORK002" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "/nonexistent/code"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", self.SRC, "--select", "NOPE999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_write_baseline_without_path_exits_two(self, capsys):
        assert main(["lint", self.SRC, "--write-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_json_format_is_machine_readable(self, capsys):
        bad = os.path.join(self.FIXTURES, "bad", "api001_bad.py")
        assert main(["lint", bad, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["API001"] == 3

    def test_src_repro_ships_clean_with_committed_baseline(self, capsys):
        baseline = os.path.join(
            os.path.dirname(os.path.dirname(__file__)), "lint-baseline.json"
        )
        assert main(["lint", self.SRC, "--baseline", baseline]) == 0

    def test_baseline_round_trip_via_cli(self, tmp_path, capsys):
        bad = os.path.join(self.FIXTURES, "bad")
        baseline = str(tmp_path / "bl.json")
        assert main(["lint", bad, "--baseline", baseline, "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", bad, "--baseline", baseline]) == 0
        assert "baselined" in capsys.readouterr().out
