"""Tests for failure schedules and adversaries."""

import pytest

from repro.errors import SimulationError
from repro.flooding.failures import (
    FailureSchedule,
    apply_schedule,
    bisect_groups,
    crash_and_recover,
    crash_before_start,
    flapping_links,
    minimum_cut_attack,
    partition,
    random_crashes,
    random_flapping_links,
    random_link_failures,
    survivors,
    targeted_crashes,
)
from repro.flooding.network import Network
from repro.flooding.simulator import Simulator
from repro.graphs.generators.classic import cycle_graph, star_graph
from repro.graphs.traversal import is_connected


class TestScheduleBuilding:
    def test_chaining(self):
        schedule = FailureSchedule().crash(1).fail_link(2, 3, time=4.0)
        assert schedule.crashed_nodes == {1}
        assert len(schedule.link_failures) == 1

    def test_merged(self):
        a = FailureSchedule().crash(1)
        b = FailureSchedule().crash(2)
        assert a.merged(b).crashed_nodes == {1, 2}

    def test_crash_before_start(self):
        schedule = crash_before_start([3, 4])
        assert all(c.time == 0.0 for c in schedule.crashes)

    def test_duplicate_events_deduped(self):
        schedule = (
            FailureSchedule()
            .crash(1)
            .crash(1)
            .fail_link(2, 3)
            .fail_link(3, 2)  # undirected duplicate
            .recover(1, time=5.0)
            .recover(1, time=5.0)
            .restore_link(2, 3, time=5.0)
            .restore_link(3, 2, time=5.0)
        )
        assert len(schedule.crashes) == 1
        assert len(schedule.link_failures) == 1
        assert len(schedule.recoveries) == 1
        assert len(schedule.link_recoveries) == 1

    def test_same_event_at_different_times_kept(self):
        schedule = FailureSchedule().crash(1, time=0.0).crash(1, time=3.0)
        assert len(schedule.crashes) == 2

    def test_merged_dedupes_and_keeps_recoveries(self):
        a = FailureSchedule().crash(1).fail_link(2, 3).recover(1, time=4.0)
        b = FailureSchedule().crash(1).fail_link(3, 2).restore_link(2, 3, time=4.0)
        union = a.merged(b)
        assert len(union.crashes) == 1
        assert len(union.link_failures) == 1
        assert len(union.recoveries) == 1
        assert len(union.link_recoveries) == 1

    def test_merged_propagates_incomplete_cut(self):
        a = FailureSchedule()
        b = FailureSchedule(incomplete_cut=True)
        assert a.merged(b).incomplete_cut
        assert not a.merged(FailureSchedule()).incomplete_cut


class TestBuilders:
    def test_random_crashes_protect(self):
        g = cycle_graph(10)
        schedule = random_crashes(g, 4, seed=1, protect={0, 1})
        assert len(schedule.crashed_nodes) == 4
        assert not schedule.crashed_nodes & {0, 1}

    def test_random_crashes_deterministic(self):
        g = cycle_graph(10)
        assert (
            random_crashes(g, 3, seed=5).crashed_nodes
            == random_crashes(g, 3, seed=5).crashed_nodes
        )

    def test_random_crashes_too_many(self):
        with pytest.raises(SimulationError):
            random_crashes(cycle_graph(4), 5)

    def test_targeted_hits_highest_degree(self):
        g = star_graph(5)
        schedule = targeted_crashes(g, 1)
        assert schedule.crashed_nodes == {0}

    def test_targeted_respects_protection(self):
        g = star_graph(5)
        schedule = targeted_crashes(g, 1, protect={0})
        assert schedule.crashed_nodes != {0}

    def test_link_failures(self):
        g = cycle_graph(8)
        schedule = random_link_failures(g, 3, seed=2)
        assert len(schedule.link_failures) == 3

    def test_link_failures_too_many(self):
        with pytest.raises(SimulationError):
            random_link_failures(cycle_graph(4), 10)

    def test_minimum_cut_attack_disconnects(self):
        g = cycle_graph(8)
        schedule = minimum_cut_attack(g)
        assert len(schedule.crashed_nodes) == 2
        assert not schedule.incomplete_cut
        assert not is_connected(survivors(g, schedule))

    def test_minimum_cut_attack_flags_protected_subcut(self):
        g = cycle_graph(8)
        full_cut = minimum_cut_attack(g).crashed_nodes
        shielded = next(iter(full_cut))
        schedule = minimum_cut_attack(g, protect={shielded})
        assert schedule.incomplete_cut
        assert shielded not in schedule.crashed_nodes
        assert len(schedule.crashed_nodes) == len(full_cut) - 1


class TestRecoveryBuilders:
    def test_crash_and_recover_pairs_events(self):
        schedule = crash_and_recover([1, 2], crash_at=1.0, recover_at=5.0)
        assert schedule.crashed_nodes == {1, 2}
        assert {r.node for r in schedule.recoveries} == {1, 2}
        assert all(r.time == 5.0 for r in schedule.recoveries)

    def test_crash_and_recover_orders_times(self):
        with pytest.raises(SimulationError):
            crash_and_recover([1], crash_at=5.0, recover_at=5.0)

    def test_partition_cuts_only_cross_links(self):
        g = cycle_graph(6)
        schedule = partition(g, [[0, 1, 2], [3, 4, 5]], at=1.0)
        cut = {frozenset((f.u, f.v)) for f in schedule.link_failures}
        assert cut == {frozenset((2, 3)), frozenset((5, 0))}
        assert not schedule.link_recoveries

    def test_partition_heals_everything(self):
        g = cycle_graph(6)
        schedule = partition(g, [[0, 1, 2], [3, 4, 5]], at=1.0, heal_at=9.0)
        assert len(schedule.link_recoveries) == len(schedule.link_failures)
        assert all(r.time == 9.0 for r in schedule.link_recoveries)

    def test_partition_rejects_overlap_and_bad_heal(self):
        g = cycle_graph(6)
        with pytest.raises(SimulationError):
            partition(g, [[0, 1], [1, 2]])
        with pytest.raises(SimulationError):
            partition(g, [[0, 1], [2, 3]], at=5.0, heal_at=5.0)

    def test_bisect_groups_splits_all_nodes(self):
        g = cycle_graph(8)
        near, far = bisect_groups(g, 0)
        assert sorted(near + far) == g.nodes()
        assert 0 in near and len(near) == 4

    def test_flapping_links_one_cycle(self):
        schedule = flapping_links([(0, 1)], period=10.0, down_for=4.0, start=2.0)
        assert [(f.time) for f in schedule.link_failures] == [2.0]
        assert [(r.time) for r in schedule.link_recoveries] == [6.0]

    def test_flapping_links_multi_cycle(self):
        schedule = flapping_links(
            [(0, 1)], period=10.0, down_for=4.0, start=0.0, cycles=3
        )
        assert [f.time for f in schedule.link_failures] == [0.0, 10.0, 20.0]
        assert [r.time for r in schedule.link_recoveries] == [4.0, 14.0, 24.0]

    def test_flapping_links_validates_timing(self):
        with pytest.raises(SimulationError):
            flapping_links([(0, 1)], period=4.0, down_for=4.0)
        with pytest.raises(SimulationError):
            flapping_links([(0, 1)], period=4.0, down_for=0.0)
        with pytest.raises(SimulationError):
            flapping_links([(0, 1)], period=4.0, down_for=2.0, cycles=0)

    def test_random_flapping_links_seeded(self):
        g = cycle_graph(8)
        a = random_flapping_links(g, 3, period=10.0, down_for=4.0, seed=1)
        b = random_flapping_links(g, 3, period=10.0, down_for=4.0, seed=1)
        assert a.link_failures == b.link_failures
        with pytest.raises(SimulationError):
            random_flapping_links(g, 99, period=10.0, down_for=4.0)


class TestApplication:
    def test_time_zero_applied_immediately(self):
        g = cycle_graph(5)
        sim = Simulator()
        net = Network(g, sim)
        apply_schedule(crash_before_start([2]), net, sim)
        assert not net.is_alive(2)

    def test_timed_crash_fires_later(self):
        g = cycle_graph(5)
        sim = Simulator()
        net = Network(g, sim)
        apply_schedule(FailureSchedule().crash(2, time=3.0), net, sim)
        assert net.is_alive(2)
        sim.run()
        assert not net.is_alive(2)
        assert sim.now == 3.0

    def test_timed_link_failure(self):
        g = cycle_graph(5)
        sim = Simulator()
        net = Network(g, sim)
        apply_schedule(FailureSchedule().fail_link(0, 1, time=2.0), net, sim)
        assert net.is_link_up(0, 1)
        sim.run()
        assert not net.is_link_up(0, 1)

    def test_timed_recovery_fires(self):
        g = cycle_graph(5)
        sim = Simulator()
        net = Network(g, sim)
        schedule = crash_and_recover([2], crash_at=1.0, recover_at=3.0)
        schedule.fail_link(0, 1, time=1.0).restore_link(0, 1, time=3.0)
        apply_schedule(schedule, net, sim)
        sim.run()
        assert net.is_alive(2)
        assert net.is_link_up(0, 1)
        assert sim.now == 3.0

    def test_time_zero_crash_recover_pair_cancels(self):
        g = cycle_graph(5)
        sim = Simulator()
        net = Network(g, sim)
        apply_schedule(FailureSchedule().crash(2).recover(2), net, sim)
        assert net.is_alive(2)

    def test_same_time_crash_beats_delivery_recovery_beats_crash(self):
        # at one instant the order is crash -> recover -> deliveries
        g = cycle_graph(5)
        sim = Simulator()
        net = Network(g, sim)
        schedule = crash_before_start([2]).merged(
            FailureSchedule().recover(2, time=4.0).crash(2, time=4.0)
        )
        apply_schedule(schedule, net, sim)
        sim.run()
        assert net.is_alive(2)


class TestSurvivors:
    def test_removes_crashed_nodes(self):
        g = cycle_graph(6)
        remaining = survivors(g, crash_before_start([0, 3]))
        assert remaining.number_of_nodes() == 4
        assert not is_connected(remaining)

    def test_removes_failed_links(self):
        g = cycle_graph(6)
        schedule = FailureSchedule().fail_link(0, 1).fail_link(3, 4)
        remaining = survivors(g, schedule)
        assert remaining.number_of_edges() == 4

    def test_ignores_unknown_links(self):
        g = cycle_graph(4)
        schedule = FailureSchedule().fail_link(0, 2)  # not an edge
        assert survivors(g, schedule).number_of_edges() == 4

    def test_recovered_node_counts_as_survivor(self):
        g = cycle_graph(6)
        schedule = crash_and_recover([0, 3], crash_at=1.0, recover_at=5.0)
        remaining = survivors(g, schedule)
        assert remaining.number_of_nodes() == 6
        assert is_connected(remaining)

    def test_recovered_link_counts_as_survivor(self):
        g = cycle_graph(6)
        schedule = flapping_links(
            [(0, 1), (3, 4)], period=10.0, down_for=4.0, cycles=2
        )
        assert survivors(g, schedule).number_of_edges() == 6

    def test_final_state_wins_over_history(self):
        g = cycle_graph(6)
        # crashed, recovered, crashed again: down in the final state
        schedule = (
            FailureSchedule().crash(0, time=1.0).recover(0, time=2.0).crash(0, time=3.0)
        )
        assert 0 not in survivors(g, schedule).nodes()
        # tie between last crash and last recovery goes to recovery
        tie = FailureSchedule().crash(1, time=2.0).recover(1, time=2.0)
        assert 1 in survivors(g, tie).nodes()
