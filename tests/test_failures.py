"""Tests for failure schedules and adversaries."""

import pytest

from repro.errors import SimulationError
from repro.flooding.failures import (
    FailureSchedule,
    apply_schedule,
    crash_before_start,
    minimum_cut_attack,
    random_crashes,
    random_link_failures,
    survivors,
    targeted_crashes,
)
from repro.flooding.network import Network
from repro.flooding.simulator import Simulator
from repro.graphs.generators.classic import cycle_graph, star_graph
from repro.graphs.traversal import is_connected


class TestScheduleBuilding:
    def test_chaining(self):
        schedule = FailureSchedule().crash(1).fail_link(2, 3, time=4.0)
        assert schedule.crashed_nodes == {1}
        assert len(schedule.link_failures) == 1

    def test_merged(self):
        a = FailureSchedule().crash(1)
        b = FailureSchedule().crash(2)
        assert a.merged(b).crashed_nodes == {1, 2}

    def test_crash_before_start(self):
        schedule = crash_before_start([3, 4])
        assert all(c.time == 0.0 for c in schedule.crashes)


class TestBuilders:
    def test_random_crashes_protect(self):
        g = cycle_graph(10)
        schedule = random_crashes(g, 4, seed=1, protect={0, 1})
        assert len(schedule.crashed_nodes) == 4
        assert not schedule.crashed_nodes & {0, 1}

    def test_random_crashes_deterministic(self):
        g = cycle_graph(10)
        assert (
            random_crashes(g, 3, seed=5).crashed_nodes
            == random_crashes(g, 3, seed=5).crashed_nodes
        )

    def test_random_crashes_too_many(self):
        with pytest.raises(SimulationError):
            random_crashes(cycle_graph(4), 5)

    def test_targeted_hits_highest_degree(self):
        g = star_graph(5)
        schedule = targeted_crashes(g, 1)
        assert schedule.crashed_nodes == {0}

    def test_targeted_respects_protection(self):
        g = star_graph(5)
        schedule = targeted_crashes(g, 1, protect={0})
        assert schedule.crashed_nodes != {0}

    def test_link_failures(self):
        g = cycle_graph(8)
        schedule = random_link_failures(g, 3, seed=2)
        assert len(schedule.link_failures) == 3

    def test_link_failures_too_many(self):
        with pytest.raises(SimulationError):
            random_link_failures(cycle_graph(4), 10)

    def test_minimum_cut_attack_disconnects(self):
        g = cycle_graph(8)
        schedule = minimum_cut_attack(g)
        assert len(schedule.crashed_nodes) == 2
        assert not is_connected(survivors(g, schedule))


class TestApplication:
    def test_time_zero_applied_immediately(self):
        g = cycle_graph(5)
        sim = Simulator()
        net = Network(g, sim)
        apply_schedule(crash_before_start([2]), net, sim)
        assert not net.is_alive(2)

    def test_timed_crash_fires_later(self):
        g = cycle_graph(5)
        sim = Simulator()
        net = Network(g, sim)
        apply_schedule(FailureSchedule().crash(2, time=3.0), net, sim)
        assert net.is_alive(2)
        sim.run()
        assert not net.is_alive(2)
        assert sim.now == 3.0

    def test_timed_link_failure(self):
        g = cycle_graph(5)
        sim = Simulator()
        net = Network(g, sim)
        apply_schedule(FailureSchedule().fail_link(0, 1, time=2.0), net, sim)
        assert net.is_link_up(0, 1)
        sim.run()
        assert not net.is_link_up(0, 1)


class TestSurvivors:
    def test_removes_crashed_nodes(self):
        g = cycle_graph(6)
        remaining = survivors(g, crash_before_start([0, 3]))
        assert remaining.number_of_nodes() == 4
        assert not is_connected(remaining)

    def test_removes_failed_links(self):
        g = cycle_graph(6)
        schedule = FailureSchedule().fail_link(0, 1).fail_link(3, 4)
        remaining = survivors(g, schedule)
        assert remaining.number_of_edges() == 4

    def test_ignores_unknown_links(self):
        g = cycle_graph(4)
        schedule = FailureSchedule().fail_link(0, 2)  # not an edge
        assert survivors(g, schedule).number_of_edges() == 4
