"""Unit tests for the classic Harary graph H(k, n) — the paper's baseline.

Cross-validated against networkx's implementation where available.
"""

import math

import pytest

from repro.errors import GeneratorParameterError
from repro.graphs.generators.harary import (
    harary_diameter_estimate,
    harary_graph,
    harary_minimum_edges,
)
from repro.graphs.connectivity import edge_connectivity, node_connectivity
from repro.graphs.minimality import is_link_minimal
from repro.graphs.nxcompat import to_networkx
from repro.graphs.traversal import diameter

networkx = pytest.importorskip("networkx")

CASES = [(2, 5), (2, 8), (3, 8), (3, 9), (4, 10), (4, 11), (5, 11), (5, 12), (6, 14), (7, 15)]


class TestEdgeCount:
    @pytest.mark.parametrize("k,n", CASES)
    def test_exactly_harary_minimum(self, k, n):
        g = harary_graph(k, n)
        assert g.number_of_edges() == harary_minimum_edges(k, n)

    def test_minimum_formula(self):
        assert harary_minimum_edges(3, 8) == 12
        assert harary_minimum_edges(3, 9) == math.ceil(27 / 2)

    def test_minimum_domain(self):
        with pytest.raises(GeneratorParameterError):
            harary_minimum_edges(3, 3)


class TestConnectivity:
    @pytest.mark.parametrize("k,n", CASES)
    def test_exactly_k_connected(self, k, n):
        g = harary_graph(k, n)
        assert node_connectivity(g) == k
        assert edge_connectivity(g) == k

    @pytest.mark.parametrize("k,n", [(3, 8), (4, 9), (5, 11)])
    def test_link_minimal(self, k, n):
        assert is_link_minimal(harary_graph(k, n), k)


class TestDegrees:
    def test_even_k_regular(self):
        g = harary_graph(4, 9)
        assert g.regular_degree() == 4

    def test_odd_k_even_n_regular(self):
        g = harary_graph(3, 8)
        assert g.regular_degree() == 3

    def test_odd_k_odd_n_one_heavy_node(self):
        g = harary_graph(3, 9)
        degrees = sorted(g.degrees().values())
        assert degrees == [3] * 8 + [4]


class TestSpecialCases:
    def test_k1_is_path(self):
        g = harary_graph(1, 5)
        assert g.number_of_edges() == 4
        assert node_connectivity(g) == 1

    def test_k_equals_n_minus_1_is_complete(self):
        g = harary_graph(4, 5)
        assert g.number_of_edges() == 10

    def test_k2_is_cycle(self):
        g = harary_graph(2, 7)
        assert g.regular_degree() == 2
        assert diameter(g) == 3

    def test_domain(self):
        with pytest.raises(GeneratorParameterError):
            harary_graph(0, 5)
        with pytest.raises(GeneratorParameterError):
            harary_graph(5, 5)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("k,n", CASES)
    def test_connectivity_matches_networkx(self, k, n):
        ours = harary_graph(k, n)
        nx_graph = to_networkx(ours)
        assert networkx.node_connectivity(nx_graph) == k
        assert networkx.edge_connectivity(nx_graph) == k

    @pytest.mark.parametrize("k,n", [(4, 16), (4, 32), (6, 24)])
    def test_same_shape_as_networkx_hkn(self, k, n):
        if not hasattr(networkx, "hkn_harary_graph"):
            pytest.skip("networkx too old for hkn_harary_graph")
        theirs = networkx.hkn_harary_graph(k, n)
        ours = harary_graph(k, n)
        assert ours.number_of_edges() == theirs.number_of_edges()
        assert diameter(ours) == networkx.diameter(theirs)


class TestLinearDiameter:
    def test_diameter_grows_linearly(self):
        k = 4
        diameters = [diameter(harary_graph(k, n)) for n in (16, 32, 64, 128)]
        # doubling n roughly doubles the diameter
        for small, large in zip(diameters, diameters[1:]):
            assert large >= 1.6 * small

    def test_estimate_tracks_reality(self):
        for k, n in [(4, 32), (4, 64), (6, 60)]:
            real = diameter(harary_graph(k, n))
            estimate = harary_diameter_estimate(k, n)
            assert abs(estimate - real) <= max(2, 0.5 * real)
