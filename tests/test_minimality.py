"""Unit tests for link-minimality (LHG Property 3) checks."""

import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.generators.classic import complete_graph, cycle_graph
from repro.graphs.generators.harary import harary_graph
from repro.graphs.minimality import (
    excess_edges_over_harary_bound,
    has_degree_witness_minimality,
    is_link_minimal,
    minimality_report,
    redundant_edges,
)


class TestExactMinimality:
    def test_cycle_is_minimal(self):
        assert is_link_minimal(cycle_graph(7), 2)

    def test_cycle_with_chord_not_minimal(self):
        g = cycle_graph(6)
        g.add_edge(0, 3)
        assert not is_link_minimal(g, 2)
        assert redundant_edges(g, 2) != []

    def test_harary_graphs_minimal(self):
        for k, n in [(3, 8), (4, 9), (5, 12)]:
            assert is_link_minimal(harary_graph(k, n), k)

    def test_complete_graph_minimal_at_full_k(self):
        # K_5 is 4-connected and removing any edge drops kappa to 3.
        assert is_link_minimal(complete_graph(5), 4)
        assert not is_link_minimal(complete_graph(5), 3)

    def test_infers_k_when_omitted(self):
        assert is_link_minimal(cycle_graph(5))

    def test_disconnected_not_minimal(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        assert not is_link_minimal(g)

    def test_empty_graph_trivially_minimal(self):
        assert is_link_minimal(Graph(nodes=[0, 1]))

    def test_redundant_edges_identifies_the_chord(self):
        g = cycle_graph(6)
        g.add_edge(0, 3)
        extras = redundant_edges(g, 2)
        assert {tuple(sorted(e)) for e in extras} == {(0, 3)}


class TestDegreeWitness:
    def test_witness_on_regular_graph(self):
        assert has_degree_witness_minimality(cycle_graph(9), 2)

    def test_witness_fails_on_chord(self):
        g = cycle_graph(6)
        g.add_edge(0, 3)
        assert not has_degree_witness_minimality(g, 2)

    def test_witness_accepts_one_endpoint_at_k(self):
        # Star: center has high degree but every edge touches a leaf (deg 1).
        g = Graph(edges=[(0, i) for i in range(1, 5)])
        assert has_degree_witness_minimality(g, 1)

    def test_invalid_k_rejected(self):
        with pytest.raises(GraphError):
            has_degree_witness_minimality(cycle_graph(4), 0)

    def test_report_prefers_fast_path(self):
        minimal, how = minimality_report(cycle_graph(8), 2)
        assert minimal and how == "degree-witness"

    def test_report_falls_back(self):
        g = cycle_graph(6)
        g.add_edge(0, 3)
        minimal, how = minimality_report(g, 2)
        assert not minimal and how == "exhaustive"


class TestHararyBound:
    def test_harary_graph_has_zero_excess(self):
        for k, n in [(3, 8), (4, 10), (5, 11)]:
            assert excess_edges_over_harary_bound(harary_graph(k, n), k) == 0

    def test_positive_excess(self):
        g = cycle_graph(6)
        g.add_edge(0, 3)
        assert excess_edges_over_harary_bound(g, 2) == 1

    def test_domain_check(self):
        with pytest.raises(GraphError):
            excess_edges_over_harary_bound(complete_graph(3), 3)
