"""Integration tests for the one-call experiment runners."""

import pytest

from repro.core.existence import build_lhg
from repro.flooding.experiments import repeat_runs, run_flood, run_gossip, run_treecast
from repro.flooding.failures import minimum_cut_attack, random_crashes


class TestFloodGuarantees:
    """The paper's headline behavioural claims as executable assertions."""

    @pytest.mark.parametrize("n,k", [(14, 3), (20, 4), (13, 3)])
    def test_full_coverage_under_any_k_minus_1_random_crashes(self, n, k):
        graph, _ = build_lhg(n, k)
        source = graph.nodes()[0]
        for seed in range(15):
            schedule = random_crashes(graph, k - 1, seed=seed, protect={source})
            result = run_flood(graph, source, failures=schedule)
            assert result.reachable == result.alive  # graph stayed connected
            assert result.fully_covered

    def test_minimum_cut_attack_partitions_at_k(self):
        graph, _ = build_lhg(14, 3)
        schedule = minimum_cut_attack(graph)
        assert len(schedule.crashed_nodes) == 3
        source = next(
            v for v in graph.nodes() if v not in schedule.crashed_nodes
        )
        result = run_flood(graph, source, failures=schedule)
        # k crashes CAN partition: reachable < alive, but flooding still
        # covers the whole reachable side
        assert result.reachable < result.alive
        assert result.fully_covered

    def test_link_failures_tolerated(self):
        from repro.flooding.failures import random_link_failures

        graph, _ = build_lhg(20, 4)
        source = graph.nodes()[0]
        for seed in range(10):
            schedule = random_link_failures(graph, 3, seed=seed)
            result = run_flood(graph, source, failures=schedule)
            assert result.fully_covered


class TestRepeatRuns:
    def test_aggregates_count(self):
        graph, _ = build_lhg(12, 3)
        source = graph.nodes()[0]
        agg = repeat_runs(run_flood, graph, source, None, 5)
        assert agg.runs == 5
        assert agg.mean_delivery_ratio() == 1.0

    def test_schedule_factory_receives_seed(self):
        graph, _ = build_lhg(12, 3)
        source = graph.nodes()[0]
        seeds_seen = []

        def factory(seed):
            seeds_seen.append(seed)
            return random_crashes(graph, 1, seed=seed, protect={source})

        repeat_runs(run_flood, graph, source, factory, 4)
        assert seeds_seen == [0, 1, 2, 3]

    def test_gossip_gets_fresh_seed_per_run(self):
        graph, _ = build_lhg(20, 3)
        source = graph.nodes()[0]
        agg = repeat_runs(
            run_gossip, graph, source, None, 3, fanout=1, rounds=3
        )
        # different seeds -> usually different coverage; at minimum runs recorded
        assert agg.runs == 3


class TestBaselineContrast:
    def test_treecast_fragile_flood_robust(self):
        graph, _ = build_lhg(24, 3)
        source = graph.nodes()[0]

        def schedule(seed):
            return random_crashes(graph, 2, seed=seed, protect={source})

        flood = repeat_runs(run_flood, graph, source, schedule, 15)
        tree = repeat_runs(run_treecast, graph, source, schedule, 15)
        assert flood.min_delivery_ratio() == 1.0
        assert tree.min_delivery_ratio() < 1.0

    def test_gossip_costs_more_messages(self):
        graph, _ = build_lhg(30, 3)
        source = graph.nodes()[0]
        flood = run_flood(graph, source)
        gossip = run_gossip(graph, source, fanout=2, rounds=10, seed=0)
        assert gossip.messages > 2 * flood.messages
