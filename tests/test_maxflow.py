"""Unit tests for the Dinic max-flow implementation."""

import pytest

from repro.errors import GraphError
from repro.graphs.maxflow import (
    FlowNetwork,
    edge_disjoint_flow_network,
    node_disjoint_flow_network,
)


class TestFlowNetworkBasics:
    def test_single_arc(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 3)
        assert net.max_flow("s", "t") == 3

    def test_series_bottleneck(self):
        net = FlowNetwork()
        net.add_arc("s", "a", 5)
        net.add_arc("a", "t", 2)
        assert net.max_flow("s", "t") == 2

    def test_parallel_arcs_add(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1)
        net.add_arc("s", "t", 1)
        assert net.max_flow("s", "t") == 2

    def test_diamond(self):
        net = FlowNetwork()
        for tail, head in [("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")]:
            net.add_arc(tail, head, 1)
        assert net.max_flow("s", "t") == 2

    def test_no_path_zero(self):
        net = FlowNetwork()
        net.add_node("s")
        net.add_node("t")
        assert net.max_flow("s", "t") == 0

    def test_augmenting_path_case(self):
        # Classic case that greedy (non-residual) algorithms get wrong.
        net = FlowNetwork()
        for tail, head, cap in [
            ("s", "a", 1),
            ("s", "b", 1),
            ("a", "b", 1),
            ("a", "t", 1),
            ("b", "t", 1),
        ]:
            net.add_arc(tail, head, cap)
        assert net.max_flow("s", "t") == 2

    def test_cutoff_early_exit(self):
        net = FlowNetwork()
        for i in range(5):
            net.add_arc("s", f"m{i}", 1)
            net.add_arc(f"m{i}", "t", 1)
        assert net.max_flow("s", "t", cutoff=2) == 2

    def test_negative_capacity_rejected(self):
        net = FlowNetwork()
        with pytest.raises(GraphError):
            net.add_arc("a", "b", -1)

    def test_same_source_sink_rejected(self):
        net = FlowNetwork()
        net.add_node("s")
        with pytest.raises(GraphError):
            net.max_flow("s", "s")

    def test_unknown_nodes_rejected(self):
        net = FlowNetwork()
        net.add_node("s")
        with pytest.raises(GraphError):
            net.max_flow("s", "nope")


class TestMinCutAndFlows:
    def test_min_cut_reachable_side(self):
        net = FlowNetwork()
        net.add_arc("s", "a", 1)
        net.add_arc("a", "t", 1)
        net.max_flow("s", "t")
        reachable = net.min_cut_reachable("s")
        assert "s" in reachable
        assert "t" not in reachable

    def test_iter_flows_reports_only_used_arcs(self):
        net = FlowNetwork()
        net.add_arc("s", "a", 1)
        net.add_arc("a", "t", 1)
        net.add_arc("s", "b", 1)  # dead end
        net.add_node("b")
        net.max_flow("s", "t")
        flows = {(u, v): f for u, v, f in net.iter_flows()}
        assert flows == {("s", "a"): 1, ("a", "t"): 1}

    def test_flow_conservation(self):
        net = FlowNetwork()
        arcs = [
            ("s", "a", 2),
            ("s", "b", 2),
            ("a", "c", 1),
            ("a", "t", 1),
            ("b", "c", 2),
            ("c", "t", 2),
        ]
        for tail, head, cap in arcs:
            net.add_arc(tail, head, cap)
        total = net.max_flow("s", "t")
        assert total == 3
        balance = {}
        for u, v, f in net.iter_flows():
            balance[u] = balance.get(u, 0) - f
            balance[v] = balance.get(v, 0) + f
        for node, net_flow in balance.items():
            if node == "s":
                assert net_flow == -total
            elif node == "t":
                assert net_flow == total
            else:
                assert net_flow == 0


class TestMengerNetworks:
    def test_edge_disjoint_network_counts_paths(self):
        # Cycle of 4: exactly 2 edge-disjoint paths between opposite nodes.
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        net = edge_disjoint_flow_network(edges)
        assert net.max_flow(0, 2) == 2

    def test_node_disjoint_network_counts_paths(self):
        # K4: kappa(s,t)=3 between any pair.
        nodes = [0, 1, 2, 3]
        edges = [(i, j) for i in nodes for j in nodes if i < j]
        net = node_disjoint_flow_network(nodes, edges, 0, 3)
        assert net.max_flow(("src", 0), ("dst", 3)) == 3

    def test_node_split_counts_adjacent_pair(self):
        # Path 0-1-2: only one internally disjoint path from 0 to 2.
        net = node_disjoint_flow_network([0, 1, 2], [(0, 1), (1, 2)], 0, 2)
        assert net.max_flow(("src", 0), ("dst", 2)) == 1
