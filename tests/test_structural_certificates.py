"""Structural certificates cross-checked against the exact Dinic checkers.

The certificates replace O(k·n·m) max-flow verification at scale, so
their verdicts must be *provably* trustworthy: over the small-(n, k)
census — where the exact checkers are affordable — every conclusive
witness must agree with :func:`check_lhg`, for every construction rule.
Inconclusive witnesses are allowed to exist (they mean "fall back to
exact"), but never a conclusive wrong answer.
"""

import pytest

from repro.core.certificates import (
    CertificateError,
    PropertyWitness,
    StructuralProofs,
    assemble_structural_proofs,
    structural_proofs,
)
from repro.core.existence import build_lhg
from repro.core.jenkins_demers import jd_feasibility
from repro.core.kdiamond import kdiamond_exists
from repro.core.ktree import ktree_exists
from repro.core.properties import check_lhg
from repro.graphs.implicit import ImplicitJDOracle
from repro.graphs.oracle import materialize
from repro.robustness import check_topology_invariants

JD_CENSUS = [
    (n, k)
    for k in range(2, 6)
    for n in range(2 * k, 2 * k + 16)
    if jd_feasibility(n, k) is not None
]

RULE_CENSUS = [
    (n, k, rule)
    for k in range(2, 5)
    for n in range(2 * k, 2 * k + 12)
    for rule, exists in (
        ("k-tree", ktree_exists(n, k)),
        ("k-diamond", kdiamond_exists(n, k)),
    )
    if exists
]


def _assert_agrees_with_exact(proofs, graph, k):
    report = check_lhg(graph, k)
    exact = {
        "P1": report.node_connected,
        "P2": report.link_connected,
        "P3": report.link_minimal,
        "P4": report.log_diameter,
    }
    for witness in proofs.witnesses:
        assert witness.conclusive, proofs.summary()
        assert witness.holds == exact[witness.property_id], (
            proofs.summary(),
            report.summary(),
        )


class TestAgainstDinic:
    @pytest.mark.parametrize("n,k", JD_CENSUS)
    def test_implicit_jd_proofs_agree(self, n, k):
        oracle = ImplicitJDOracle(n, k)
        _assert_agrees_with_exact(
            oracle.structural_proofs(), materialize(oracle), k
        )

    @pytest.mark.parametrize("n,k,rule", RULE_CENSUS)
    def test_certificate_proofs_agree(self, n, k, rule):
        graph, certificate = build_lhg(n, k, rule=rule)
        proofs = structural_proofs(certificate)
        assert proofs.rule == certificate.rule
        _assert_agrees_with_exact(proofs, graph, k)

    @pytest.mark.parametrize("n,k", [(10, 3), (16, 4)])
    def test_both_certifiers_produce_identical_proofs(self, n, k):
        _, certificate = build_lhg(n, k, rule="jenkins-demers")
        from_cert = structural_proofs(certificate)
        from_oracle = ImplicitJDOracle(n, k).structural_proofs()
        assert from_cert.n == from_oracle.n
        for pid in ("P1", "P2", "P3", "P4"):
            a, b = from_cert.witness(pid), from_oracle.witness(pid)
            assert (a.holds, a.conclusive) == (b.holds, b.conclusive)


class TestWitnessApi:
    def _proofs(self, **overrides):
        kwargs = dict(
            n=10,
            k=3,
            rule="jenkins-demers",
            height=2,
            tree_ok=True,
            tree_detail="test",
            degree_witness_ok=True,
            degree_witness_detail="test",
            num_edges=15,
        )
        kwargs.update(overrides)
        return assemble_structural_proofs(**kwargs)

    def test_all_hold_and_summary(self):
        proofs = self._proofs()
        assert isinstance(proofs, StructuralProofs)
        assert proofs.all_hold and proofs.conclusive
        assert "P1=ok" in proofs.summary()
        payload = proofs.to_dict()
        assert payload["all_hold"] is True
        assert len(payload["witnesses"]) == 4

    def test_witness_lookup(self):
        proofs = self._proofs()
        assert isinstance(proofs.witness("P3"), PropertyWitness)
        with pytest.raises(CertificateError):
            proofs.witness("P9")

    def test_broken_degree_witness_is_inconclusive_for_p3_only(self):
        proofs = self._proofs(degree_witness_ok=False)
        p3 = proofs.witness("P3")
        assert not p3.holds and not p3.conclusive  # fall back, not "fails"
        for pid in ("P1", "P2", "P4"):
            assert proofs.witness(pid).conclusive
        assert not proofs.all_hold
        assert "P3=??" in proofs.summary()

    def test_broken_tree_premise_spoils_everything(self):
        proofs = self._proofs(tree_ok=False)
        assert not proofs.conclusive
        assert all(not w.holds for w in proofs.witnesses)

    def test_vacuous_diameter_budget_at_k2(self):
        # k = 2's budget is n (vacuous): any connected graph fits.
        proofs = self._proofs(n=4, k=2, height=1, num_edges=4)
        assert proofs.witness("P4").holds


class TestTopologyInvariants:
    def test_small_exact_path_clean(self):
        graph, _ = build_lhg(10, 3)
        assert check_topology_invariants(graph, 3) == []

    def test_small_exact_path_catches_damage(self):
        graph, _ = build_lhg(10, 3)
        edge = next(graph.iter_edges())
        graph.remove_edge(*edge)
        violations = check_topology_invariants(graph, 3)
        assert violations
        assert any("P1" in v.invariant for v in violations)

    def test_certificate_path_at_scale(self):
        oracle = ImplicitJDOracle(5000, 3)
        assert check_topology_invariants(oracle, 3) == []

    def test_certificate_argument_path(self):
        graph, certificate = build_lhg(100, 3)
        violations = check_topology_invariants(
            graph, 3, certificate=certificate, exact_limit=10
        )
        assert violations == []

    def test_inconclusive_witness_surfaces_as_violation(self):
        class Shifty:
            def num_nodes(self):
                return 1000

            def degree(self, v):
                return 3

            def neighbors(self, v):
                return []

            def iter_nodes(self):
                return iter(range(1000))

            def structural_proofs(self):
                return assemble_structural_proofs(
                    n=1000,
                    k=3,
                    rule="test",
                    height=5,
                    tree_ok=True,
                    tree_detail="",
                    degree_witness_ok=False,
                    degree_witness_detail="host cluster breaks the witness",
                    num_edges=1500,
                )

        violations = check_topology_invariants(Shifty(), 3, exact_limit=512)
        assert len(violations) == 1
        assert violations[0].invariant == "P3-link-minimality"
        assert "inconclusive" in violations[0].detail

    def test_oracle_materialised_for_exact_path(self):
        oracle = ImplicitJDOracle(10, 3)
        assert check_topology_invariants(oracle, 3) == []
