"""Tests for source-routed and redundant unicast protocols."""

import pytest

from repro.core.existence import build_lhg
from repro.core.routing import menger_witness, tree_route
from repro.errors import ProtocolError
from repro.flooding.experiments import run_redundant_unicast, run_unicast
from repro.flooding.failures import crash_before_start, random_crashes
from repro.flooding.network import Network
from repro.flooding.protocols.unicast import (
    RedundantUnicast,
    RoutedMessage,
    SourceRoutedUnicast,
)
from repro.flooding.simulator import Simulator
from repro.graphs.generators.classic import path_graph


class TestRoutedMessage:
    def test_next_hop_progression(self):
        message = RoutedMessage(path=(0, 1, 2), hop_index=0)
        assert message.next_hop() == 1
        advanced = message.advanced()
        assert advanced.hop_index == 1
        assert advanced.next_hop() == 2
        assert advanced.advanced().next_hop() is None


class TestSourceRouted:
    def test_delivery_along_path(self):
        g = path_graph(5)
        delivered_at, hops = run_unicast(g, [0, 1, 2, 3, 4])
        assert delivered_at == 4.0
        assert hops == 4

    def test_self_delivery(self):
        g = path_graph(2)
        delivered_at, hops = run_unicast(g, [0])
        assert delivered_at == 0.0
        assert hops == 0

    def test_crash_on_path_kills_delivery(self):
        g = path_graph(5)
        delivered_at, hops = run_unicast(
            g, [0, 1, 2, 3, 4], failures=crash_before_start([2])
        )
        assert delivered_at is None
        assert hops < 4

    def test_certificate_route_delivers(self):
        graph, cert = build_lhg(22, 3)
        nodes = graph.nodes()
        path = tree_route(cert, nodes[0], nodes[-1])
        delivered_at, hops = run_unicast(graph, path)
        assert delivered_at == float(len(path) - 1)
        assert hops == len(path) - 1

    def test_empty_path_rejected(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        with pytest.raises(ProtocolError):
            SourceRoutedUnicast(net, [])


class TestRedundant:
    def test_kth_copy_survives_any_k_minus_1_crashes(self):
        graph, cert = build_lhg(20, 4)
        nodes = graph.nodes()
        s, t = nodes[0], nodes[-1]
        paths = menger_witness(graph, cert, s, t)
        interior = [v for p in paths for v in p[1:-1]]
        # crash k-1 arbitrary interior nodes: delivery always succeeds
        for seed in range(12):
            schedule = random_crashes(
                graph, 3, seed=seed, protect={s, t}
            )
            delivered_at, copies, _ = run_redundant_unicast(
                graph, paths, failures=schedule
            )
            assert delivered_at is not None, seed
            assert copies >= 1

    def test_single_path_fails_where_redundant_succeeds(self):
        graph, cert = build_lhg(20, 4)
        nodes = graph.nodes()
        s, t = nodes[0], nodes[-1]
        paths = menger_witness(graph, cert, s, t)
        long_paths = [p for p in paths if len(p) > 2]
        victim_path = long_paths[0]
        schedule = crash_before_start([victim_path[1]])
        single, _ = run_unicast(graph, victim_path, failures=schedule)
        redundant, _, _ = run_redundant_unicast(graph, paths, failures=schedule)
        assert single is None
        assert redundant is not None

    def test_message_cost_is_sum_of_path_lengths(self):
        graph, cert = build_lhg(14, 3)
        nodes = graph.nodes()
        paths = menger_witness(graph, cert, nodes[0], nodes[-1])
        _, copies, messages = run_redundant_unicast(graph, paths)
        assert copies == len([p for p in paths if len(p) > 1])
        assert messages == sum(len(p) - 1 for p in paths)

    def test_mismatched_endpoints_rejected(self):
        sim = Simulator()
        net = Network(path_graph(4), sim)
        with pytest.raises(ProtocolError):
            RedundantUnicast(net, [[0, 1, 2], [0, 1, 3]])

    def test_no_paths_rejected(self):
        sim = Simulator()
        net = Network(path_graph(2), sim)
        with pytest.raises(ProtocolError):
            RedundantUnicast(net, [])
