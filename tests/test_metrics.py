"""Tests for flood metrics and aggregates."""

import pytest

from repro.flooding.metrics import FloodResult, ResultAggregate, reachable_from
from repro.graphs.generators.classic import cycle_graph
from repro.graphs.graph import Graph


def make_result(covered, reachable, alive=None, messages=10, times=None):
    return FloodResult(
        protocol="flood",
        n=10,
        alive=alive if alive is not None else reachable,
        reachable=reachable,
        covered=covered,
        messages=messages,
        completion_time=max(times.values()) if times else None,
        delivery_times=times or {},
    )


class TestFloodResult:
    def test_delivery_ratio(self):
        assert make_result(8, 10).delivery_ratio == 0.8
        assert make_result(10, 10).fully_covered

    def test_zero_reachable_convention(self):
        assert make_result(0, 0).delivery_ratio == 1.0

    def test_absolute_ratio_differs_under_partition(self):
        result = make_result(6, 6, alive=9)
        assert result.delivery_ratio == 1.0
        assert result.absolute_delivery_ratio == pytest.approx(6 / 9)

    def test_latency_percentiles(self):
        times = {i: float(i) for i in range(1, 11)}
        result = make_result(10, 10, times=times)
        assert result.latency_percentile(1.0) == 10.0
        assert result.latency_percentile(0.5) == 5.0
        assert result.mean_latency() == pytest.approx(5.5)

    def test_percentile_empty(self):
        assert make_result(0, 5).latency_percentile(0.9) is None
        assert make_result(0, 5).mean_latency() is None


class TestReachableFrom:
    def test_connected(self):
        g = cycle_graph(5)
        assert reachable_from(g, 0) == set(range(5))

    def test_partitioned(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        assert reachable_from(g, 0) == {0, 1}

    def test_missing_source(self):
        assert reachable_from(cycle_graph(4), 99) == set()


class TestAggregate:
    def test_empty_conventions(self):
        agg = ResultAggregate()
        assert agg.runs == 0
        assert agg.mean_delivery_ratio() == 0.0
        assert agg.mean_completion_time() is None

    def test_statistics(self):
        agg = ResultAggregate()
        agg.add(make_result(10, 10, messages=10, times={1: 2.0}))
        agg.add(make_result(5, 10, messages=20, times={1: 4.0}))
        assert agg.runs == 2
        assert agg.mean_delivery_ratio() == pytest.approx(0.75)
        assert agg.min_delivery_ratio() == pytest.approx(0.5)
        assert agg.full_coverage_fraction() == 0.5
        assert agg.mean_messages() == 15.0
        assert agg.mean_completion_time() == 3.0
        assert agg.max_completion_time() == 4.0
