"""Public-API contract: exports resolve and the README quickstart works."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.graphs",
    "repro.graphs.generators",
    "repro.core",
    "repro.exec",
    "repro.flooding",
    "repro.flooding.protocols",
    "repro.overlay",
    "repro.analysis",
    "repro.robustness",
    "repro.obs",
]


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), package_name
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_is_sorted_unique(self, package_name):
        package = importlib.import_module(package_name)
        exported = list(package.__all__)
        assert exported == sorted(set(exported), key=str.lower) or exported == sorted(
            set(exported)
        ), f"{package_name}.__all__ is not sorted/unique"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_execution_surface_is_public(self):
        # the engine + campaign facade promoted to the top level
        for name in (
            "ChaosCampaign",
            "ExperimentSpec",
            "ResilienceMatrix",
            "RunSummary",
            "TopologySpec",
            "WorkerPool",
            "build_lhg_cached",
            "run_experiment",
            "standard_protocols",
            "standard_scenarios",
        ):
            assert name in repro.__all__, name
            assert hasattr(repro, name), name

    def test_run_experiment_quickstart(self):
        # the parallel-usage snippet in the README quickstart
        from repro import ExperimentSpec, WorkerPool, build_lhg, run_experiment

        graph, _ = build_lhg(n=24, k=3)
        specs = [
            ExperimentSpec(
                protocol="flood", graph=graph, source=graph.nodes()[0], seed=s
            )
            for s in range(4)
        ]
        results = WorkerPool(workers=2).map(run_experiment, specs)
        assert results == [run_experiment(spec) for spec in specs]
        assert all(summary.result.fully_covered for summary in results)


class TestReadmeQuickstart:
    def test_quickstart_snippet_verbatim(self):
        from repro import build_lhg, check_lhg, run_flood

        graph, certificate = build_lhg(n=100, k=4)
        report = check_lhg(graph, k=4)
        assert report.is_lhg

        from repro.flooding import random_crashes

        source = graph.nodes()[0]
        crashes = random_crashes(graph, 3, seed=1, protect={source})
        result = run_flood(graph, source, failures=crashes)
        assert result.fully_covered
        assert result.completion_time is not None
        assert result.messages > 0

    def test_tutorial_headline_numbers(self):
        # the numbers quoted in docs/tutorial.md §1
        from repro import build_lhg, harary_graph
        from repro.graphs.traversal import diameter

        lhg, _ = build_lhg(n=100, k=4)
        assert lhg.number_of_edges() == 204  # Harary minimum 200 + 4 added-leaf edges
        assert diameter(lhg) == 6
        assert diameter(harary_graph(4, 100)) == 25
