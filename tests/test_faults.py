"""Tests for the pluggable per-link message-fault models."""

import pytest

from repro.errors import SimulationError
from repro.flooding.faults import (
    PERFECT_LINK,
    FaultModel,
    LinkFaultProfile,
    RandomFaultModel,
    lossy_links,
    noisy_links,
)
from repro.flooding.network import Network, NodeApi, Protocol
from repro.flooding.simulator import Simulator
from repro.graphs.generators.classic import path_graph


class Recorder(Protocol):
    def __init__(self):
        self.messages = []

    def on_message(self, node, payload, sender, api):
        self.messages.append((node, payload, sender, api.now))


class TestLinkFaultProfile:
    def test_defaults_are_perfect(self):
        assert PERFECT_LINK.drop == 0.0
        assert PERFECT_LINK.duplicate == 0.0
        assert PERFECT_LINK.reorder == 0.0

    @pytest.mark.parametrize("name", ["drop", "duplicate", "reorder"])
    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_probability_domain(self, name, bad):
        with pytest.raises(SimulationError):
            LinkFaultProfile(**{name: bad})

    def test_negative_reorder_delay_rejected(self):
        with pytest.raises(SimulationError):
            LinkFaultProfile(reorder=0.5, reorder_delay=-1.0)


class TestFaultModelContract:
    def test_base_model_is_perfect(self):
        assert FaultModel().copies(0, 1) == [0.0]

    def test_perfect_profile_delivers_once(self):
        model = RandomFaultModel(seed=1)
        assert all(model.copies(0, 1) == [0.0] for _ in range(50))

    def test_full_drop_is_capped_below_one(self):
        # drop=1.0 is rejected; near-1 drops almost everything
        model = lossy_links(0.999, seed=1)
        fates = [model.copies(0, 1) for _ in range(200)]
        assert sum(1 for f in fates if f == []) >= 195

    def test_duplicate_yields_two_copies(self):
        model = noisy_links(duplicate=0.999, seed=2)
        assert all(len(model.copies(0, 1)) == 2 for _ in range(20))

    def test_reorder_yields_extra_delay(self):
        model = noisy_links(reorder=0.999, reorder_delay=3.5, seed=3)
        assert all(model.copies(0, 1) == [3.5] for _ in range(20))

    def test_seeded_sequence_deterministic(self):
        a = noisy_links(drop=0.3, duplicate=0.3, reorder=0.3, seed=7)
        b = noisy_links(drop=0.3, duplicate=0.3, reorder=0.3, seed=7)
        assert [a.copies(0, 1) for _ in range(100)] == [
            b.copies(0, 1) for _ in range(100)
        ]

    def test_different_seeds_differ(self):
        a = [lossy_links(0.5, seed=1).copies(0, 1) for _ in range(50)]
        b = [lossy_links(0.5, seed=2).copies(0, 1) for _ in range(50)]
        assert a != b


class TestPerLinkOverrides:
    def test_override_is_undirected(self):
        dead = LinkFaultProfile(drop=0.999)
        model = RandomFaultModel(per_link={(0, 1): dead}, seed=0)
        assert model.profile_for(0, 1) is dead
        assert model.profile_for(1, 0) is dead
        assert model.profile_for(1, 2) is model.profile

    def test_only_overridden_link_drops(self):
        dead = LinkFaultProfile(drop=0.999)
        model = RandomFaultModel(per_link={(0, 1): dead}, seed=4)
        assert [] in [model.copies(0, 1) for _ in range(50)]
        assert all(model.copies(1, 2) == [0.0] for _ in range(50))


class TestNetworkIntegration:
    def _run(self, model, count=30):
        sim = Simulator()
        net = Network(path_graph(2), sim, fault_model=model)
        recorder = Recorder()
        net.attach(recorder, start_nodes=[])
        for i in range(count):
            sim.schedule(float(i), lambda i=i: NodeApi(net, 0).send(1, i))
        sim.run()
        return net, recorder

    def test_dropping_model_records_fault_drops(self):
        net, recorder = self._run(lossy_links(0.999, seed=1))
        assert len(recorder.messages) <= 1
        assert net.stats.messages_dropped >= 29
        # drops still count as sent: the sender paid for them
        assert net.stats.messages_sent == 30

    def test_duplicating_model_delivers_twice(self):
        net, recorder = self._run(noisy_links(duplicate=0.999, seed=2), count=10)
        assert len(recorder.messages) == 20
        assert net.stats.messages_delivered == 20

    def test_reordering_model_lets_later_messages_overtake(self):
        # only message 0 is reordered (+5 delay) → it arrives last
        class ReorderFirst(FaultModel):
            def __init__(self):
                self.calls = 0

            def copies(self, u, v):
                self.calls += 1
                return [5.0] if self.calls == 1 else [0.0]

        _, recorder = self._run(ReorderFirst(), count=3)
        assert [payload for (_, payload, _, _) in recorder.messages] == [1, 2, 0]

    def test_negative_fault_delay_rejected(self):
        class Broken(FaultModel):
            def copies(self, u, v):
                return [-1.0]

        sim = Simulator()
        net = Network(path_graph(2), sim, fault_model=Broken())
        net.attach(Recorder(), start_nodes=[])
        with pytest.raises(SimulationError):
            NodeApi(net, 0).send(1, "x")
