"""Unit tests for random graph generators (seeded determinism throughout)."""

import pytest

from repro.errors import GeneratorParameterError
from repro.graphs.generators.random import (
    connected_gnp_graph,
    gnp_random_graph,
    random_hamiltonian_expander,
    random_k_out_graph,
    random_regular_graph,
    random_tree,
    sample_failure_set,
)
from repro.graphs.traversal import connected_components, is_connected


class TestGnp:
    def test_extremes(self):
        assert gnp_random_graph(10, 0.0, seed=1).number_of_edges() == 0
        assert gnp_random_graph(10, 1.0, seed=1).number_of_edges() == 45

    def test_deterministic(self):
        assert gnp_random_graph(15, 0.3, seed=7) == gnp_random_graph(15, 0.3, seed=7)

    def test_seed_matters(self):
        assert gnp_random_graph(15, 0.3, seed=7) != gnp_random_graph(15, 0.3, seed=8)

    def test_domain(self):
        with pytest.raises(GeneratorParameterError):
            gnp_random_graph(5, 1.5)
        with pytest.raises(GeneratorParameterError):
            gnp_random_graph(-1, 0.5)

    def test_connected_variant(self):
        g = connected_gnp_graph(20, 0.3, seed=0)
        assert is_connected(g)

    def test_connected_variant_gives_up(self):
        with pytest.raises(GeneratorParameterError):
            connected_gnp_graph(30, 0.0, seed=0, max_tries=3)


class TestRandomRegular:
    @pytest.mark.parametrize("d,n", [(2, 8), (3, 10), (4, 9), (5, 12)])
    def test_degree_exact(self, d, n):
        g = random_regular_graph(d, n, seed=3)
        assert g.regular_degree() == d

    def test_parity_rejected(self):
        with pytest.raises(GeneratorParameterError):
            random_regular_graph(3, 7)

    def test_degree_too_large_rejected(self):
        with pytest.raises(GeneratorParameterError):
            random_regular_graph(8, 8)

    def test_zero_degree(self):
        g = random_regular_graph(0, 5)
        assert g.number_of_edges() == 0

    def test_deterministic(self):
        assert random_regular_graph(3, 12, seed=5) == random_regular_graph(3, 12, seed=5)


class TestRandomTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 40])
    def test_is_tree(self, n):
        g = random_tree(n, seed=2)
        assert g.number_of_nodes() == n
        assert g.number_of_edges() == max(0, n - 1)
        assert is_connected(g)

    def test_deterministic(self):
        assert random_tree(20, seed=9) == random_tree(20, seed=9)

    def test_domain(self):
        with pytest.raises(GeneratorParameterError):
            random_tree(0)


class TestKOut:
    def test_min_degree_k(self):
        g = random_k_out_graph(20, 3, seed=1)
        assert g.min_degree() >= 3

    def test_domain(self):
        with pytest.raises(GeneratorParameterError):
            random_k_out_graph(5, 5)
        with pytest.raises(GeneratorParameterError):
            random_k_out_graph(1, 1)


class TestHamiltonianExpander:
    def test_regular_2d(self):
        g = random_hamiltonian_expander(15, 3, seed=0)
        assert g.regular_degree() == 6
        assert is_connected(g)

    def test_single_cycle_is_ring(self):
        g = random_hamiltonian_expander(9, 1, seed=4)
        assert g.regular_degree() == 2
        assert len(connected_components(g)) == 1

    def test_domain(self):
        with pytest.raises(GeneratorParameterError):
            random_hamiltonian_expander(5, 3)
        with pytest.raises(GeneratorParameterError):
            random_hamiltonian_expander(2, 1)


class TestFailureSampling:
    def test_respects_exclusions(self):
        chosen = sample_failure_set(list(range(10)), 5, seed=1, exclude={0, 1})
        assert 0 not in chosen and 1 not in chosen
        assert len(set(chosen)) == 5

    def test_too_many_rejected(self):
        with pytest.raises(GeneratorParameterError):
            sample_failure_set([1, 2], 3)

    def test_deterministic(self):
        a = sample_failure_set(list(range(20)), 6, seed=3)
        b = sample_failure_set(list(range(20)), 6, seed=3)
        assert a == b
