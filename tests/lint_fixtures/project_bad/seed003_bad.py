"""SEED003: RNG constructed with no seed at all."""

import random


def sampler() -> float:
    rng = random.Random()
    return rng.random()
