"""API002: __all__ exports a name that is never defined or imported."""

__all__ = ["real_thing", "ghost"]


def real_thing() -> int:
    """Exists."""
    return 1
