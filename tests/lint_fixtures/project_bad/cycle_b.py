"""PROJ001 (half 2): imports cycle_a, which imports us back."""

import cycle_a


def pong() -> str:
    return cycle_a.ping.__name__
