"""ORACLE003: miss path raises bare KeyError instead of NodeNotFoundError."""

from typing import Iterator, List


class StrictOracle:
    def __init__(self, count: int) -> None:
        self._count = count

    def num_nodes(self) -> int:
        return self._count

    def degree(self, node: int) -> int:
        if node >= self._count:
            raise KeyError(node)
        return 2

    def neighbors(self, node: int) -> List[int]:
        return []

    def iter_nodes(self) -> Iterator[int]:
        return iter(range(self._count))
