"""ORACLE001: incomplete surface and incompatible arity."""

from typing import Iterator, List


class MissingIterNodes:
    """Claims the oracle shape (3 of 4 reads) but lacks iter_nodes."""

    def num_nodes(self) -> int:
        return 0

    def degree(self, node: int) -> int:
        return 0

    def neighbors(self, node: int) -> List[int]:
        return []


class BadArity:
    """Full surface, but degree() demands an extra required argument."""

    def num_nodes(self) -> int:
        return 0

    def degree(self, node: int, strict: bool) -> int:
        return 0

    def neighbors(self, node: int) -> List[int]:
        return []

    def iter_nodes(self) -> Iterator[int]:
        return iter(())
