"""API003: a public definition has drifted out of __all__."""

__all__ = ["listed"]


def listed() -> int:
    """Exported."""
    return 1


def drifted() -> int:
    """Public but missing from __all__."""
    return 2
