"""API004: an exported callable without a docstring."""

__all__ = ["undocumented"]


def undocumented() -> int:
    return 1
