"""ORACLE002: a read method mutates instance state."""

from typing import Dict, Iterator, List


class CachingOracle:
    """Memoizes inside neighbors() — readers must be pure views."""

    def __init__(self) -> None:
        self._cache: Dict[int, List[int]] = {}

    def num_nodes(self) -> int:
        return 0

    def degree(self, node: int) -> int:
        return 0

    def neighbors(self, node: int) -> List[int]:
        if node not in self._cache:
            self._cache[node] = [node + 1]
        return self._cache[node]

    def iter_nodes(self) -> Iterator[int]:
        return iter(())
