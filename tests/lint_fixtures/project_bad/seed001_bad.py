"""SEED001: a nondeterministic value reaches the RNG seed directly."""

import os
import random


def build_rng() -> random.Random:
    nonce = os.getpid()
    return random.Random(nonce)
