"""PROJ001 (half 1): imports cycle_b, which imports us back."""

import cycle_b


def ping() -> str:
    return cycle_b.pong()
