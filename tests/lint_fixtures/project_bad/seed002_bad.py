"""SEED002: untraceable provenance at a direct RNG construction."""

import random


def fetch_token(registry: object) -> object:
    """An attribute read the analysis cannot prove deterministic."""
    return registry.token  # type: ignore[attr-defined]


def make(registry: object) -> random.Random:
    return random.Random(fetch_token(registry))
