"""The laundering frame: mixes entropy into a 'derived' seed."""

from tangle.entropy import weak_token


def mint_seed(base: int) -> int:
    """Presents as a pure derivation of ``base``; is not."""
    return (base * 31) ^ weak_token()
