"""The taint source: process-unique "uniqueness" helpers."""

import os


def weak_token() -> int:
    """Looks harmless; actually nondeterministic per process."""
    return os.getpid() ^ 0x5DEECE66D
