"""The sink: an RNG seeded from the laundered value."""

import random

from tangle.mint import mint_seed


def launch(base_seed: int) -> float:
    """SEED001: taint flows entropy.weak_token -> mint_seed -> here."""
    rng = random.Random(mint_seed(base_seed))
    return rng.random()
