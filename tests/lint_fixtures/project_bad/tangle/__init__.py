"""Cross-module seed-laundering corpus: a correct-looking pipeline.

``run.launch`` seeds an RNG from ``mint.mint_seed``, which looks like a
derivation helper but mixes in ``entropy.weak_token`` — wall-clock/pid
entropy three call frames away from the sink.  The whole-program SEED001
rule must report the full taint path across all three modules.
"""
