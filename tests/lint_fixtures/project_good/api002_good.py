"""API002 clean: every export is defined (or imported) in the module."""

import os

__all__ = ["os", "real_thing"]


def real_thing() -> int:
    """Exists and is exported."""
    return 1
