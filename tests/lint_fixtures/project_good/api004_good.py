"""API004 clean: exported callables document their contract."""

__all__ = ["documented"]


def documented() -> int:
    """Return a fixed token; exists to exercise the rule."""
    return 1
