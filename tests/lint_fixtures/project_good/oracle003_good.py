"""ORACLE003 clean: miss paths raise the precise structural error."""

from typing import Iterator, List

from repro.errors import NodeNotFoundError


class PoliteOracle:
    def __init__(self, count: int) -> None:
        self._count = count

    def num_nodes(self) -> int:
        return self._count

    def degree(self, node: int) -> int:
        if node >= self._count:
            raise NodeNotFoundError(node)
        return 2

    def neighbors(self, node: int) -> List[int]:
        if node >= self._count:
            raise NodeNotFoundError(node)
        return []

    def iter_nodes(self) -> Iterator[int]:
        return iter(range(self._count))
