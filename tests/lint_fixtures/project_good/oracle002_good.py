"""ORACLE002 clean: all structure is built at construction time."""

from typing import Dict, Iterator, List


class FrozenOracle:
    def __init__(self, adjacency: Dict[int, List[int]]) -> None:
        self._adjacency = dict(adjacency)

    def num_nodes(self) -> int:
        return len(self._adjacency)

    def degree(self, node: int) -> int:
        return len(self._adjacency[node])

    def neighbors(self, node: int) -> List[int]:
        return list(self._adjacency[node])

    def iter_nodes(self) -> Iterator[int]:
        return iter(sorted(self._adjacency))
