"""ORACLE001 clean: complete surface with protocol-compatible arities."""

from typing import Iterator, List


class CompleteOracle:
    def __init__(self, count: int) -> None:
        self._count = count

    def num_nodes(self) -> int:
        return self._count

    def degree(self, node: int) -> int:
        return 2

    def neighbors(self, node: int, materialize: bool = True) -> List[int]:
        return [node]

    def iter_nodes(self) -> Iterator[int]:
        return iter(range(self._count))
