"""SEED001 clean: the seed is a pure derivation of the base seed."""

import random

from repro.exec.seeding import derive_seed


def build_rng(base_seed: int) -> random.Random:
    return random.Random(derive_seed(base_seed, "build-rng"))
