"""SEED003 clean: every RNG construction passes an explicit seed."""

import random


def sampler(spec: object) -> float:
    rng = random.Random(spec.seed)  # type: ignore[attr-defined]
    return rng.random()
