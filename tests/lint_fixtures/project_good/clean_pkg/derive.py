"""The derivation frame: seeds come from derive_seed, nothing else."""

from repro.exec.seeding import derive_seed


def stage_seed(base: int, stage: str) -> int:
    """A pure function of (base seed, stage label)."""
    return derive_seed(base, "clean-stage", stage)
