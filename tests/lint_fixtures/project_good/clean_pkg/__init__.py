"""Cross-module seed pipeline done right: derive_seed end to end.

Mirror of ``project_bad/tangle``: the same three-frame shape, but every
hop is a pure function of experiment identity, so the whole-program
SEED rules stay silent.
"""
