"""The sink frame: RNG seeded through the derived chain."""

import random

from clean_pkg.derive import stage_seed


class Spec:
    """Stands in for an ExperimentSpec with a declared seed field."""

    seed: int = 7


def run(spec: Spec) -> float:
    rng = random.Random(stage_seed(spec.seed, "flood"))
    return rng.random()
