"""SEED002 clean: opaque provenance declared with a seed-source note."""

import random


def replay(manifest: object) -> random.Random:
    pinned = manifest.run_entry  # repro: seed-source replayed manifest pin
    return random.Random(pinned)
