"""API003 clean: the export list covers every public definition."""

__all__ = ["listed", "also_listed"]


def listed() -> int:
    """Exported."""
    return 1


def also_listed() -> int:
    """Also exported."""
    return 2


def _helper() -> int:
    return 3
