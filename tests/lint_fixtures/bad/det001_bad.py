"""DET001 bad fixture: module-level random calls (never imported)."""

import random
from random import shuffle


def pick(items):
    return random.choice(items)  # DET001: global generator


def jitter():
    return random.random() * 0.5  # DET001


def scramble(items):
    shuffle(items)  # imported from random at module level (DET001 on import)
    return items
