"""DET002 bad fixture: wall-clock reads in a non-allowlisted module."""

import datetime
import time
from time import perf_counter  # DET002 on the import itself


def timestamp():
    return time.time()  # DET002


def measure():
    start = time.monotonic()  # DET002
    return time.monotonic() - start  # DET002


def today():
    return datetime.datetime.now()  # DET002


def default_clock(clock=time.perf_counter):  # DET002: reference, not call
    return clock()
