"""EXC001 bad fixture: handlers that swallow interrupts."""


def drain(queue, handle):
    while True:
        item = queue.get()
        try:
            handle(item)
        except:  # noqa: E722 — EXC001: bare except eats KeyboardInterrupt
            continue


def run_once(task):
    try:
        return task()
    except BaseException:  # EXC001: no re-raise, ^C becomes a return value
        return None
