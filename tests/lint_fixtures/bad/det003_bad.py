"""DET003 bad fixture: set iteration order leaking into ordered output."""


def emit_events(emit):
    pending = {"a", "b", "c"}
    for name in pending:  # DET003: emission order varies per process
        emit(name)


def trace_lines(nodes):
    reached = set(nodes)
    return [f"visited {node}" for node in reached]  # DET003


def as_list(nodes):
    return list(set(nodes))  # DET003: materialises arbitrary order


def union_walk(extra, visit):
    base = {"x", "y"}
    for node in base | extra:  # DET003: union with a known set
        visit(node)
