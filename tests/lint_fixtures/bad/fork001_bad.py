"""FORK001 bad fixture: concurrency primitives built at import time."""

import threading
from concurrent.futures import ThreadPoolExecutor

_LOCK = threading.Lock()  # FORK001: crosses fork() held or not
_POOL = ThreadPoolExecutor(max_workers=2)  # FORK001


class Registry:
    guard = threading.RLock()  # FORK001: class bodies run at import


def locked(fn):
    with _LOCK:
        return fn()
