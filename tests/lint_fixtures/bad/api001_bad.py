"""API001 bad fixture: mutable defaults in public functions."""


def collect(item, bucket=[]):  # API001: shared across calls
    bucket.append(item)
    return bucket


def configure(name, options={}):  # API001
    options.setdefault("name", name)
    return options


def tag(values=set()):  # API001: set() call as default
    return values
