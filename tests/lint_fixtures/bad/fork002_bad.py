"""FORK002 bad fixture: file handles and sockets opened at import time."""

import socket
import tempfile

_LOG = open("/tmp/fork002-fixture.log", "a")  # FORK002
_SOCK = socket.socket()  # FORK002
_SCRATCH = tempfile.NamedTemporaryFile()  # FORK002

try:
    _AUDIT = open("/tmp/fork002-audit.log", "a")  # FORK002: try body runs too
except OSError:
    _AUDIT = None


def log(message):
    _LOG.write(message + "\n")
