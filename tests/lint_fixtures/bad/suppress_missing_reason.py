"""SUP001 bad fixture: suppression comments without the mandatory reason."""

import time


def timestamp():
    return time.time()  # repro: lint-ignore[DET002]


def measure():
    # repro: lint-ignore[DET002]
    return time.monotonic()
