"""PARSE001 bad fixture: deliberately unparsable (never imported)."""


def broken(:
    return None
