"""DET001 good fixture: all randomness flows through a seeded rng."""

import random


def pick(items, seed):
    rng = random.Random(seed)
    return rng.choice(items)


def scramble(items, rng):
    rng.shuffle(items)  # injected rng — the established idiom
    return items


def secure_token():
    return random.SystemRandom().random()  # explicitly non-deterministic
