"""FORK002 good fixture: descriptors opened by the code path that uses them."""


def log(path, message):
    with open(path, "a") as handle:  # opened lazily, closed deterministically
        handle.write(message + "\n")


def connect(host, port):
    import socket

    return socket.create_connection((host, port))


if __name__ == "__main__":
    _DEMO = open("/tmp/fork002-demo.log", "a")  # main-guard: not import time
