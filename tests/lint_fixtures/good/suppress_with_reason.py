"""Suppression good fixture: reasoned ignores silence their findings."""

import time


def profile(fn):
    start = time.perf_counter()  # repro: lint-ignore[DET002] profiling only
    fn()
    return time.perf_counter() - start  # repro: lint-ignore[DET002] profiling only


def boundary(subset):
    # repro: lint-ignore[DET003] order-insensitive sum over the set
    return sum(1 for u in subset & {0, 1, 2})
