"""API001 good fixture: defaults are immutable or None-then-create."""


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def configure(name, options=()):  # immutable default is fine
    merged = dict(options)
    merged.setdefault("name", name)
    return merged


def _internal(scratch=[]):  # private helper: deliberate memo, not public API
    return scratch
