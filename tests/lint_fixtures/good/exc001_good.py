"""EXC001 good fixture: interrupts always have an escape hatch."""

import os


def drain(queue, handle):
    while True:
        item = queue.get()
        try:
            handle(item)
        except (KeyboardInterrupt, SystemExit):
            raise  # interrupts escape the retry loop
        except Exception:
            continue


def child_loop(work):
    while True:
        try:
            work()
        except (KeyboardInterrupt, SystemExit):
            os._exit(1)  # a forked child dies visibly instead
        except BaseException:
            continue


def report_everything(task, report):
    try:
        return task()
    except BaseException as exc:
        report(exc)
        raise  # re-raised: nothing is swallowed
