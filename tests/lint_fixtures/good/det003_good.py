"""DET003 good fixture: set order is neutralised before it can leak."""


def emit_events(emit):
    pending = {"a", "b", "c"}
    for name in sorted(pending):  # deterministic order
        emit(name)


def trace_lines(nodes):
    reached = set(nodes)
    return [f"visited {node}" for node in sorted(reached)]


def as_list(nodes):
    return sorted(set(nodes))


def membership(nodes, probe):
    reached = set(nodes)
    return probe in reached  # membership tests are order-free


def renamed(nodes):
    return {str(node) for node in set(nodes)}  # set -> set keeps no order
