"""DET002 good fixture: time comes from the simulator or an injected clock."""

import time


def timestamp(simulator):
    return simulator.now  # the sim clock, not the wall clock


def measure(clock):
    start = clock()  # injected clock — the caller decides what time is
    return clock() - start


def pause():
    time.sleep(0.01)  # sleeping is not *reading* the clock
