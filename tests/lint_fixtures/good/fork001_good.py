"""FORK001 good fixture: concurrency primitives created lazily."""

import threading


def make_worker(target):
    return threading.Thread(target=target)  # created by the owner, post-fork


class Registry:
    def __init__(self):
        self._guard = threading.Lock()  # per-instance, not import-time

    def locked(self, fn):
        with self._guard:
            return fn()
