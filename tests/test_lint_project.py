"""Tests for the whole-program layer of ``repro.lint``.

Four layers:

* **fixture sweep** — every project rule (SEED/ORACLE/API/PROJ) must
  fire on its ``project_bad`` fixture and stay silent on the matching
  ``project_good`` corpus;
* **taint paths** — the interprocedural SEED001 finding carries the
  full source→sink hop chain, and that chain (notes + fingerprint) is
  stable when the fixture is renumbered;
* **project model** — import graph, cycle detection, re-export
  resolution and the call graph, exercised on a synthetic mini-package;
* **gate semantics** — ``src/repro`` is clean under ``--project``,
  SARIF output is well-formed, and file-scoped suppressions behave.
"""

import json
import os
import shutil

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    LintConfig,
    build_project,
    lint_project,
    render_graph_dot,
    render_graph_json,
    render_sarif,
)

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "lint_fixtures")
PROJECT_BAD = os.path.join(FIXTURES, "project_bad")
PROJECT_GOOD = os.path.join(FIXTURES, "project_good")
REPO_ROOT = os.path.dirname(HERE)
SRC = os.path.join(REPO_ROOT, "src", "repro")

# rule -> basename of the fixture file its finding must anchor to
BAD_ANCHORS = {
    "SEED001": "seed001_bad.py",
    "SEED002": "seed002_bad.py",
    "SEED003": "seed003_bad.py",
    "ORACLE001": "oracle001_bad.py",
    "ORACLE002": "oracle002_bad.py",
    "ORACLE003": "oracle003_bad.py",
    "API002": "api002_bad.py",
    "API003": "api003_bad.py",
    "API004": "api004_bad.py",
    "PROJ001": "cycle_a.py",
}


@pytest.fixture(scope="module")
def bad_result():
    return lint_project([PROJECT_BAD])


@pytest.fixture(scope="module")
def good_result():
    return lint_project([PROJECT_GOOD])


# ----------------------------------------------------------------------
# Fixture sweep
# ----------------------------------------------------------------------


class TestProjectFixtureCorpus:
    @pytest.mark.parametrize("rule", sorted(BAD_ANCHORS))
    def test_rule_fires_on_its_bad_fixture(self, bad_result, rule):
        anchored = [
            f
            for f in bad_result.findings
            if f.rule == rule and os.path.basename(f.path) == BAD_ANCHORS[rule]
        ]
        assert anchored, (
            f"{rule} did not fire on {BAD_ANCHORS[rule]}; fired rules: "
            f"{sorted({f.rule for f in bad_result.findings})}"
        )

    def test_no_unexpected_rules_on_bad_corpus(self, bad_result):
        fired = {f.rule for f in bad_result.findings}
        assert fired == set(BAD_ANCHORS), fired

    def test_interprocedural_seed001_fires_in_tangle(self, bad_result):
        tangle = [
            f
            for f in bad_result.findings
            if f.rule == "SEED001" and os.path.basename(f.path) == "run.py"
        ]
        assert len(tangle) == 1

    def test_good_corpus_is_clean(self, good_result):
        assert good_result.findings == []
        assert good_result.files >= 10


# ----------------------------------------------------------------------
# Taint paths
# ----------------------------------------------------------------------


def _tangle_finding(result):
    for finding in result.findings:
        if finding.rule == "SEED001" and finding.path.endswith("run.py"):
            return finding
    raise AssertionError("tangle SEED001 finding missing")


class TestTaintPaths:
    def test_multi_hop_path_spans_three_files(self, bad_result):
        finding = _tangle_finding(bad_result)
        assert len(finding.hops) >= 3
        basenames = [os.path.basename(path) for path, _, _ in finding.hops]
        # source first, then each laundering frame in call order
        assert basenames == ["entropy.py", "mint.py", "run.py"]
        assert "os.getpid" in finding.hops[0][2]
        assert "weak_token" in finding.hops[1][2]
        assert "mint_seed" in finding.hops[2][2]
        assert "Taint path:" in finding.message

    def test_hop_notes_are_line_free(self, bad_result):
        # stability under renumbering requires the *notes* not to embed
        # line numbers; the line is carried in the hop tuple instead
        for finding in bad_result.findings:
            for path, line, note in finding.hops:
                assert isinstance(line, int) and line > 0
                assert str(line) not in note.split(":")

    def test_path_stable_under_renumbering(self, tmp_path):
        # two copies of the tangle package under a `tests/` anchor (so
        # fingerprint path normalisation makes them comparable), one
        # with comment lines pushed into the source files
        variants = {}
        for variant, padding in (("orig", 0), ("renum", 4)):
            root = tmp_path / variant / "tests" / "tangle"
            shutil.copytree(os.path.join(PROJECT_BAD, "tangle"), root)
            if padding:
                for name in ("entropy.py", "mint.py", "run.py"):
                    target = root / name
                    source = target.read_text(encoding="utf-8")
                    target.write_text(
                        "# padding\n" * padding + source, encoding="utf-8"
                    )
            variants[variant] = _tangle_finding(
                lint_project([str(root.parent)])
            )
        orig, renum = variants["orig"], variants["renum"]
        assert orig.fingerprint == renum.fingerprint
        assert [n for _, _, n in orig.hops] == [n for _, _, n in renum.hops]
        assert renum.line == orig.line + 4
        for (_, before, _), (_, after, _) in zip(orig.hops, renum.hops):
            assert after == before + 4


# ----------------------------------------------------------------------
# Project model: imports, cycles, resolution, call graph
# ----------------------------------------------------------------------


MINI = {
    "mini/__init__.py": (
        '"""Synthetic package."""\n'
        "from mini.core import api_fn\n"
        '__all__ = ["api_fn"]\n'
    ),
    "mini/core.py": (
        '"""Core."""\n'
        '__all__ = ["api_fn"]\n'
        "def _helper() -> int:\n"
        "    return 1\n"
        "def api_fn() -> int:\n"
        '    """Public."""\n'
        "    return _helper()\n"
    ),
    "mini/use.py": (
        '"""Consumer."""\n'
        "from mini.core import api_fn\n"
        "def caller() -> int:\n"
        "    return api_fn()\n"
    ),
    "mini/a.py": '"""Cycle half."""\nimport mini.b\n',
    "mini/b.py": '"""Other half."""\nimport mini.a\n',
}


@pytest.fixture()
def mini_project(tmp_path):
    for relpath, source in MINI.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    project, parse_findings = build_project([str(tmp_path / "mini")])
    assert parse_findings == []
    return project


class TestProjectModel:
    def test_import_edges(self, mini_project):
        assert "mini.core" in mini_project.imports["mini.use"]
        assert "mini.b" in mini_project.imports["mini.a"]
        assert "mini.a" in mini_project.imports["mini.b"]

    def test_cycle_detection(self, mini_project):
        assert ["mini.a", "mini.b"] in mini_project.cycles
        flat = {m for cycle in mini_project.cycles for m in cycle}
        assert "mini.core" not in flat

    def test_resolve_chases_reexports(self, mini_project):
        assert mini_project.resolve("mini", "api_fn") == "mini.core.api_fn"
        assert mini_project.resolve("mini.use", "api_fn") == "mini.core.api_fn"
        assert mini_project.resolve("mini.use", "missing") is None

    def test_call_graph(self, mini_project):
        callers = {
            site.caller
            for site in mini_project.callers_of.get("mini.core.api_fn", [])
        }
        assert "mini.use.caller" in callers
        helpers = {
            site.caller
            for site in mini_project.callers_of.get("mini.core._helper", [])
        }
        assert "mini.core.api_fn" in helpers

    def test_graph_renderers(self, mini_project):
        dot = render_graph_dot(mini_project)
        assert dot.startswith("digraph imports {")
        assert '"mini.a" -> "mini.b"' in dot
        payload = json.loads(render_graph_json(mini_project))
        assert payload["version"] == 1
        assert ["mini.a", "mini.b"] in payload["cycles"]
        assert ["mini.use.caller", "mini.core.api_fn"] in payload["calls"]


# ----------------------------------------------------------------------
# Gate semantics
# ----------------------------------------------------------------------


class TestProjectGate:
    def test_src_repro_is_clean_under_project_lint(self):
        result = lint_project([SRC])
        assert result.findings == [], [f.format() for f in result.findings]

    def test_oracle_backends_conform(self):
        result = lint_project([os.path.join(SRC, "graphs")])
        oracle = [f for f in result.findings if f.rule.startswith("ORACLE")]
        assert oracle == [], [f.format() for f in oracle]

    def test_cli_exit_codes(self, capsys):
        assert cli_main(["lint", "--project", PROJECT_GOOD]) == 0
        assert cli_main(["lint", "--project", PROJECT_BAD]) == 1
        assert cli_main(["lint", "--project", SRC]) == 0
        capsys.readouterr()

    def test_cli_graph_dump(self, capsys):
        assert cli_main(["lint", "--project", "--graph", "json", SRC]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "repro.lint.project" in payload["modules"]
        assert payload["cycles"] == []


class TestSarif:
    def test_sarif_shape(self, bad_result):
        log = json.loads(render_sarif(bad_result))
        assert log["version"] == "2.1.0"
        assert "sarif" in log["$schema"]
        run = log["runs"][0]
        assert len(run["results"]) == len(bad_result.findings)
        driver = run["tool"]["driver"]
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert set(BAD_ANCHORS) <= rule_ids
        for result in run["results"]:
            assert "reproLint/v1" in result["partialFingerprints"]
            location = result["locations"][0]["physicalLocation"]
            assert location["region"]["startLine"] >= 1

    def test_sarif_code_flow_for_taint_path(self, bad_result):
        log = json.loads(render_sarif(bad_result))
        tangle = [
            r
            for r in log["runs"][0]["results"]
            if r["ruleId"] == "SEED001"
            and r["locations"][0]["physicalLocation"]["artifactLocation"][
                "uri"
            ].endswith("run.py")
        ]
        assert len(tangle) == 1
        flow = tangle[0]["codeFlows"][0]["threadFlows"][0]["locations"]
        # three hops plus the sink itself
        assert len(flow) == 4
        uris = [
            step["location"]["physicalLocation"]["artifactLocation"]["uri"]
            for step in flow
        ]
        assert uris[0].endswith("entropy.py")
        assert uris[-1].endswith("run.py")


class TestFileSuppressions:
    def test_file_scoped_suppression(self, tmp_path):
        target = tmp_path / "svc.py"
        target.write_text(
            "# repro: lint-ignore-file[DET003] ordering asserted elsewhere\n"
            "def walk() -> list:\n"
            "    out = []\n"
            '    for item in {"a", "b"}:\n'
            "        out.append(item)\n"
            "    return out\n",
            encoding="utf-8",
        )
        result = lint_project([str(target)])
        assert [f.rule for f in result.findings] == []
        assert {f.rule for f in result.suppressed} == {"DET003"}

    def test_file_suppression_requires_reason(self, tmp_path):
        target = tmp_path / "svc.py"
        target.write_text(
            "# repro: lint-ignore-file[DET003]\n"
            "def walk() -> list:\n"
            '    return [item for item in {"a", "b"}]\n',
            encoding="utf-8",
        )
        result = lint_project([str(target)])
        assert "SUP001" in {f.rule for f in result.findings}

    def test_seed_source_annotation_downgrades(self, tmp_path):
        pkg = tmp_path / "anno"
        pkg.mkdir()
        (pkg / "__init__.py").write_text('"""Pkg."""\n', encoding="utf-8")
        (pkg / "mod.py").write_text(
            '"""Annotated opaque seed."""\n'
            "import random\n"
            "def run(registry: object) -> float:\n"
            "    pinned = registry.token  # repro: seed-source manifest pin\n"
            "    return random.Random(pinned).random()\n",
            encoding="utf-8",
        )
        result = lint_project([str(pkg)])
        seeds = [f for f in result.findings if f.rule.startswith("SEED")]
        assert seeds == [], [f.format() for f in seeds]
