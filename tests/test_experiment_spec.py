"""ExperimentSpec / run_experiment: the unified experiment facade.

The contract under test: every historical runner is a thin shim over
``run_experiment``, so a spec-driven run must produce *exactly* what
the runner call it mirrors produces — same FloodResult, same error
behavior — because the execution engine serializes specs, not runners.
"""

from __future__ import annotations

import pytest

from repro.core.existence import build_lhg
from repro.errors import SimulationError
from repro.flooding import (
    ExperimentSpec,
    FailureSchedule,
    RunSummary,
    experiment_names,
    random_crashes,
    repeat_runs,
    run_arq_flood,
    run_echo,
    run_experiment,
    run_flood,
    run_gossip,
    run_reliable_flood,
    run_treecast,
    run_unicast,
)
from repro.graphs.traversal import shortest_path


@pytest.fixture(scope="module")
def lhg20():
    graph, _ = build_lhg(20, 4)
    return graph


def _crashes(graph, count=3, seed=1):
    source = graph.nodes()[0]
    return random_crashes(graph, count, seed=seed, protect={source})


class TestSpecNormalization:
    def test_params_mapping_becomes_sorted_items(self, lhg20):
        spec = ExperimentSpec(
            protocol="gossip", graph=lhg20, params={"rounds": 4, "fanout": 2}
        )
        assert spec.params == (("fanout", 2), ("rounds", 4))
        assert spec.param("rounds") == 4
        assert spec.param("absent", "d") == "d"
        assert spec.params_dict == {"fanout": 2, "rounds": 4}

    def test_with_params_merges(self, lhg20):
        spec = ExperimentSpec(protocol="gossip", graph=lhg20, params={"fanout": 2})
        updated = spec.with_params(rounds=9)
        assert updated.param("fanout") == 2 and updated.param("rounds") == 9
        assert spec.param("rounds") is None  # original untouched

    def test_equal_specs_compare_equal(self, lhg20):
        a = ExperimentSpec(protocol="flood", graph=lhg20, source=0, seed=3)
        b = ExperimentSpec(
            protocol="flood", graph=lhg20, source=0, seed=3, params={}
        )
        assert a == b

    def test_summary_metric_lookup(self):
        summary = RunSummary(protocol="x", metrics={"hops": 3})
        assert summary.metric("hops") == 3
        assert summary.metric("none", -1) == -1
        assert summary.metrics_dict == {"hops": 3}


class TestDispatch:
    def test_unknown_protocol_raises_with_known_names(self, lhg20):
        spec = ExperimentSpec(protocol="carrier-pigeon", graph=lhg20, source=0)
        with pytest.raises(SimulationError, match="carrier-pigeon"):
            run_experiment(spec)

    def test_experiment_names_cover_the_runner_family(self):
        names = experiment_names()
        for expected in (
            "flood",
            "gossip",
            "treecast",
            "unicast",
            "redundant-unicast",
            "echo",
            "reliable-flood",
            "arq-flood",
            "broadcast-stream",
            "failure-detection",
            "view-change",
        ):
            assert expected in names

    def test_crashed_source_guard(self, lhg20):
        source = lhg20.nodes()[0]
        schedule = FailureSchedule()
        schedule.crash(source, time=0.0)
        spec = ExperimentSpec(
            protocol="flood", graph=lhg20, source=source, failures=schedule
        )
        with pytest.raises(SimulationError, match="crashed at start"):
            run_experiment(spec)


class TestShimParity:
    """spec-driven runs reproduce shim-driven runs exactly."""

    def test_flood(self, lhg20):
        source = lhg20.nodes()[0]
        schedule = _crashes(lhg20)
        via_shim = run_flood(lhg20, source, failures=schedule)
        via_spec = run_experiment(
            ExperimentSpec(
                protocol="flood", graph=lhg20, source=source, failures=schedule
            )
        )
        assert via_spec.result == via_shim
        assert via_spec.result.delivery_times == via_shim.delivery_times

    def test_gossip(self, lhg20):
        source = lhg20.nodes()[0]
        via_shim = run_gossip(lhg20, source, fanout=3, rounds=10, seed=7)
        via_spec = run_experiment(
            ExperimentSpec(
                protocol="gossip",
                graph=lhg20,
                source=source,
                seed=7,
                params={"fanout": 3, "rounds": 10},
            )
        )
        assert via_spec.result == via_shim

    def test_treecast(self, lhg20):
        source = lhg20.nodes()[0]
        assert (
            run_experiment(
                ExperimentSpec(protocol="treecast", graph=lhg20, source=source)
            ).result
            == run_treecast(lhg20, source)
        )

    def test_reliable_flood(self, lhg20):
        source = lhg20.nodes()[0]
        via_shim = run_reliable_flood(lhg20, source, loss_rate=0.3, loss_seed=5)
        via_spec = run_experiment(
            ExperimentSpec(
                protocol="reliable-flood",
                graph=lhg20,
                source=source,
                loss_rate=0.3,
                loss_seed=5,
            )
        )
        assert via_spec.result == via_shim

    def test_arq_flood(self, lhg20):
        source = lhg20.nodes()[0]
        via_shim = run_arq_flood(lhg20, source, loss_rate=0.2, loss_seed=3)
        via_spec = run_experiment(
            ExperimentSpec(
                protocol="arq-flood",
                graph=lhg20,
                source=source,
                loss_rate=0.2,
                loss_seed=3,
            )
        )
        assert via_spec.result == via_shim

    def test_unicast(self, lhg20):
        nodes = lhg20.nodes()
        path = shortest_path(lhg20, nodes[0], nodes[-1])
        delivered_at, hops = run_unicast(lhg20, path)
        summary = run_experiment(
            ExperimentSpec(protocol="unicast", graph=lhg20, params={"path": path})
        )
        assert summary.metric("delivered_at") == delivered_at
        assert summary.metric("hops") == hops
        assert delivered_at is not None

    def test_echo_shim_returns_protocol(self, lhg20):
        source = lhg20.nodes()[0]
        protocol = run_echo(lhg20, source)
        assert protocol.completed
        assert protocol.aggregate == lhg20.number_of_nodes()
        summary = run_experiment(
            ExperimentSpec(protocol="echo", graph=lhg20, source=source)
        )
        assert summary.metric("completed") is True
        assert summary.metric("aggregate") == protocol.aggregate


class TestRepeatRunsWorkers:
    def test_parallel_repetitions_match_serial(self, lhg20):
        source = lhg20.nodes()[0]

        def factory(seed):
            return random_crashes(lhg20, 3, seed=seed, protect={source})

        serial = repeat_runs(run_flood, lhg20, source, factory, 6)
        fanned = repeat_runs(run_flood, lhg20, source, factory, 6, workers=2)
        assert fanned.results == serial.results

    def test_parallel_gossip_seed_injection_matches_serial(self, lhg20):
        source = lhg20.nodes()[0]
        serial = repeat_runs(
            run_gossip, lhg20, source, None, 5, fanout=2, rounds=8
        )
        fanned = repeat_runs(
            run_gossip, lhg20, source, None, 5, workers=3, fanout=2, rounds=8
        )
        assert fanned.results == serial.results
