"""Dynamic-membership overlay: keep an LHG as nodes join and leave.

The paper's motivation is networks with an **arbitrary** number of
processes — peer-to-peer settings where n changes continuously.  This
module maintains the invariant "the current topology is an LHG for
(n, k)" across join/leave events and measures what that maintenance
costs:

* every membership change re-derives the construction for the new n
  (choosing rules via :func:`repro.core.existence.build_lhg`);
* logical construction slots are mapped to member ids **stably** — a
  member keeps its slot while that slot survives — so the measured edge
  churn reflects the construction's incremental structure, not label
  noise;
* :class:`ChurnCost` records edges added/removed and members rewired per
  event, the series experiment F6 reports.

Below n = 2k no LHG exists; the overlay bootstraps with a complete
graph (k-connected for n > k, trivially connected below) and switches to
the LHG construction at n = 2k.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.core.existence import build_lhg
from repro.graphs.graph import Graph, edge_key

MemberId = Hashable


class MembershipError(ReproError):
    """Raised on invalid membership operations (duplicate join, unknown leave)."""


@dataclass(frozen=True)
class ChurnCost:
    """Edge churn caused by one membership event."""

    event: str  # "join" or "leave"
    member: MemberId
    n_after: int
    edges_added: int
    edges_removed: int
    members_rewired: int

    @property
    def total_churn(self) -> int:
        """Added plus removed edges."""
        return self.edges_added + self.edges_removed


class LHGOverlay:
    """An overlay controller maintaining a k-connected LHG topology.

    Parameters
    ----------
    k:
        Target connectivity (fault tolerance k − 1).
    rule:
        Construction rule forwarded to :func:`repro.core.existence.build_lhg`
        (default ``"auto"``).

    Examples
    --------
    >>> overlay = LHGOverlay(k=3)
    >>> for member in range(8):
    ...     _ = overlay.join(f"peer-{member}")
    >>> overlay.topology().number_of_nodes()
    8
    """

    def __init__(self, k: int, rule: str = "auto") -> None:
        if k < 2:
            raise MembershipError(f"overlay needs k >= 2, got {k}")
        self.k = k
        self.rule = rule
        self._members: List[MemberId] = []
        self._slot_of: Dict[MemberId, Hashable] = {}
        self._member_of: Dict[Hashable, MemberId] = {}
        self._graph = Graph(name="lhg-overlay(empty)")
        self._history: List[ChurnCost] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def members(self) -> List[MemberId]:
        """Current members in join order."""
        return list(self._members)

    @property
    def size(self) -> int:
        """Current membership count."""
        return len(self._members)

    @property
    def history(self) -> List[ChurnCost]:
        """Churn record of every processed event."""
        return list(self._history)

    def topology(self) -> Graph:
        """The current member-labelled topology (a copy)."""
        return self._graph.copy()

    def copy(self) -> "LHGOverlay":
        """An independent overlay with identical state (for what-if planning)."""
        clone = LHGOverlay(k=self.k, rule=self.rule)
        clone._members = list(self._members)
        clone._slot_of = dict(self._slot_of)
        clone._member_of = dict(self._member_of)
        clone._graph = self._graph.copy()
        return clone

    def slot_assignment(self) -> Dict[MemberId, Hashable]:
        """Current member → construction-slot mapping (copy)."""
        return dict(self._slot_of)

    def in_lhg_regime(self) -> bool:
        """True once n ≥ 2k (the LHG construction is active)."""
        return self.size >= 2 * self.k

    # ------------------------------------------------------------------
    # Membership events
    # ------------------------------------------------------------------

    def join(self, member: MemberId) -> ChurnCost:
        """Add a member and rebuild the topology for n + 1.

        Raises
        ------
        MembershipError
            If ``member`` is already present.
        """
        if member in self._slot_of or member in self._members:
            raise MembershipError(f"{member!r} is already a member")
        self._members.append(member)
        return self._rebuild("join", member)

    def leave(self, member: MemberId) -> ChurnCost:
        """Remove a member and rebuild the topology for n − 1.

        Raises
        ------
        MembershipError
            If ``member`` is not present.
        """
        if member not in self._members:
            raise MembershipError(f"{member!r} is not a member")
        self._members.remove(member)
        self._slot_of.pop(member, None)
        return self._rebuild("leave", member)

    # ------------------------------------------------------------------
    # Rebuild machinery
    # ------------------------------------------------------------------

    def _target_construction(self) -> Graph:
        """Slot-labelled topology for the current membership count."""
        n = len(self._members)
        if n <= 1:
            return Graph(nodes=range(n), name="bootstrap")
        if n < 2 * self.k:
            bootstrap = Graph(name="bootstrap-complete")
            bootstrap.add_nodes_from(range(n))
            bootstrap.add_edges_from(
                (i, j) for i in range(n) for j in range(i + 1, n)
            )
            return bootstrap
        graph, _ = build_lhg(n, self.k, rule=self.rule)
        return graph

    def _assign_slots(self, slot_labels: List[Hashable]) -> None:
        """Stably map members onto the new construction's slots.

        Members keep slots that still exist; new/orphaned members take
        the remaining slots in deterministic order.
        """
        slot_set = set(slot_labels)
        kept = {
            member: slot
            for member, slot in self._slot_of.items()
            if slot in slot_set and member in set(self._members)
        }
        free_slots = sorted(slot_set - set(kept.values()), key=repr)
        unassigned = [m for m in self._members if m not in kept]
        if len(unassigned) != len(free_slots):
            raise MembershipError(
                f"slot accounting error: {len(unassigned)} members for "
                f"{len(free_slots)} slots"
            )
        for member, slot in zip(unassigned, free_slots):
            kept[member] = slot
        self._slot_of = kept
        self._member_of = {slot: member for member, slot in kept.items()}

    def _rebuild(self, event: str, member: MemberId) -> ChurnCost:
        old_edges: Set[FrozenSet] = {
            edge_key(u, v) for u, v in self._graph.iter_edges()
        }
        construction = self._target_construction()
        self._assign_slots(construction.nodes())

        rebuilt = Graph(name=f"lhg-overlay(n={len(self._members)},k={self.k})")
        rebuilt.add_nodes_from(self._members)
        for u_slot, v_slot in construction.iter_edges():
            rebuilt.add_edge(self._member_of[u_slot], self._member_of[v_slot])

        new_edges: Set[FrozenSet] = {
            edge_key(u, v) for u, v in rebuilt.iter_edges()
        }
        added = new_edges - old_edges
        removed = old_edges - new_edges
        touched = {node for pair in (added | removed) for node in pair}
        self._graph = rebuilt
        cost = ChurnCost(
            event=event,
            member=member,
            n_after=len(self._members),
            edges_added=len(added),
            edges_removed=len(removed),
            members_rewired=len(touched & set(self._members)),
        )
        self._history.append(cost)
        return cost
