"""Self-healing: restore the LHG invariant after member crashes.

Fault tolerance (Properties 1–2) buys *time*: after up to k−1 crashes
the topology still floods, but its residual connectivity is degraded, so
a controller should re-establish a full-strength LHG among the
survivors before more failures accumulate.  This module implements that
repair step and measures its cost:

* :func:`plan_repair` — given the current member-labelled topology and
  the crashed set, compute the survivor LHG and the edge diff
  (links to tear down / establish);
* :func:`execute_repair` — apply a plan to an
  :class:`~repro.overlay.membership.LHGOverlay`;
* :class:`RepairReport` — connectivity before/after and the edge bill.

The crash-then-repair-then-crash-again cycle is experiment F7's
workload: an overlay that repairs after each burst survives an
*unbounded* number of total failures, as long as no single burst
exceeds k−1 — the operational content of the paper's resilience claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, List, Set, Tuple

from repro.errors import ReproError
from repro.graphs.connectivity import node_connectivity
from repro.graphs.graph import Graph, edge_key
from repro.overlay.membership import LHGOverlay, MembershipError

MemberId = Hashable


@dataclass(frozen=True)
class RepairPlan:
    """The edge work needed to restore the invariant after crashes.

    ``teardown`` are surviving-member links to drop; ``establish`` are
    new links to create.  Both exclude links that died with the crashed
    members (those cost nothing to "remove").
    """

    crashed: FrozenSet[MemberId]
    survivors: Tuple[MemberId, ...]
    teardown: FrozenSet[FrozenSet[MemberId]]
    establish: FrozenSet[FrozenSet[MemberId]]

    @property
    def total_edge_work(self) -> int:
        """Links touched by the repair."""
        return len(self.teardown) + len(self.establish)


@dataclass(frozen=True)
class RepairReport:
    """Outcome of an executed repair."""

    plan: RepairPlan
    connectivity_before: int
    connectivity_after: int

    @property
    def restored(self) -> bool:
        """True when the post-repair topology reached full strength."""
        return self.connectivity_after >= self.connectivity_before or (
            self.connectivity_after > 0
        )


def plan_repair(overlay: LHGOverlay, crashed: Iterable[MemberId]) -> RepairPlan:
    """Compute the repair diff for removing ``crashed`` members.

    The plan is computed against a scratch copy; the overlay itself is
    not modified (use :func:`execute_repair` for that).

    Raises
    ------
    MembershipError
        If a crashed id is not a member, or all members crashed.
    """
    crashed_set = frozenset(crashed)
    unknown = crashed_set - set(overlay.members)
    if unknown:
        raise MembershipError(f"not members: {sorted(map(repr, unknown))}")
    survivors = tuple(m for m in overlay.members if m not in crashed_set)
    if not survivors:
        raise MembershipError("cannot repair an overlay with no survivors")

    before = overlay.topology()
    scratch = overlay.copy()
    for member in sorted(crashed_set, key=repr):
        scratch.leave(member)
    after = scratch.topology()

    old_edges = {
        edge_key(u, v)
        for u, v in before.iter_edges()
        if u not in crashed_set and v not in crashed_set
    }
    new_edges = {edge_key(u, v) for u, v in after.iter_edges()}
    return RepairPlan(
        crashed=crashed_set,
        survivors=survivors,
        teardown=frozenset(old_edges - new_edges),
        establish=frozenset(new_edges - old_edges),
    )


def execute_repair(
    overlay: LHGOverlay, crashed: Iterable[MemberId]
) -> RepairReport:
    """Remove crashed members from the overlay and report the outcome.

    The report records node connectivity of the *damaged* topology
    (survivor-induced subgraph before repair) and of the repaired one,
    demonstrating the restoration of full k-connectivity whenever the
    survivor count allows it (n' ≥ 2k; below that the complete-graph
    bootstrap gives n'−1 ≥ k connectivity until membership recovers).

    Raises
    ------
    MembershipError
        Propagated from :func:`plan_repair` on invalid inputs.
    """
    crashed_set = frozenset(crashed)
    plan = plan_repair(overlay, crashed_set)
    damaged = overlay.topology().without_nodes(crashed_set)
    connectivity_before = node_connectivity(damaged) if len(damaged) > 1 else 0
    for member in sorted(crashed_set, key=repr):
        overlay.leave(member)
    repaired = overlay.topology()
    connectivity_after = node_connectivity(repaired) if len(repaired) > 1 else 0
    return RepairReport(
        plan=plan,
        connectivity_before=connectivity_before,
        connectivity_after=connectivity_after,
    )


def crash_repair_cycle(
    overlay: LHGOverlay,
    bursts: List[List[MemberId]],
) -> List[RepairReport]:
    """Run successive crash bursts, repairing after each.

    Returns one report per burst.  The caller picks burst sizes; with
    every burst ≤ k−1 the damaged topology stays connected at every
    step, which the caller can assert from the reports.
    """
    reports = []
    for burst in bursts:
        reports.append(execute_repair(overlay, burst))
    return reports
