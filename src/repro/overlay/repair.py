"""Self-healing: restore the LHG invariant after member crashes.

Fault tolerance (Properties 1–2) buys *time*: after up to k−1 crashes
the topology still floods, but its residual connectivity is degraded, so
a controller should re-establish a full-strength LHG among the
survivors before more failures accumulate.  This module implements that
repair step and measures its cost:

* :func:`plan_repair` — given the current member-labelled topology and
  the crashed set, compute the survivor LHG and the edge diff
  (links to tear down / establish);
* :func:`execute_repair` — apply a plan to an
  :class:`~repro.overlay.membership.LHGOverlay`;
* :class:`RepairReport` — connectivity before/after and the edge bill.

The crash-then-repair-then-crash-again cycle is experiment F7's
workload: an overlay that repairs after each burst survives an
*unbounded* number of total failures, as long as no single burst
exceeds k−1 — the operational content of the paper's resilience claim.

Bursts **beyond** k−1 void that guarantee but must still have a
graceful path: the damaged topology may partition, and the repair then
degrades to a best-effort survivor rebuild.  :func:`execute_repair`
never raises for an oversized burst — it returns a *degraded*
:class:`RepairReport` recording the survivor components the burst left
behind (``components_before``), which the soak service
(:mod:`repro.service`) uses to enter its explicit ``DEGRADED`` state
instead of crashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, List, Set, Tuple

from repro.errors import ReproError
from repro.graphs.connectivity import node_connectivity
from repro.graphs.graph import Graph, edge_key
from repro.graphs.traversal import connected_components
from repro.overlay.membership import LHGOverlay, MembershipError

MemberId = Hashable


@dataclass(frozen=True)
class RepairPlan:
    """The edge work needed to restore the invariant after crashes.

    ``teardown`` are surviving-member links to drop; ``establish`` are
    new links to create.  Both exclude links that died with the crashed
    members (those cost nothing to "remove").
    """

    crashed: FrozenSet[MemberId]
    survivors: Tuple[MemberId, ...]
    teardown: FrozenSet[FrozenSet[MemberId]]
    establish: FrozenSet[FrozenSet[MemberId]]

    @property
    def total_edge_work(self) -> int:
        """Links touched by the repair."""
        return len(self.teardown) + len(self.establish)


@dataclass(frozen=True)
class RepairReport:
    """Outcome of an executed repair.

    ``k`` is the overlay's target connectivity and
    ``components_before`` the survivor component sizes of the *damaged*
    topology (descending) — a single entry when the burst left the
    survivors connected, several when it partitioned them.  ``k`` may
    be 0 for reports built by legacy callers that never recorded it.
    """

    plan: RepairPlan
    connectivity_before: int
    connectivity_after: int
    k: int = 0
    components_before: Tuple[int, ...] = ()

    @property
    def burst_size(self) -> int:
        """How many members crashed in this burst."""
        return len(self.plan.crashed)

    @property
    def partitioned(self) -> bool:
        """True when the burst split the survivors into components."""
        return len(self.components_before) > 1

    @property
    def degraded(self) -> bool:
        """True when the burst voided the paper's k−1 guarantee.

        Either the burst exceeded k−1 crashes (so Properties 1–2 no
        longer promise anything) or it actually partitioned the
        survivors.  A degraded report is data, not an error: the repair
        still rebuilt a full-strength survivor LHG best-effort.
        """
        if self.partitioned:
            return True
        return self.k > 0 and self.burst_size > self.k - 1

    @property
    def restored(self) -> bool:
        """True when the post-repair topology reached full strength.

        Full strength is k-connectivity when the survivor count allows
        it (n′ ≥ k + 1), else the complete-graph bound n′ − 1.  Reports
        without a recorded ``k`` fall back to "connected again".
        """
        if self.k > 0:
            target = min(self.k, max(0, len(self.plan.survivors) - 1))
            return self.connectivity_after >= target
        return self.connectivity_after >= self.connectivity_before or (
            self.connectivity_after > 0
        )


def plan_repair(overlay: LHGOverlay, crashed: Iterable[MemberId]) -> RepairPlan:
    """Compute the repair diff for removing ``crashed`` members.

    The plan is computed against a scratch copy; the overlay itself is
    not modified (use :func:`execute_repair` for that).

    Raises
    ------
    MembershipError
        If a crashed id is not a member, or all members crashed.
    """
    crashed_set = frozenset(crashed)
    unknown = crashed_set - set(overlay.members)
    if unknown:
        raise MembershipError(f"not members: {sorted(map(repr, unknown))}")
    survivors = tuple(m for m in overlay.members if m not in crashed_set)
    if not survivors:
        raise MembershipError("cannot repair an overlay with no survivors")

    before = overlay.topology()
    scratch = overlay.copy()
    for member in sorted(crashed_set, key=repr):
        scratch.leave(member)
    after = scratch.topology()

    old_edges = {
        edge_key(u, v)
        for u, v in before.iter_edges()
        if u not in crashed_set and v not in crashed_set
    }
    new_edges = {edge_key(u, v) for u, v in after.iter_edges()}
    return RepairPlan(
        crashed=crashed_set,
        survivors=survivors,
        teardown=frozenset(old_edges - new_edges),
        establish=frozenset(new_edges - old_edges),
    )


def execute_repair(
    overlay: LHGOverlay, crashed: Iterable[MemberId]
) -> RepairReport:
    """Remove crashed members from the overlay and report the outcome.

    The report records node connectivity of the *damaged* topology
    (survivor-induced subgraph before repair) and of the repaired one,
    demonstrating the restoration of full k-connectivity whenever the
    survivor count allows it (n' ≥ 2k; below that the complete-graph
    bootstrap gives n'−1 ≥ k connectivity until membership recovers).

    Bursts exceeding k−1 do **not** raise: the survivors may be
    partitioned, in which case the report comes back with
    ``degraded=True`` and the component sizes in ``components_before``,
    and the rebuild proceeds best-effort over all survivors.

    Raises
    ------
    MembershipError
        Propagated from :func:`plan_repair` on invalid inputs (unknown
        members, or a burst that leaves no survivors at all).
    """
    crashed_set = frozenset(crashed)
    plan = plan_repair(overlay, crashed_set)
    damaged = overlay.topology().without_nodes(crashed_set)
    connectivity_before = node_connectivity(damaged) if len(damaged) > 1 else 0
    components = tuple(
        sorted(
            (len(component) for component in connected_components(damaged)),
            reverse=True,
        )
    )
    for member in sorted(crashed_set, key=repr):
        overlay.leave(member)
    repaired = overlay.topology()
    connectivity_after = node_connectivity(repaired) if len(repaired) > 1 else 0
    return RepairReport(
        plan=plan,
        connectivity_before=connectivity_before,
        connectivity_after=connectivity_after,
        k=overlay.k,
        components_before=components,
    )


def crash_repair_cycle(
    overlay: LHGOverlay,
    bursts: List[List[MemberId]],
) -> List[RepairReport]:
    """Run successive crash bursts, repairing after each.

    Returns one report per burst.  The caller picks burst sizes; with
    every burst ≤ k−1 the damaged topology stays connected at every
    step, which the caller can assert from the reports.
    """
    reports = []
    for burst in bursts:
        reports.append(execute_repair(overlay, burst))
    return reports
