"""Churn traces: seeded join/leave workloads for the overlay experiments.

A trace is a list of :class:`ChurnEvent`; :func:`generate_trace` draws
one with a configurable join bias around a target population, and
:func:`replay` feeds it through an :class:`~repro.overlay.membership.LHGOverlay`
collecting the per-event churn costs (experiment F6's workload).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.overlay.membership import ChurnCost, LHGOverlay


@dataclass(frozen=True)
class ChurnEvent:
    """One membership event: ``kind`` is ``"join"`` or ``"leave"``."""

    kind: str
    member: str


def generate_trace(
    events: int,
    target_population: int,
    k: int,
    seed: int = 0,
    join_bias: float = 0.5,
) -> List[ChurnEvent]:
    """Draw a random join/leave trace.

    The trace starts with enough joins to reach ``target_population``,
    then mixes joins and leaves; the population is softly pulled back
    toward the target (below target joins become more likely, above it
    leaves do) and never drops below ``2k`` so the overlay stays in the
    LHG regime throughout the measured phase.

    Raises
    ------
    ReproError
        If the target population is below 2k.
    """
    if target_population < 2 * k:
        raise ReproError(
            f"target population {target_population} below LHG minimum {2 * k}"
        )
    rng = random.Random(seed)
    trace: List[ChurnEvent] = []
    population: List[str] = []
    counter = 0

    def join() -> None:
        nonlocal counter
        member = f"peer-{counter}"
        counter += 1
        population.append(member)
        trace.append(ChurnEvent(kind="join", member=member))

    def leave() -> None:
        member = population.pop(rng.randrange(len(population)))
        trace.append(ChurnEvent(kind="leave", member=member))

    while len(population) < target_population:
        join()
    for _ in range(events):
        pull = (target_population - len(population)) / max(1, target_population)
        p_join = min(0.95, max(0.05, join_bias + 0.5 * pull))
        if len(population) <= 2 * k or rng.random() < p_join:
            join()
        else:
            leave()
    return trace


def replay(trace: List[ChurnEvent], k: int, rule: str = "auto") -> List[ChurnCost]:
    """Feed a trace through a fresh overlay; return per-event churn costs."""
    overlay = LHGOverlay(k=k, rule=rule)
    costs: List[ChurnCost] = []
    for event in trace:
        if event.kind == "join":
            costs.append(overlay.join(event.member))
        else:
            costs.append(overlay.leave(event.member))
    return costs


def churn_summary(costs: List[ChurnCost]) -> Tuple[float, float, int]:
    """Return (mean churn, p95 churn, max churn) over the events.

    Churn of an event is edges added + removed.
    """
    if not costs:
        return (0.0, 0.0, 0)
    values = sorted(c.total_churn for c in costs)
    mean = statistics.fmean(values)
    p95 = values[min(len(values) - 1, int(0.95 * len(values)))]
    return (mean, float(p95), values[-1])
