"""Dynamic-membership overlay maintenance for LHG topologies."""

from repro.overlay.churn import ChurnEvent, churn_summary, generate_trace, replay
from repro.overlay.membership import ChurnCost, LHGOverlay, MembershipError
from repro.overlay.repair import (
    RepairPlan,
    RepairReport,
    crash_repair_cycle,
    execute_repair,
    plan_repair,
)

__all__ = [
    "ChurnCost",
    "ChurnEvent",
    "LHGOverlay",
    "MembershipError",
    "RepairPlan",
    "RepairReport",
    "churn_summary",
    "crash_repair_cycle",
    "execute_repair",
    "generate_trace",
    "plan_repair",
    "replay",
]
