"""Fault views: a failure overlay on any ``NeighborOracle``.

:func:`repro.flooding.failures.survivors` used to answer "what is left
after the schedule strikes?" by *materialising* the survivor topology
into a dict-of-sets :class:`~repro.graphs.graph.Graph` — O(n + m)
memory even when only two nodes died.  At n = 10⁶ that silently threw
away everything the scale substrate (:mod:`repro.graphs.implicit`,
:mod:`repro.graphs.csr`) had bought.

:class:`FaultView` is the O(#failures) answer: it wraps any backend —
CSR, implicit JD oracle, dict graph, even another FaultView — with a
node *down-set* and an undirected edge *kill-set*, and re-exposes the
:class:`~repro.graphs.oracle.NeighborOracle` surface with the damage
subtracted on the fly:

* ``neighbors(v)`` filters down neighbours and killed links from the
  base answer (O(deg) with O(1) membership probes — the down mask is a
  ``bytearray`` when the base has dense int ids);
* ``num_nodes`` / ``number_of_edges`` are exact, computed once from
  the damage at construction time;
* down nodes are *not* nodes of the view: ``neighbors``/``degree``
  raise :class:`~repro.errors.NodeNotFoundError` for them, exactly as
  for ids the base never had.

Because the view satisfies the oracle protocol, every generic
algorithm (BFS, diameter, synchronous-round flooding) runs on it
unchanged.  What does **not** carry over is structural certification:
a certificate for the pristine construction says nothing about the
damaged graph, so the view deliberately does *not* forward
``structural_proofs`` — recertification goes through
:func:`repro.robustness.invariants.recertify_survivors`.

Node ids of a dense base stay the *base's* ids (alive ids are no
longer contiguous), so the view advertises :attr:`FaultView.id_bound`
— the exclusive upper bound of the base id space — letting flat-array
consumers (:func:`repro.flooding.rounds.round_flood`,
:func:`component_size`) keep their ``bytearray`` fast paths.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Iterator, List, Optional

from repro.errors import NodeNotFoundError
from repro.graphs.graph import edge_key
from repro.graphs.oracle import (
    NeighborOracle,
    oracle_has_edge,
    oracle_has_node,
    oracle_num_edges,
)

Node = Hashable


def id_bound(oracle: NeighborOracle) -> Optional[int]:
    """Exclusive upper bound of the oracle's int id space, or ``None``.

    Returns B such that every node id lies in ``range(B)`` when the
    backend guarantees dense int ids (``dense_labels``, an implicit JD
    oracle, or anything advertising an ``id_bound`` attribute — e.g. a
    :class:`FaultView` over a dense base, whose *alive* ids are a
    subset of ``range(B)``).  ``None`` means ids are arbitrary labels
    and flat-array fast paths must not be used.
    """
    bound = getattr(oracle, "id_bound", None)
    if bound is not None:
        return int(bound)
    if getattr(oracle, "dense_labels", False):
        return oracle.num_nodes()
    from repro.graphs.implicit import ImplicitJDOracle

    if isinstance(oracle, ImplicitJDOracle):
        return oracle.num_nodes()
    return None


class FaultView:
    """A ``NeighborOracle`` minus a set of nodes and links.

    Parameters
    ----------
    base:
        Any neighbour oracle.  Never mutated.
    down_nodes:
        Nodes to subtract.  Entries the base does not have are ignored
        (crashing a node that never existed is a no-op, matching the
        event simulator).
    killed_links:
        Undirected links to subtract, as (u, v) pairs or
        :func:`~repro.graphs.graph.edge_key` sets.  Links that do not
        exist in the base, or whose endpoint is already down, are
        dropped from the kill-set so the edge accounting stays exact.
    """

    __slots__ = ("base", "name", "down_nodes", "killed_links", "id_bound", "_mask")

    def __init__(
        self,
        base: NeighborOracle,
        down_nodes: Iterable[Node] = (),
        killed_links: Iterable = (),
        name: str = "",
    ) -> None:
        self.base = base
        self.name = name or f"{getattr(base, 'name', '') or 'oracle'}-survivors"
        down = frozenset(
            v for v in down_nodes if oracle_has_node(base, v)
        )
        self.down_nodes: FrozenSet[Node] = down
        killed = set()
        for link in killed_links:
            endpoints = tuple(link)
            if len(endpoints) != 2:
                continue
            u, v = endpoints
            if u in down or v in down:
                continue
            if oracle_has_edge(base, u, v):
                killed.add(edge_key(u, v))
        self.killed_links: FrozenSet[frozenset] = frozenset(killed)
        self.id_bound = id_bound(base)
        if self.id_bound is not None:
            mask = bytearray(self.id_bound)
            for v in sorted(down):
                mask[v] = 1
            self._mask = mask
        else:
            self._mask = None

    # ------------------------------------------------------------------
    # NeighborOracle surface
    # ------------------------------------------------------------------

    def num_nodes(self) -> int:
        """Surviving node count."""
        return self.base.num_nodes() - len(self.down_nodes)

    def degree(self, node: Node) -> int:
        """Surviving degree of ``node``."""
        return len(self.neighbors(node))

    def neighbors(self, node: Node) -> List[Node]:
        """Base neighbours minus down nodes and killed links.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is down or unknown to the base.
        """
        if not self.has_node(node):
            raise NodeNotFoundError(node)
        mask = self._mask
        if mask is not None:
            out = [w for w in self.base.neighbors(node) if not mask[w]]
        elif self.down_nodes:
            down = self.down_nodes
            out = [w for w in self.base.neighbors(node) if w not in down]
        else:
            out = list(self.base.neighbors(node))
        if self.killed_links:
            killed = self.killed_links
            out = [w for w in out if edge_key(node, w) not in killed]
        return out

    def iter_nodes(self) -> Iterator[Node]:
        """Base node order with the down nodes skipped."""
        if not self.down_nodes:
            return iter(self.base.iter_nodes())
        down = self.down_nodes
        return (v for v in self.base.iter_nodes() if v not in down)

    # ------------------------------------------------------------------
    # Graph-compatible conveniences
    # ------------------------------------------------------------------

    def has_node(self, node: Node) -> bool:
        """True when ``node`` is alive and exists in the base."""
        if node in self.down_nodes:
            return False
        return oracle_has_node(self.base, node)

    def has_edge(self, u: Node, v: Node) -> bool:
        """True when the surviving edge (u, v) exists."""
        if not (self.has_node(u) and self.has_node(v)):
            return False
        if edge_key(u, v) in self.killed_links:
            return False
        return oracle_has_edge(self.base, u, v)

    def nodes(self) -> List[Node]:
        """All surviving nodes as a list (O(n) — prefer iter_nodes)."""
        return list(self.iter_nodes())

    def number_of_nodes(self) -> int:
        """Surviving node count (Graph spelling)."""
        return self.num_nodes()

    def number_of_edges(self) -> int:
        """Surviving edge count — exact, O(#failures · max-degree)."""
        down = self.down_nodes
        incident = sum(self.base.degree(v) for v in down)
        internal = sum(
            1 for v in down for w in self.base.neighbors(v) if w in down
        )
        removed = incident - internal // 2
        return oracle_num_edges(self.base) - removed - len(self.killed_links)

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __len__(self) -> int:
        return self.num_nodes()

    def __iter__(self) -> Iterator[Node]:
        return self.iter_nodes()

    def __repr__(self) -> str:
        return (
            f"<FaultView base={self.name!r} n={self.num_nodes()} "
            f"down={len(self.down_nodes)} killed={len(self.killed_links)}>"
        )

    # ------------------------------------------------------------------
    # Damage introspection (what recertification needs)
    # ------------------------------------------------------------------

    @property
    def damage(self) -> int:
        """Total failure count: down nodes plus killed links."""
        return len(self.down_nodes) + len(self.killed_links)

    def damage_frontier(self) -> List[Node]:
        """Surviving nodes adjacent to the damage, sorted by ``repr``.

        These are the nodes whose degrees and local cuts a
        recertification pass must recheck: everything farther away
        still sees exactly the pristine construction.
        """
        frontier = set()
        for v in self.down_nodes:
            for w in self.base.neighbors(v):
                if self.has_node(w):
                    frontier.add(w)
        for key in self.killed_links:
            for w in key:
                if self.has_node(w):
                    frontier.add(w)
        return sorted(frontier, key=repr)


def component_size(oracle: NeighborOracle, source: Node) -> int:
    """Size of ``source``'s connected component — the BFS witness.

    Runs on any oracle; with dense int ids (see :func:`id_bound`) the
    visited set is a flat ``bytearray``, so a million-node sweep costs
    ~1 byte per node of working state.

    Raises
    ------
    NodeNotFoundError
        If ``source`` is not a node of the oracle.
    """
    if not oracle_has_node(oracle, source):
        raise NodeNotFoundError(source)
    bound = id_bound(oracle)
    neighbors = oracle.neighbors
    count = 1
    if bound is not None:
        seen = bytearray(bound)
        seen[source] = 1
        frontier = [source]
        while frontier:
            next_frontier = []
            append = next_frontier.append
            for node in frontier:
                for w in neighbors(node):
                    if not seen[w]:
                        seen[w] = 1
                        append(w)
            count += len(next_frontier)
            frontier = next_frontier
        return count
    seen_set = {source}
    frontier = [source]
    while frontier:
        next_frontier = []
        for node in frontier:
            for w in neighbors(node):
                if w not in seen_set:
                    seen_set.add(w)
                    next_frontier.append(w)
        count += len(next_frontier)
        frontier = next_frontier
    return count
