"""Self-contained graph substrate: structure, algorithms, generators.

Everything the LHG constructions and the flooding simulator need from
graph theory lives here, implemented from scratch on the stdlib:

* :mod:`repro.graphs.graph` — the mutable :class:`Graph` data
  structure (dict-of-sets);
* :mod:`repro.graphs.oracle` — the :class:`NeighborOracle` read
  protocol every algorithm here is generic over;
* :mod:`repro.graphs.csr` — :class:`CSRGraph`, the compact read-only
  CSR backend with a one-shot compiler from any oracle;
* :mod:`repro.graphs.implicit` — :class:`ImplicitJDOracle`, the
  Jenkins–Demers construction as pure neighbour arithmetic (million-node
  graphs without adjacency);
* :mod:`repro.graphs.faultview` — :class:`FaultView`, a failure
  overlay (down nodes + killed links) on any oracle in O(#failures)
  state;
* :mod:`repro.graphs.traversal` — BFS/DFS, components, distances,
  diameter;
* :mod:`repro.graphs.maxflow` — Dinic max-flow on unit networks;
* :mod:`repro.graphs.connectivity` — κ/λ, k-connectivity predicates,
  cuts, Menger path witnesses;
* :mod:`repro.graphs.minimality` — Property-3 link-minimality checks;
* :mod:`repro.graphs.properties` — degree stats, regularity, expansion;
* :mod:`repro.graphs.generators` — classic/Harary/structured/random
  generators;
* :mod:`repro.graphs.io` — edge-list/JSON/DOT serialisation;
* :mod:`repro.graphs.nxcompat` — optional networkx bridging.
"""

from repro.graphs.decomposition import (
    articulation_points,
    biconnected_components,
    bridges,
    is_biconnected,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.faultview import FaultView, component_size, id_bound
from repro.graphs.graph import Graph, edge_key
from repro.graphs.implicit import ImplicitJDOracle
from repro.graphs.oracle import (
    NeighborOracle,
    materialize,
    oracle_has_edge,
    oracle_has_node,
    oracle_nodes,
    oracle_num_edges,
)
from repro.graphs.weighted import (
    dijkstra,
    link_weights_from_seed,
    weighted_diameter,
    weighted_eccentricity,
    weighted_shortest_path,
)
from repro.graphs.wl_hash import weisfeiler_lehman_hash, wl_equivalent
from repro.graphs.traversal import (
    average_path_length,
    bfs_levels,
    bfs_order,
    connected_components,
    diameter,
    eccentricity,
    is_connected,
    radius,
    shortest_path,
    shortest_path_length,
)
from repro.graphs.connectivity import (
    edge_connectivity,
    edge_disjoint_paths,
    is_k_edge_connected,
    is_k_node_connected,
    local_edge_connectivity,
    local_node_connectivity,
    minimum_edge_cut,
    minimum_node_cut,
    node_connectivity,
    node_disjoint_paths,
)
from repro.graphs.minimality import (
    has_degree_witness_minimality,
    is_link_minimal,
    minimality_report,
    redundant_edges,
)
from repro.graphs.properties import (
    DegreeStats,
    average_clustering,
    degree_stats,
    distance_histogram,
    is_k_regular,
    local_clustering,
    logarithmic_diameter_bound,
    triangle_count,
)

__all__ = [
    "CSRGraph",
    "DegreeStats",
    "FaultView",
    "Graph",
    "ImplicitJDOracle",
    "NeighborOracle",
    "articulation_points",
    "average_clustering",
    "average_path_length",
    "bfs_levels",
    "bfs_order",
    "biconnected_components",
    "bridges",
    "component_size",
    "connected_components",
    "degree_stats",
    "diameter",
    "dijkstra",
    "distance_histogram",
    "eccentricity",
    "edge_connectivity",
    "edge_disjoint_paths",
    "edge_key",
    "has_degree_witness_minimality",
    "id_bound",
    "is_biconnected",
    "is_connected",
    "is_k_edge_connected",
    "is_k_node_connected",
    "is_k_regular",
    "is_link_minimal",
    "link_weights_from_seed",
    "local_clustering",
    "local_edge_connectivity",
    "local_node_connectivity",
    "logarithmic_diameter_bound",
    "materialize",
    "minimality_report",
    "minimum_edge_cut",
    "minimum_node_cut",
    "node_connectivity",
    "node_disjoint_paths",
    "oracle_has_edge",
    "oracle_has_node",
    "oracle_nodes",
    "oracle_num_edges",
    "radius",
    "redundant_edges",
    "shortest_path",
    "shortest_path_length",
    "triangle_count",
    "weighted_diameter",
    "weighted_eccentricity",
    "weighted_shortest_path",
    "weisfeiler_lehman_hash",
    "wl_equivalent",
]
