"""A self-contained undirected simple-graph data structure.

The :class:`Graph` class is the substrate every other module builds on.
It stores an adjacency map (``dict`` of node → ``set`` of neighbours) and
offers the operations the LHG constructions, verifiers, and the flooding
simulator need: mutation, queries, views, copies, induced subgraphs, and
basic set algebra.

Nodes may be any hashable object.  Edges are unordered pairs of distinct
nodes; self-loops and parallel edges are rejected because every graph in
the paper is simple.

The class is deliberately dependency-free (pure stdlib) so the substrate
can be audited and reused on its own.  ``networkx`` interoperability lives
in :mod:`repro.graphs.nxcompat` and is used only for cross-validation in
the test suite.
"""

from __future__ import annotations

import warnings
from types import MappingProxyType
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError

Node = Hashable
Edge = Tuple[Node, Node]


def edge_key(u: Node, v: Node) -> FrozenSet[Node]:
    """Return a canonical, order-insensitive key for the edge ``(u, v)``.

    Useful for storing undirected edges in sets and dictionaries::

        >>> edge_key(1, 2) == edge_key(2, 1)
        True
    """
    return frozenset((u, v))


class Graph:
    """An undirected simple graph backed by an adjacency map.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes.
    edges:
        Optional iterable of ``(u, v)`` pairs.  Endpoints are added as
        nodes automatically.
    name:
        Optional human-readable label, carried through copies and used in
        ``repr`` output.

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (1, 2)])
    >>> g.number_of_nodes(), g.number_of_edges()
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_adj", "name")

    def __init__(
        self,
        nodes: Optional[Iterable[Node]] = None,
        edges: Optional[Iterable[Edge]] = None,
        name: str = "",
    ) -> None:
        self._adj: Dict[Node, Set[Node]] = {}
        self.name = name
        if nodes is not None:
            self.add_nodes_from(nodes)
        if edges is not None:
            self.add_edges_from(edges)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __contains__(self, node: Node) -> bool:
        try:
            return node in self._adj
        except TypeError:  # unhashable probe
            return False

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Graph{label} with {self.number_of_nodes()} nodes "
            f"and {self.number_of_edges()} edges>"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality: same node set and same edge set."""
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # Graphs are mutable; keep them unhashable like other containers.
    __hash__ = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (no-op if already present)."""
        if node not in self._adj:
            self._adj[node] = set()

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``(u, v)``, creating endpoints as needed.

        Raises
        ------
        GraphError
            If ``u == v`` (self-loops are not allowed in simple graphs).
        """
        if u == v:
            raise GraphError(f"self-loop on node {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def add_edges_from(self, edges: Iterable[Edge]) -> None:
        """Add every edge in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all its incident edges.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the graph.
        """
        if node not in self._adj:
            raise NodeNotFoundError(node)
        for neighbor in self._adj[node]:
            self._adj[neighbor].discard(node)
        del self._adj[node]

    def remove_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Remove every node in ``nodes`` (all must be present)."""
        for node in list(nodes):
            self.remove_node(node)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``(u, v)``.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not in the graph.
        """
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def remove_edges_from(self, edges: Iterable[Edge]) -> None:
        """Remove every edge in ``edges`` (all must be present)."""
        for u, v in list(edges):
            self.remove_edge(u, v)

    def clear(self) -> None:
        """Remove all nodes and edges."""
        self._adj.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def has_node(self, node: Node) -> bool:
        """Return ``True`` if ``node`` is in the graph."""
        return node in self

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` is present."""
        neighbors = self._adj.get(u)
        return neighbors is not None and v in neighbors

    def nodes(self) -> List[Node]:
        """Return a list of all nodes (insertion order)."""
        return list(self._adj)

    def edges(self) -> List[Edge]:
        """Return a list of all edges, each reported once as ``(u, v)``.

        The orientation of each reported pair follows node insertion
        order; use :func:`edge_key` for order-insensitive comparisons.
        """
        seen: Set[FrozenSet[Node]] = set()
        result: List[Edge] = []
        for u, neighbors in self._adj.items():
            for v in neighbors:
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    result.append((u, v))
        return result

    def iter_edges(self) -> Iterator[Edge]:
        """Yield every edge exactly once without building a list."""
        seen: Set[FrozenSet[Node]] = set()
        for u, neighbors in self._adj.items():
            for v in neighbors:
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield (u, v)

    def neighbors(self, node: Node) -> Set[Node]:
        """Return the set of neighbours of ``node`` (a defensive copy).

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the graph.
        """
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return set(self._adj[node])

    def adjacency(self) -> Dict[Node, Set[Node]]:
        """Return a deep copy of the adjacency map.

        .. deprecated::
            The deep copy is O(n + m) per call and surprised every
            caller that only wanted to *read* the structure.  Use
            :meth:`adjacency_view` for zero-copy reads, or build the
            copy explicitly when mutation is intended.
        """
        warnings.warn(
            "Graph.adjacency() deep-copies the adjacency map; use "
            "adjacency_view() for zero-copy reads",
            DeprecationWarning,
            stacklevel=2,
        )
        return {node: set(nbrs) for node, nbrs in self._adj.items()}

    def adjacency_view(self) -> Mapping[Node, Set[Node]]:
        """Return a read-only, zero-copy view of the adjacency map.

        The view tracks the live graph: mutations through the Graph API
        are visible in it immediately.  The mapping itself rejects item
        assignment; the neighbour sets are the internal ones, so treat
        them as read-only.
        """
        return MappingProxyType(self._adj)

    def degree(self, node: Node) -> int:
        """Return the degree of ``node``.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the graph.
        """
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return len(self._adj[node])

    def degrees(self) -> Dict[Node, int]:
        """Return a mapping of every node to its degree."""
        return {node: len(nbrs) for node, nbrs in self._adj.items()}

    def min_degree(self) -> int:
        """Return the minimum degree (0 for the empty graph)."""
        if not self._adj:
            return 0
        return min(len(nbrs) for nbrs in self._adj.values())

    def max_degree(self) -> int:
        """Return the maximum degree (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def number_of_nodes(self) -> int:
        """Return the number of nodes."""
        return len(self._adj)

    def number_of_edges(self) -> int:
        """Return the number of edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    # ------------------------------------------------------------------
    # NeighborOracle surface (see repro.graphs.oracle)
    # ------------------------------------------------------------------

    def num_nodes(self) -> int:
        """Return the number of nodes (``NeighborOracle`` spelling)."""
        return len(self._adj)

    def iter_nodes(self) -> Iterator[Node]:
        """Iterate over all nodes in insertion order."""
        return iter(self._adj)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def copy(self) -> "Graph":
        """Return an independent structural copy of the graph."""
        clone = Graph(name=self.name)
        clone._adj = {node: set(nbrs) for node, nbrs in self._adj.items()}
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the subgraph induced by ``nodes``.

        Nodes not present in the graph are ignored, matching the common
        "restriction" semantics used by the connectivity routines.
        """
        # insertion-ordered so the subgraph's node order follows the
        # caller's ``nodes`` order deterministically (a set here would
        # make node order vary with PYTHONHASHSEED)
        keep = dict.fromkeys(node for node in nodes if node in self._adj)
        sub = Graph(name=self.name)
        for node in keep:
            sub.add_node(node)
        for node in keep:
            for neighbor in self._adj[node]:
                if neighbor in keep:
                    sub.add_edge(node, neighbor)
        return sub

    def without_nodes(self, nodes: Iterable[Node]) -> "Graph":
        """Return a copy of the graph with ``nodes`` (and incident edges) removed."""
        drop = set(nodes)
        return self.subgraph(node for node in self._adj if node not in drop)

    def without_edges(self, edges: Iterable[Edge]) -> "Graph":
        """Return a copy of the graph with the given edges removed.

        Raises
        ------
        EdgeNotFoundError
            If any listed edge is absent.
        """
        clone = self.copy()
        clone.remove_edges_from(edges)
        return clone

    def union(self, other: "Graph") -> "Graph":
        """Return the node- and edge-wise union of ``self`` and ``other``."""
        merged = self.copy()
        merged.add_nodes_from(other.nodes())
        merged.add_edges_from(other.iter_edges())
        return merged

    def relabeled(self, mapping: Dict[Node, Node]) -> "Graph":
        """Return a copy with nodes renamed through ``mapping``.

        Nodes absent from ``mapping`` keep their name.  The mapping must
        be injective on the graph's nodes.

        Raises
        ------
        GraphError
            If two nodes map to the same new name.
        """
        new_names = {node: mapping.get(node, node) for node in self._adj}
        if len(set(new_names.values())) != len(new_names):
            raise GraphError("relabeling mapping is not injective on graph nodes")
        out = Graph(name=self.name)
        for node in self._adj:
            out.add_node(new_names[node])
        for u, v in self.iter_edges():
            out.add_edge(new_names[u], new_names[v])
        return out

    def complement(self) -> "Graph":
        """Return the complement graph on the same node set."""
        nodes = self.nodes()
        comp = Graph(nodes=nodes, name=self.name)
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                if not self.has_edge(u, v):
                    comp.add_edge(u, v)
        return comp

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------

    def is_regular(self) -> bool:
        """Return ``True`` if every node has the same degree.

        The empty graph and single-node graphs count as regular.
        """
        degrees = {len(nbrs) for nbrs in self._adj.values()}
        return len(degrees) <= 1

    def regular_degree(self) -> Optional[int]:
        """Return the shared degree if the graph is regular, else ``None``.

        Returns ``None`` for the empty graph as well, because it has no
        degree to report.
        """
        degrees = {len(nbrs) for nbrs in self._adj.values()}
        if len(degrees) == 1:
            return next(iter(degrees))
        return None

    def density(self) -> float:
        """Return the edge density ``2m / (n (n - 1))`` (0.0 for n < 2)."""
        n = self.number_of_nodes()
        if n < 2:
            return 0.0
        return 2.0 * self.number_of_edges() / (n * (n - 1))
