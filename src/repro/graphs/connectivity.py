"""Node and edge connectivity via Menger's theorem and max-flow.

This module answers the questions Properties 1 and 2 of the LHG
definition ask:

* :func:`local_node_connectivity` / :func:`local_edge_connectivity` —
  κ(s, t) and λ(s, t) for a node pair;
* :func:`node_connectivity` / :func:`edge_connectivity` — global κ(G)
  and λ(G), using the classic reduction of Even & Tarjan (fix one node,
  probe its non-neighbours, then probe pairs of its neighbours) to avoid
  the all-pairs sweep;
* :func:`is_k_node_connected` / :func:`is_k_edge_connected` — early-exit
  predicates that stop each max-flow at the ``k`` cutoff;
* :func:`minimum_node_cut` / :func:`minimum_edge_cut` — cut certificates;
* :func:`node_disjoint_paths` / :func:`edge_disjoint_paths` — Menger
  witnesses extracted from the flow decomposition.

Conventions (standard, and the ones the paper uses implicitly): for the
complete graph K_n, κ = n − 1; disconnected graphs have κ = λ = 0;
single-node graphs have κ = λ = 0.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import GraphError, NodeNotFoundError
from repro.graphs.graph import Graph, Node
from repro.graphs.maxflow import (
    FlowNetwork,
    edge_disjoint_flow_network,
    node_disjoint_flow_network,
)
from repro.graphs.traversal import is_connected


def _require_distinct_nodes(graph: Graph, s: Node, t: Node) -> None:
    if s not in graph:
        raise NodeNotFoundError(s)
    if t not in graph:
        raise NodeNotFoundError(t)
    if s == t:
        raise GraphError("connectivity between a node and itself is undefined")


def local_edge_connectivity(
    graph: Graph, s: Node, t: Node, cutoff: Optional[int] = None
) -> int:
    """Return λ(s, t): the max number of edge-disjoint s–t paths.

    Parameters
    ----------
    cutoff:
        Stop early once the value is known to be ≥ ``cutoff``.
    """
    _require_distinct_nodes(graph, s, t)
    net = edge_disjoint_flow_network(graph.edges())
    net.add_node(s)
    net.add_node(t)
    return int(net.max_flow(s, t, cutoff=cutoff))


def local_node_connectivity(
    graph: Graph, s: Node, t: Node, cutoff: Optional[int] = None
) -> int:
    """Return κ(s, t): the max number of internally node-disjoint paths.

    For adjacent ``s`` and ``t`` the direct edge counts as one path; the
    vertex-split construction handles that automatically because the
    ``out(s) → in(t)`` arc bypasses every split node.
    """
    _require_distinct_nodes(graph, s, t)
    net = node_disjoint_flow_network(graph.nodes(), graph.edges(), s, t)
    return int(net.max_flow(("src", s), ("dst", t), cutoff=cutoff))


def edge_connectivity(graph: Graph) -> int:
    """Return the global edge connectivity λ(G).

    Uses the standard fact that λ(G) = min over t ≠ s of λ(s, t) for any
    fixed s, so n − 1 max-flow runs suffice.
    """
    n = graph.number_of_nodes()
    if n < 2 or not is_connected(graph):
        return 0
    nodes = graph.nodes()
    source = nodes[0]
    best = graph.min_degree()
    for target in nodes[1:]:
        if best == 0:
            break
        best = min(
            best, local_edge_connectivity(graph, source, target, cutoff=best)
        )
    return best


def node_connectivity(graph: Graph) -> int:
    """Return the global node connectivity κ(G).

    Implements the Even–Tarjan reduction: κ(G) is the minimum of
    κ(v, w) over a fixed vertex v and all its non-neighbours w, and
    κ(x, y) over pairs of v's neighbours that are themselves
    non-adjacent.  Complete graphs, where no non-adjacent pair exists,
    return the conventional n − 1.
    """
    n = graph.number_of_nodes()
    if n < 2 or not is_connected(graph):
        return 0
    # Pick a minimum-degree vertex: its degree upper-bounds kappa and
    # keeps the neighbour-pair probe set small.
    pivot = min(graph.nodes(), key=graph.degree)
    best = n - 1
    neighbors = graph.neighbors(pivot)
    non_neighbors = [
        w for w in graph if w != pivot and w not in neighbors
    ]
    for w in non_neighbors:
        best = min(best, local_node_connectivity(graph, pivot, w, cutoff=best))
        if best == 0:
            return 0
    neighbor_list = sorted(neighbors, key=repr)
    for i, x in enumerate(neighbor_list):
        x_neighbors = graph.neighbors(x)
        for y in neighbor_list[i + 1 :]:
            if y in x_neighbors:
                continue
            best = min(best, local_node_connectivity(graph, x, y, cutoff=best))
            if best == 0:
                return 0
    return best


def is_k_edge_connected(graph: Graph, k: int) -> bool:
    """Return ``True`` if λ(G) ≥ k (every k−1 link removals leave G connected)."""
    if k <= 0:
        return True
    n = graph.number_of_nodes()
    if n < 2:
        return False
    if graph.min_degree() < k:
        return False
    if not is_connected(graph):
        return False
    nodes = graph.nodes()
    source = nodes[0]
    return all(
        local_edge_connectivity(graph, source, target, cutoff=k) >= k
        for target in nodes[1:]
    )


def is_k_node_connected(graph: Graph, k: int) -> bool:
    """Return ``True`` if κ(G) ≥ k (every k−1 node removals leave G connected).

    Matches the paper's Property 1.  Requires n > k (removing k − 1
    nodes from a graph with n ≤ k could leave a single node, which is
    connected by convention, but κ(G) ≤ n − 1 regardless).
    """
    if k <= 0:
        return True
    n = graph.number_of_nodes()
    if n <= k:
        return False
    if graph.min_degree() < k:
        return False
    if not is_connected(graph):
        return False
    pivot = min(graph.nodes(), key=graph.degree)
    neighbors = graph.neighbors(pivot)
    for w in graph:
        if w != pivot and w not in neighbors:
            if local_node_connectivity(graph, pivot, w, cutoff=k) < k:
                return False
    neighbor_list = sorted(neighbors, key=repr)
    for i, x in enumerate(neighbor_list):
        x_neighbors = graph.neighbors(x)
        for y in neighbor_list[i + 1 :]:
            if y in x_neighbors:
                continue
            if local_node_connectivity(graph, x, y, cutoff=k) < k:
                return False
    return True


def minimum_edge_cut(graph: Graph) -> Set[Tuple[Node, Node]]:
    """Return a minimum set of edges whose removal disconnects the graph.

    Raises
    ------
    GraphError
        If the graph has fewer than two nodes or is already disconnected.
    """
    n = graph.number_of_nodes()
    if n < 2:
        raise GraphError("minimum edge cut needs at least two nodes")
    if not is_connected(graph):
        raise GraphError("graph is already disconnected")
    lam = edge_connectivity(graph)
    nodes = graph.nodes()
    source = nodes[0]
    for target in nodes[1:]:
        net = edge_disjoint_flow_network(graph.edges())
        flow = net.max_flow(source, target)
        if int(flow) == lam:
            reachable = net.min_cut_reachable(source)
            return {
                (u, v)
                for u, v in graph.iter_edges()
                if (u in reachable) != (v in reachable)
            }
    raise GraphError("internal error: no pair realised the edge connectivity")


def minimum_node_cut(graph: Graph) -> Set[Node]:
    """Return a minimum node separator (empty for complete graphs).

    Raises
    ------
    GraphError
        If the graph has fewer than two nodes or is already disconnected.
    """
    n = graph.number_of_nodes()
    if n < 2:
        raise GraphError("minimum node cut needs at least two nodes")
    if not is_connected(graph):
        raise GraphError("graph is already disconnected")
    kappa = node_connectivity(graph)
    if kappa == n - 1:
        return set()  # complete graph: no separator exists
    for s in graph:
        s_closed = graph.neighbors(s) | {s}
        for t in graph:
            if t in s_closed:
                continue
            net = node_disjoint_flow_network(graph.nodes(), graph.edges(), s, t)
            flow = net.max_flow(("src", s), ("dst", t))
            if int(flow) == kappa:
                reachable = net.min_cut_reachable(("src", s))
                cut = {
                    x
                    for x in graph
                    if x not in (s, t)
                    and ("in", x) in reachable
                    and ("out", x) not in reachable
                }
                if len(cut) == kappa:
                    return cut
    raise GraphError("internal error: no pair realised the node connectivity")


def _decompose_unit_flow(
    arcs_used: Dict[Node, List[Node]], s: Node, t: Node
) -> List[List[Node]]:
    """Greedy path extraction over a used-arc adjacency map.

    Flow conservation guarantees every walk started at ``s`` reaches
    ``t``; each step consumes one arc, so the loop terminates.  A walk
    that wandered through a residual flow cycle is compressed back to a
    simple path by cutting the loop at the first repeated node.
    """
    paths: List[List[Node]] = []
    while arcs_used.get(s):
        walk = [s]
        node = s
        while node != t:
            nxt = arcs_used[node].pop()
            walk.append(nxt)
            node = nxt
        path: List[Node] = []
        position: Dict[Node, int] = {}
        for step in walk:
            if step in position:
                del_from = position[step]
                for dropped in path[del_from + 1 :]:
                    del position[dropped]
                del path[del_from + 1 :]
            else:
                position[step] = len(path)
                path.append(step)
        paths.append(path)
    return paths


def edge_disjoint_paths(graph: Graph, s: Node, t: Node) -> List[List[Node]]:
    """Return a maximum family of pairwise edge-disjoint s–t paths.

    The family size equals :func:`local_edge_connectivity`.
    """
    _require_distinct_nodes(graph, s, t)
    net = edge_disjoint_flow_network(graph.edges())
    net.add_node(s)
    net.add_node(t)
    flow = int(net.max_flow(s, t))
    if flow == 0:
        return []
    used = _saturated_arcs(net)
    return _decompose_unit_flow(used, s, t)


def node_disjoint_paths(graph: Graph, s: Node, t: Node) -> List[List[Node]]:
    """Return a maximum family of internally node-disjoint s–t paths.

    The family size equals :func:`local_node_connectivity`; this is the
    constructive Menger witness the LHG proofs reason about.
    """
    _require_distinct_nodes(graph, s, t)
    net = node_disjoint_flow_network(graph.nodes(), graph.edges(), s, t)
    flow = int(net.max_flow(("src", s), ("dst", t)))
    if flow == 0:
        return []
    used = _saturated_arcs(net)
    raw = _decompose_unit_flow(used, ("src", s), ("dst", t))
    paths: List[List[Node]] = []
    for split_path in raw:
        path: List[Node] = []
        for kind, label in split_path:
            # Keep one copy of each split node: "src"/"dst"/"out" halves.
            if kind in ("src", "dst", "out"):
                path.append(label)
        paths.append(path)
    return paths


def _saturated_arcs(net: FlowNetwork) -> Dict[Node, List[Node]]:
    """Return, per node label, the labels its flow-carrying arcs point to.

    Opposite unit-arc pairs between the same nodes that both carried
    flow cancel out, which prunes the 2-cycles the undirected reduction
    can create, leaving an acyclic unit flow that decomposes into paths.
    """
    counts: Dict[Tuple[Node, Node], int] = {}
    for tail, head, carried in net.iter_flows():
        counts[(tail, head)] = counts.get((tail, head), 0) + int(carried)
    used: Dict[Node, List[Node]] = {}
    for (tail, head), count in list(counts.items()):
        opposite = counts.get((head, tail), 0)
        net_flow = count - opposite
        if net_flow > 0:
            used.setdefault(tail, []).extend([head] * net_flow)
            counts[(head, tail)] = 0
            counts[(tail, head)] = 0
    return used
