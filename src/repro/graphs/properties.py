"""Structural property helpers: degree statistics, regularity, expansion.

These are the measurement utilities the analysis layer and the
benchmarks share.  The LHG-specific property bundle (Properties 1–5 of
the paper's definition) lives in :mod:`repro.core.properties`; this
module provides the generic building blocks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_levels


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree distribution."""

    minimum: int
    maximum: int
    mean: float
    histogram: Dict[int, int]

    @property
    def is_regular(self) -> bool:
        """True when every node shares one degree."""
        return self.minimum == self.maximum


def degree_stats(graph: Graph) -> DegreeStats:
    """Return min/max/mean degree and the degree histogram.

    Raises
    ------
    GraphError
        If the graph is empty (no degrees to summarise).
    """
    degrees = list(graph.degrees().values())
    if not degrees:
        raise GraphError("degree statistics of an empty graph are undefined")
    histogram: Dict[int, int] = {}
    for d in degrees:
        histogram[d] = histogram.get(d, 0) + 1
    return DegreeStats(
        minimum=min(degrees),
        maximum=max(degrees),
        mean=sum(degrees) / len(degrees),
        histogram=dict(sorted(histogram.items())),
    )


def is_k_regular(graph: Graph, k: int) -> bool:
    """Return ``True`` if every node has degree exactly ``k`` (Property 5)."""
    if graph.number_of_nodes() == 0:
        return False
    return all(d == k for d in graph.degrees().values())


def irregularity(graph: Graph, k: int) -> int:
    """Return the total degree excess over ``k``: Σ max(0, deg(v) − k).

    Zero iff the graph is k-regular given min-degree ≥ k; benchmarks T1
    and T5 report it as "how far from the perfectly minimal graph".
    """
    return sum(max(0, d - k) for d in graph.degrees().values())


def degree_excess_nodes(graph: Graph, k: int) -> List[Tuple[Node, int]]:
    """Return the nodes whose degree exceeds ``k`` with their excess."""
    return sorted(
        ((v, d - k) for v, d in graph.degrees().items() if d > k),
        key=lambda item: repr(item[0]),
    )


def edge_expansion_estimate(
    graph: Graph, samples: int = 200, seed: int = 0
) -> float:
    """Estimate the edge expansion h(G) = min |∂S| / |S| over small cuts.

    Exact expansion is NP-hard, so this samples random connected subsets
    S with |S| ≤ n/2 (grown by randomised BFS) and returns the smallest
    boundary ratio seen — an *upper bound* on h(G).  Deterministic in
    ``seed``.  Used by the related-work benchmark comparing LHGs with
    random expanders.

    Raises
    ------
    GraphError
        If the graph has fewer than two nodes.
    """
    n = graph.number_of_nodes()
    if n < 2:
        raise GraphError("expansion needs at least two nodes")
    rng = random.Random(seed)
    nodes = graph.nodes()
    best = float("inf")
    for _ in range(samples):
        target_size = rng.randint(1, max(1, n // 2))
        start = rng.choice(nodes)
        subset = {start}
        frontier = [start]
        while frontier and len(subset) < target_size:
            current = frontier.pop(rng.randrange(len(frontier)))
            for neighbor in graph.neighbors(current):
                if neighbor not in subset and len(subset) < target_size:
                    subset.add(neighbor)
                    frontier.append(neighbor)
        boundary = sum(
            1
            # repro: lint-ignore[DET003] order-insensitive sum over the set
            for u in subset
            for v in graph.neighbors(u)
            if v not in subset
        )
        best = min(best, boundary / len(subset))
    return best


def girth(graph: Graph, cap: Optional[int] = None) -> Optional[int]:
    """Return the length of the shortest cycle, or ``None`` if acyclic.

    BFS from every node; a non-tree edge at BFS depth d closes a cycle
    of length ≤ 2d + 1.  ``cap`` stops early once a cycle of length
    ≤ cap is found (returns that length).
    """
    best: Optional[int] = None
    for root in graph:
        dist = {root: 0}
        parent: Dict[Node, Optional[Node]] = {root: None}
        queue = [root]
        while queue:
            node = queue.pop(0)
            for neighbor in graph.neighbors(node):
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    parent[neighbor] = node
                    queue.append(neighbor)
                elif parent[node] != neighbor:
                    cycle_len = dist[node] + dist[neighbor] + 1
                    if best is None or cycle_len < best:
                        best = cycle_len
                        if cap is not None and best <= cap:
                            return best
    return best


def logarithmic_diameter_bound(n: int, k: int, slack: float = 4.0) -> int:
    """Return the hop budget Property 4 allows for an (n, k) LHG.

    The constructions give diameter ≤ 2·log_{k−1}(n) + O(1) for k ≥ 3;
    the bound used across the verifiers is ``slack · log2(n) + slack``
    expressed in *hops*, deliberately generous so it tests the O(log n)
    *class*, not a particular constant.  For k = 2 no logarithmic bound
    exists (cycles are the only minimal 2-connected graphs) and the
    function returns ``n`` (vacuous).

    Raises
    ------
    GraphError
        If ``n < 2`` or ``k < 1``.
    """
    if n < 2 or k < 1:
        raise GraphError(f"needs n >= 2, k >= 1, got n={n}, k={k}")
    if k <= 2:
        return n
    return int(slack * math.log2(n) + slack)


def local_clustering(graph: Graph, node: Node) -> float:
    """Return the local clustering coefficient of ``node``.

    Fraction of the node's neighbour pairs that are themselves adjacent;
    0.0 for degree < 2.  LHG interiors and shared leaves live in
    triangle-free neighbourhoods (coefficient 0); K-DIAMOND's unshared
    clique members are the only clustered nodes — a structural signature
    the topology atlas surfaces.
    """
    neighbors = list(graph.neighbors(node))
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    links = sum(
        1
        for i, u in enumerate(neighbors)
        for v in neighbors[i + 1 :]
        if graph.has_edge(u, v)
    )
    return 2.0 * links / (degree * (degree - 1))


def average_clustering(graph: Graph) -> float:
    """Return the mean local clustering coefficient over all nodes.

    Raises
    ------
    GraphError
        If the graph is empty.
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphError("clustering of an empty graph is undefined")
    return sum(local_clustering(graph, v) for v in graph) / n


def triangle_count(graph: Graph) -> int:
    """Return the number of triangles in the graph."""
    count = 0
    for u in graph:
        neighbors = [v for v in graph.neighbors(u) if repr(v) > repr(u)]
        for i, v in enumerate(neighbors):
            v_neighbors = graph.neighbors(v)
            for w in neighbors[i + 1 :]:
                if w in v_neighbors:
                    count += 1
    return count


def distance_histogram(graph: Graph, source: Node) -> Dict[int, int]:
    """Return how many nodes sit at each hop distance from ``source``.

    The flooding analysis uses this to predict per-round coverage: in a
    failure-free unit-latency flood, round r reaches exactly the nodes
    at distance r.
    """
    levels = bfs_levels(graph, source)
    histogram: Dict[int, int] = {}
    for distance in levels.values():
        histogram[distance] = histogram.get(distance, 0) + 1
    return dict(sorted(histogram.items()))
