"""Traversal and distance algorithms over any ``NeighborOracle``.

These routines back the LHG property verifiers (connectivity and the
logarithmic-diameter check, Properties 1–4) and the flooding analysis:

* breadth-first and depth-first traversal,
* connected components and connectivity predicates,
* single-source shortest paths (hop counts) and path reconstruction,
* eccentricity, diameter (exact and sampled), radius, and average path
  length.

All distances are **hop counts** (unweighted); the flooding simulator
handles weighted latencies itself.

Every routine reads the topology exclusively through the
:class:`~repro.graphs.oracle.NeighborOracle` surface (``num_nodes`` /
``degree`` / ``neighbors`` / ``iter_nodes``), so it runs unchanged on a
dict-of-sets :class:`~repro.graphs.graph.Graph`, a compact
:class:`~repro.graphs.csr.CSRGraph`, or the arithmetic
:class:`~repro.graphs.implicit.ImplicitJDOracle` — the ``graph``
parameter name is kept for backward compatibility.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import DisconnectedGraphError, NodeNotFoundError
from repro.graphs.graph import Node
from repro.graphs.oracle import (
    NeighborOracle,
    oracle_has_edge,
    oracle_has_node,
    oracle_nodes,
)


def bfs_order(graph: NeighborOracle, source: Node) -> List[Node]:
    """Return nodes in breadth-first order from ``source``.

    Raises
    ------
    NodeNotFoundError
        If ``source`` is not in the graph.
    """
    if not oracle_has_node(graph, source):
        raise NodeNotFoundError(source)
    visited: Set[Node] = {source}
    order: List[Node] = [source]
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in visited:
                visited.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    return order


def bfs_levels(graph: NeighborOracle, source: Node) -> Dict[Node, int]:
    """Return hop distances from ``source`` to every reachable node.

    The returned mapping includes ``source`` itself at distance 0 and
    omits unreachable nodes.
    """
    if not oracle_has_node(graph, source):
        raise NodeNotFoundError(source)
    dist: Dict[Node, int] = {source: 0}
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        base = dist[node]
        for neighbor in graph.neighbors(node):
            if neighbor not in dist:
                dist[neighbor] = base + 1
                queue.append(neighbor)
    return dist


def bfs_parents(graph: NeighborOracle, source: Node) -> Dict[Node, Optional[Node]]:
    """Return a BFS tree as a child → parent map (source maps to ``None``)."""
    if not oracle_has_node(graph, source):
        raise NodeNotFoundError(source)
    parents: Dict[Node, Optional[Node]] = {source: None}
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in parents:
                parents[neighbor] = node
                queue.append(neighbor)
    return parents


def dfs_order(graph: NeighborOracle, source: Node) -> List[Node]:
    """Return nodes in (iterative) depth-first preorder from ``source``."""
    if not oracle_has_node(graph, source):
        raise NodeNotFoundError(source)
    visited: Set[Node] = set()
    order: List[Node] = []
    stack: List[Node] = [source]
    while stack:
        node = stack.pop()
        if node in visited:
            continue
        visited.add(node)
        order.append(node)
        # Reverse-sorted push keeps the visit order deterministic for the
        # common case of sortable node labels; fall back to arbitrary
        # order for mixed-type labels.
        neighbors = [n for n in graph.neighbors(node) if n not in visited]
        try:
            neighbors.sort(reverse=True)
        except TypeError:
            pass
        stack.extend(neighbors)
    return order


def shortest_path(graph: NeighborOracle, source: Node, target: Node) -> Optional[List[Node]]:
    """Return one shortest ``source`` → ``target`` path, or ``None``.

    The path is returned as a node list including both endpoints; a
    trivial ``[source]`` is returned when ``source == target``.
    """
    if not oracle_has_node(graph, source):
        raise NodeNotFoundError(source)
    if not oracle_has_node(graph, target):
        raise NodeNotFoundError(target)
    if source == target:
        return [source]
    parents = _bfs_parents_until(graph, source, target)
    if target not in parents:
        return None
    path: List[Node] = [target]
    while path[-1] != source:
        parent = parents[path[-1]]
        assert parent is not None  # source is the only None-parent node
        path.append(parent)
    path.reverse()
    return path


def _bfs_parents_until(
    graph: NeighborOracle, source: Node, target: Node
) -> Dict[Node, Optional[Node]]:
    """BFS parent map that stops as soon as ``target`` is reached."""
    parents: Dict[Node, Optional[Node]] = {source: None}
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in parents:
                parents[neighbor] = node
                if neighbor == target:
                    return parents
                queue.append(neighbor)
    return parents


def shortest_path_length(graph: NeighborOracle, source: Node, target: Node) -> int:
    """Return the hop distance from ``source`` to ``target``.

    Raises
    ------
    DisconnectedGraphError
        If ``target`` is unreachable from ``source``.
    """
    path = shortest_path(graph, source, target)
    if path is None:
        raise DisconnectedGraphError(
            f"{target!r} is not reachable from {source!r}"
        )
    return len(path) - 1


def connected_components(graph: NeighborOracle) -> List[Set[Node]]:
    """Return the connected components as a list of node sets."""
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for node in graph.iter_nodes():
        if node in seen:
            continue
        component = set(bfs_order(graph, node))
        seen.update(component)
        components.append(component)
    return components


def is_connected(graph: NeighborOracle) -> bool:
    """Return ``True`` if the graph is connected.

    Follows the paper's convention that connectivity is defined for
    graphs with more than one node; the empty and single-node graphs are
    reported as connected for convenience.
    """
    n = graph.num_nodes()
    if n <= 1:
        return True
    start = next(graph.iter_nodes())
    return len(bfs_order(graph, start)) == n


def eccentricity(graph: NeighborOracle, node: Node) -> int:
    """Return the eccentricity of ``node`` (max hop distance to any node).

    Raises
    ------
    DisconnectedGraphError
        If some node is unreachable from ``node``.
    """
    dist = bfs_levels(graph, node)
    if len(dist) != graph.num_nodes():
        raise DisconnectedGraphError(
            f"graph is disconnected; eccentricity of {node!r} is infinite"
        )
    return max(dist.values())


def diameter(graph: NeighborOracle) -> int:
    """Return the exact diameter (max eccentricity over all nodes).

    Runs a full BFS from every node — O(n · (n + m)).  For large graphs
    prefer :func:`approximate_diameter`.

    Raises
    ------
    DisconnectedGraphError
        If the graph is disconnected.
    """
    if graph.num_nodes() == 0:
        return 0
    return max(eccentricity(graph, node) for node in graph.iter_nodes())


def radius(graph: NeighborOracle) -> int:
    """Return the radius (min eccentricity over all nodes)."""
    if graph.num_nodes() == 0:
        return 0
    return min(eccentricity(graph, node) for node in graph.iter_nodes())


def approximate_diameter(
    graph: NeighborOracle, samples: int = 16, seed: int = 0
) -> int:
    """Return a lower bound on the diameter via double-sweep sampling.

    From each of ``samples`` random start nodes, run a BFS, then a second
    BFS from the farthest node found (the classic double sweep).  The
    maximum distance observed is returned.  On trees the bound is exact;
    on the graphs in this library it is empirically tight and never
    exceeds the true diameter.

    Raises
    ------
    DisconnectedGraphError
        If the graph is disconnected.
    """
    nodes = oracle_nodes(graph)
    if not nodes:
        return 0
    rng = random.Random(seed)
    best = 0
    n = graph.num_nodes()
    for _ in range(max(1, samples)):
        start = rng.choice(nodes)
        dist = bfs_levels(graph, start)
        if len(dist) != n:
            raise DisconnectedGraphError("graph is disconnected")
        far_node = max(dist, key=dist.get)
        second = bfs_levels(graph, far_node)
        best = max(best, max(second.values()))
    return best


def average_path_length(graph: NeighborOracle) -> float:
    """Return the mean hop distance over all ordered node pairs.

    Raises
    ------
    DisconnectedGraphError
        If the graph is disconnected.
    ValueError
        If the graph has fewer than two nodes.
    """
    n = graph.num_nodes()
    if n < 2:
        raise ValueError("average path length needs at least two nodes")
    total = 0
    for node in graph.iter_nodes():
        dist = bfs_levels(graph, node)
        if len(dist) != n:
            raise DisconnectedGraphError("graph is disconnected")
        total += sum(dist.values())
    return total / (n * (n - 1))


def all_pairs_distances(graph: NeighborOracle) -> Dict[Node, Dict[Node, int]]:
    """Return hop distances between all pairs (BFS from every node)."""
    return {node: bfs_levels(graph, node) for node in graph.iter_nodes()}


def paths_edge_disjoint(paths: Iterable[List[Node]]) -> bool:
    """Return ``True`` if no two of the given paths share an edge."""
    seen: Set[frozenset] = set()
    for path in paths:
        for u, v in zip(path, path[1:]):
            key = frozenset((u, v))
            if key in seen:
                return False
            seen.add(key)
    return True


def paths_internally_disjoint(paths: List[List[Node]]) -> bool:
    """Return ``True`` if the paths share no node except their endpoints.

    All paths must run between the same two endpoints; interior nodes
    must be pairwise distinct across paths — the witness shape required
    by Menger's theorem for node connectivity.
    """
    if not paths:
        return True
    endpoints = {paths[0][0], paths[0][-1]}
    interior_seen: Set[Node] = set()
    for path in paths:
        if {path[0], path[-1]} != endpoints:
            return False
        for node in path[1:-1]:
            if node in endpoints or node in interior_seen:
                return False
            interior_seen.add(node)
    return True


def is_simple_path(graph: NeighborOracle, path: List[Node]) -> bool:
    """Return ``True`` if ``path`` is a duplicate-free walk along edges."""
    if not path:
        return False
    if len(set(path)) != len(path):
        return False
    return all(oracle_has_edge(graph, u, v) for u, v in zip(path, path[1:]))


def iter_bfs_edges(graph: NeighborOracle, source: Node) -> Iterator[Tuple[Node, Node]]:
    """Yield the edges of a BFS tree rooted at ``source``."""
    parents = bfs_parents(graph, source)
    for child, parent in parents.items():
        if parent is not None:
            yield (parent, child)
