"""Weighted shortest paths (Dijkstra) for latency-aware analysis.

Hop counts answer the paper's asymptotic questions; deployments care
about *time*, with heterogeneous link latencies.  Given a per-link
weight function these routines compute the weighted analogues of the
distance toolkit, and the test suite uses them to cross-validate the
simulator: a flood's completion time over fixed per-link latencies must
equal the weighted eccentricity of its source — two independent
implementations of the same quantity.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import DisconnectedGraphError, GraphError, NodeNotFoundError
from repro.graphs.graph import Graph, Node

WeightFn = Callable[[Node, Node], float]


def dijkstra(graph: Graph, source: Node, weight: WeightFn) -> Dict[Node, float]:
    """Weighted distances from ``source`` to every reachable node.

    Raises
    ------
    NodeNotFoundError
        If ``source`` is absent.
    GraphError
        If a negative edge weight is encountered.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    dist: Dict[Node, float] = {source: 0.0}
    settled: set = set()
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for neighbor in graph.neighbors(node):
            w = weight(node, neighbor)
            if w < 0:
                raise GraphError(
                    f"negative weight {w} on link ({node!r}, {neighbor!r})"
                )
            candidate = d + w
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return dist


def weighted_shortest_path(
    graph: Graph, source: Node, target: Node, weight: WeightFn
) -> Optional[List[Node]]:
    """One minimum-weight path, or ``None`` when unreachable."""
    if source not in graph:
        raise NodeNotFoundError(source)
    if target not in graph:
        raise NodeNotFoundError(target)
    dist: Dict[Node, float] = {source: 0.0}
    parent: Dict[Node, Node] = {}
    settled: set = set()
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in settled:
            continue
        if node == target:
            break
        settled.add(node)
        for neighbor in graph.neighbors(node):
            w = weight(node, neighbor)
            if w < 0:
                raise GraphError("negative weights are not supported")
            candidate = d + w
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                parent[neighbor] = node
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    if target not in dist:
        return None
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def weighted_eccentricity(graph: Graph, node: Node, weight: WeightFn) -> float:
    """Max weighted distance from ``node`` to any other node.

    Raises
    ------
    DisconnectedGraphError
        If some node is unreachable.
    """
    dist = dijkstra(graph, node, weight)
    if len(dist) != graph.number_of_nodes():
        raise DisconnectedGraphError(
            f"graph is disconnected from {node!r}"
        )
    return max(dist.values())


def weighted_diameter(graph: Graph, weight: WeightFn) -> float:
    """Max weighted eccentricity over all nodes (exact, all-sources)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    return max(weighted_eccentricity(graph, v, weight) for v in graph)


def link_weights_from_seed(graph: Graph, low: float, high: float, seed: int = 0):
    """Fixed random per-link weights (symmetric), deterministic in the seed.

    Returns a weight function suitable for the routines above and for
    :class:`~repro.flooding.network.FixedLinkLatency`.

    Raises
    ------
    GraphError
        If the range is invalid.
    """
    import random

    if not 0 < low <= high:
        raise GraphError(f"need 0 < low <= high, got [{low}, {high}]")
    rng = random.Random(seed)
    table: Dict[frozenset, float] = {}
    for u, v in sorted(graph.iter_edges(), key=lambda e: (repr(e[0]), repr(e[1]))):
        table[frozenset((u, v))] = rng.uniform(low, high)

    def weight(u: Node, v: Node) -> float:
        try:
            return table[frozenset((u, v))]
        except KeyError:
            raise GraphError(f"({u!r}, {v!r}) is not a link of the graph")

    return weight
