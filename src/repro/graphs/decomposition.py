"""Cut-vertex structure: articulation points, bridges, biconnected components.

Tarjan's linear-time DFS low-link algorithms.  These give an independent
second opinion on the connectivity layer (a graph is 2-node-connected
iff it is connected with no articulation point, 2-edge-connected iff no
bridge) and explain *why* the fragile baselines fail: a spanning tree is
all bridges, so any interior crash partitions it, while a verified LHG
has no cut vertex at all.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.graphs.graph import Edge, Graph, Node, edge_key
from repro.graphs.traversal import is_connected


def articulation_points(graph: Graph) -> Set[Node]:
    """Return all cut vertices (nodes whose removal disconnects a component).

    Iterative Tarjan low-link; linear in nodes + edges.  Nodes in
    different components are handled independently.
    """
    visited: Set[Node] = set()
    discovery: Dict[Node, int] = {}
    low: Dict[Node, int] = {}
    parent: Dict[Node, Node] = {}
    cuts: Set[Node] = set()
    counter = 0

    for root in graph:
        if root in visited:
            continue
        root_children = 0
        stack: List[Tuple[Node, List[Node]]] = [(root, list(graph.neighbors(root)))]
        visited.add(root)
        discovery[root] = low[root] = counter
        counter += 1
        while stack:
            node, todo = stack[-1]
            if todo:
                neighbor = todo.pop()
                if neighbor not in visited:
                    visited.add(neighbor)
                    parent[neighbor] = node
                    discovery[neighbor] = low[neighbor] = counter
                    counter += 1
                    if node == root:
                        root_children += 1
                    stack.append((neighbor, list(graph.neighbors(neighbor))))
                elif neighbor != parent.get(node):
                    low[node] = min(low[node], discovery[neighbor])
            else:
                stack.pop()
                if stack:
                    upper = stack[-1][0]
                    low[upper] = min(low[upper], low[node])
                    if upper != root and low[node] >= discovery[upper]:
                        cuts.add(upper)
        if root_children >= 2:
            cuts.add(root)
    return cuts


def bridges(graph: Graph) -> Set[FrozenSet[Node]]:
    """Return all bridges as frozenset edge keys.

    A bridge is an edge whose removal disconnects its component; a graph
    is 2-edge-connected iff it is connected and bridge-free.
    """
    visited: Set[Node] = set()
    discovery: Dict[Node, int] = {}
    low: Dict[Node, int] = {}
    parent: Dict[Node, Node] = {}
    result: Set[FrozenSet[Node]] = set()
    counter = 0

    for root in graph:
        if root in visited:
            continue
        stack: List[Tuple[Node, List[Node]]] = [(root, list(graph.neighbors(root)))]
        visited.add(root)
        discovery[root] = low[root] = counter
        counter += 1
        while stack:
            node, todo = stack[-1]
            if todo:
                neighbor = todo.pop()
                if neighbor not in visited:
                    visited.add(neighbor)
                    parent[neighbor] = node
                    discovery[neighbor] = low[neighbor] = counter
                    counter += 1
                    stack.append((neighbor, list(graph.neighbors(neighbor))))
                elif neighbor != parent.get(node):
                    low[node] = min(low[node], discovery[neighbor])
            else:
                stack.pop()
                if stack:
                    upper = stack[-1][0]
                    low[upper] = min(low[upper], low[node])
                    if low[node] > discovery[upper]:
                        result.add(edge_key(upper, node))
    return result


def biconnected_components(graph: Graph) -> List[Set[Node]]:
    """Return the node sets of the biconnected components.

    Uses an edge stack alongside the low-link DFS: when a cut condition
    fires, the edges accumulated since the child's discovery form one
    component.  Isolated nodes yield singleton components.
    """
    visited: Set[Node] = set()
    discovery: Dict[Node, int] = {}
    low: Dict[Node, int] = {}
    parent: Dict[Node, Node] = {}
    components: List[Set[Node]] = []
    edge_stack: List[Edge] = []
    counter = 0

    def pop_component(u: Node, v: Node) -> None:
        component: Set[Node] = set()
        while edge_stack:
            a, b = edge_stack.pop()
            component.update((a, b))
            if (a, b) == (u, v) or (b, a) == (u, v):
                break
        if component:
            components.append(component)

    for root in graph:
        if root in visited:
            continue
        if graph.degree(root) == 0:
            components.append({root})
            continue
        stack: List[Tuple[Node, List[Node]]] = [(root, list(graph.neighbors(root)))]
        visited.add(root)
        discovery[root] = low[root] = counter
        counter += 1
        while stack:
            node, todo = stack[-1]
            if todo:
                neighbor = todo.pop()
                if neighbor not in visited:
                    visited.add(neighbor)
                    parent[neighbor] = node
                    discovery[neighbor] = low[neighbor] = counter
                    counter += 1
                    edge_stack.append((node, neighbor))
                    stack.append((neighbor, list(graph.neighbors(neighbor))))
                elif neighbor != parent.get(node) and discovery[neighbor] < discovery[node]:
                    edge_stack.append((node, neighbor))
                    low[node] = min(low[node], discovery[neighbor])
            else:
                stack.pop()
                if stack:
                    upper = stack[-1][0]
                    low[upper] = min(low[upper], low[node])
                    if low[node] >= discovery[upper]:
                        pop_component(upper, node)
    return components


def is_biconnected(graph: Graph) -> bool:
    """True iff the graph is connected, has ≥ 3 nodes, and no cut vertex.

    Equivalent to 2-node-connectivity; used as a cheap cross-check of
    the max-flow based :func:`repro.graphs.connectivity.is_k_node_connected`.
    """
    if graph.number_of_nodes() < 3:
        return False
    return is_connected(graph) and not articulation_points(graph)
