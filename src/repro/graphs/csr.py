"""Compact CSR (compressed sparse row) graph backend.

:class:`CSRGraph` stores an immutable adjacency structure in two flat
``array('q')`` buffers — the classic CSR layout:

* ``indptr`` (length n + 1): row boundaries — node ``i``'s neighbours
  live at ``indices[indptr[i]:indptr[i + 1]]``;
* ``indices`` (length 2m): neighbour ids, sorted within each row.

At 8 bytes per entry that is ``8·(n + 1) + 16·m`` bytes total —
for a degree-3 LHG at n = 10⁶ about 56 MB, versus gigabytes for a
dict-of-sets with tuple labels.  Rows being sorted makes ``has_edge`` a
binary search, O(log degree).

Nodes are **dense int ids** ``0 … n − 1``.  When the source oracle's
nodes are already exactly that (the common case after
:class:`~repro.graphs.implicit.ImplicitJDOracle`), the backend stores no
label table at all; otherwise the original labels ride along in a list
(``label_of`` / ``id_of``) and the oracle surface speaks *labels*, so a
CSR-compiled graph answers ``neighbors(("L", 4))`` exactly like the
dict-of-sets original — int node ids survive compilation with their
dtype intact (they are stored, not stringified).

Build one with :meth:`CSRGraph.from_oracle`, a one-shot compiler from
any :class:`~repro.graphs.oracle.NeighborOracle` (including a plain
:class:`~repro.graphs.graph.Graph`).  The structure is read-only by
design: mutate a ``Graph``, then re-compile.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import GraphError, NodeNotFoundError

Node = Hashable


def _is_dense_int_labels(order: Sequence[Node]) -> bool:
    """True when node ``i`` of the iteration order is the int ``i`` itself."""
    for position, node in enumerate(order):
        if node is True or node is False:
            return False
        if not isinstance(node, int) or node != position:
            return False
    return True


class CSRGraph:
    """Read-only CSR-backed graph satisfying the ``NeighborOracle`` protocol.

    Do not call the constructor directly — use :meth:`from_oracle`.
    """

    __slots__ = ("_indptr", "_indices", "_labels", "_ids", "name")

    def __init__(
        self,
        indptr: array,
        indices: array,
        labels: Optional[List[Node]],
        ids: Optional[Dict[Node, int]],
        name: str = "",
    ) -> None:
        self._indptr = indptr
        self._indices = indices
        self._labels = labels
        self._ids = ids
        self.name = name

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    @classmethod
    def from_oracle(cls, oracle, name: str = "") -> "CSRGraph":
        """Compile any :class:`NeighborOracle` into CSR form.

        One pass over ``iter_nodes`` fixes the dense-id assignment (the
        oracle's stable iteration order), a second fills the rows.  When
        the oracle's nodes are already the ints ``0 … n − 1`` in order,
        no label table is kept and labels *are* ids.

        Raises
        ------
        GraphError
            If the oracle reports a neighbour that is not one of its
            nodes (a broken oracle, not a broken input).
        """
        order = list(oracle.iter_nodes())
        n = len(order)
        if _is_dense_int_labels(order):
            labels: Optional[List[Node]] = None
            ids: Optional[Dict[Node, int]] = None
        else:
            labels = order
            ids = {node: position for position, node in enumerate(order)}
            if len(ids) != n:
                raise GraphError("oracle iter_nodes() yielded a duplicate node")

        indptr = array("q", bytes(8 * (n + 1)))
        for i, node in enumerate(order):
            indptr[i + 1] = indptr[i] + oracle.degree(node)
        indices = array("q", bytes(8 * indptr[n]))
        for i, node in enumerate(order):
            if ids is None:
                row = [int(neighbor) for neighbor in oracle.neighbors(node)]
            else:
                try:
                    row = [ids[neighbor] for neighbor in oracle.neighbors(node)]
                except KeyError as exc:
                    raise GraphError(
                        f"oracle lists neighbour {exc.args[0]!r} of {node!r} "
                        f"but never yields it from iter_nodes()"
                    ) from exc
            row.sort()
            start = indptr[i]
            if len(row) != indptr[i + 1] - start:
                raise GraphError(
                    f"oracle degree({node!r}) disagrees with its neighbour list"
                )
            indices[start : start + len(row)] = array("q", row)
        return cls(
            indptr=indptr,
            indices=indices,
            labels=labels,
            ids=ids,
            name=name or getattr(oracle, "name", ""),
        )

    @classmethod
    def from_graph(cls, graph, name: str = "") -> "CSRGraph":
        """Alias of :meth:`from_oracle` for the common Graph case."""
        return cls.from_oracle(graph, name=name)

    # ------------------------------------------------------------------
    # Label / id translation
    # ------------------------------------------------------------------

    def _id(self, node: Node) -> int:
        if self._ids is not None:
            try:
                return self._ids[node]
            except (KeyError, TypeError):
                raise NodeNotFoundError(node)
        if (
            isinstance(node, int)
            and node is not True
            and node is not False
            and 0 <= node < self.num_nodes()
        ):
            return node
        raise NodeNotFoundError(node)

    def id_of(self, node: Node) -> int:
        """Dense int id of ``node`` (0 … n − 1).

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the graph.
        """
        return self._id(node)

    def label_of(self, node_id: int) -> Node:
        """Original label of dense id ``node_id``.

        Raises
        ------
        NodeNotFoundError
            If the id is out of range.
        """
        if not 0 <= node_id < self.num_nodes():
            raise NodeNotFoundError(node_id)
        if self._labels is None:
            return node_id
        return self._labels[node_id]

    @property
    def dense_labels(self) -> bool:
        """True when labels are the dense ids themselves (no table kept)."""
        return self._labels is None

    # ------------------------------------------------------------------
    # NeighborOracle surface (labels in, labels out)
    # ------------------------------------------------------------------

    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._indptr) - 1

    def degree(self, node: Node) -> int:
        """Degree of ``node``."""
        i = self._id(node)
        return self._indptr[i + 1] - self._indptr[i]

    def neighbors(self, node: Node) -> Sequence[Node]:
        """Neighbours of ``node``, ascending by dense id.

        Dense-labelled graphs return a flat int array slice (zero
        boxing until iterated); labelled graphs return the labels.
        """
        i = self._id(node)
        start, end = self._indptr[i], self._indptr[i + 1]
        if self._labels is None:
            return self._indices[start:end]
        labels = self._labels
        return [labels[j] for j in self._indices[start:end]]

    def iter_nodes(self) -> Iterator[Node]:
        """Iterate nodes in dense-id order (the compilation order)."""
        if self._labels is None:
            return iter(range(self.num_nodes()))
        return iter(self._labels)

    # ------------------------------------------------------------------
    # Graph-compatible conveniences
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.num_nodes()

    def __iter__(self) -> Iterator[Node]:
        return self.iter_nodes()

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<CSRGraph{label} with {self.num_nodes()} nodes "
            f"and {self.number_of_edges()} edges>"
        )

    def has_node(self, node: Node) -> bool:
        """True when ``node`` is in the graph."""
        try:
            self._id(node)
        except NodeNotFoundError:
            return False
        return True

    def has_edge(self, u: Node, v: Node) -> bool:
        """True when the undirected edge (u, v) exists — O(log degree)."""
        try:
            ui, vi = self._id(u), self._id(v)
        except NodeNotFoundError:
            return False
        start, end = self._indptr[ui], self._indptr[ui + 1]
        position = bisect_left(self._indices, vi, start, end)
        return position < end and self._indices[position] == vi

    def nodes(self) -> List[Node]:
        """All nodes as a list, in dense-id order."""
        return list(self.iter_nodes())

    def number_of_nodes(self) -> int:
        """Number of nodes (Graph spelling)."""
        return self.num_nodes()

    def number_of_edges(self) -> int:
        """Number of undirected edges."""
        return len(self._indices) // 2

    def iter_edges(self) -> Iterator[Tuple[Node, Node]]:
        """Yield every edge exactly once, from the lower dense id."""
        indptr, indices = self._indptr, self._indices
        for i in range(self.num_nodes()):
            u = self.label_of(i)
            for position in range(indptr[i], indptr[i + 1]):
                j = indices[position]
                if j > i:
                    yield (u, self.label_of(j))

    def neighbor_ids(self, node_id: int) -> array:
        """Neighbour dense ids of dense id ``node_id`` — the raw row.

        The hot-loop primitive: no label translation at all.
        """
        return self._indices[
            self._indptr[node_id] : self._indptr[node_id + 1]
        ]

    def min_degree(self) -> int:
        """Minimum degree (0 for the empty graph)."""
        indptr = self._indptr
        n = self.num_nodes()
        if n == 0:
            return 0
        return min(indptr[i + 1] - indptr[i] for i in range(n))

    def max_degree(self) -> int:
        """Maximum degree (0 for the empty graph)."""
        indptr = self._indptr
        n = self.num_nodes()
        if n == 0:
            return 0
        return max(indptr[i + 1] - indptr[i] for i in range(n))

    def to_graph(self):
        """Materialise back into a mutable dict-of-sets ``Graph``.

        Labels round-trip exactly — dense int ids come back as ints.
        """
        from repro.graphs.graph import Graph

        graph = Graph(name=self.name)
        for node in self.iter_nodes():
            graph.add_node(node)
        for u, v in self.iter_edges():
            graph.add_edge(u, v)
        return graph

    def nbytes(self) -> int:
        """Bytes held by the CSR buffers (label table excluded)."""
        return self._indptr.itemsize * len(self._indptr) + (
            self._indices.itemsize * len(self._indices)
        )
