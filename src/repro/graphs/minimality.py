"""Link minimality — Property 3 of the LHG definition.

A k-connected graph is *link-minimal* when removing **any** single edge
reduces its link or node connectivity: no edge is redundant, so the
flooding message bill (proportional to the edge count) is as small as it
can be for the chosen fault-tolerance level.

Two checkers are provided:

* :func:`is_link_minimal` — exact but expensive: recomputes connectivity
  with each edge removed in turn (O(m) connectivity runs).
* :func:`has_degree_witness_minimality` — a sound fast path: if the
  graph is exactly k-connected and **every edge touches a node of
  degree k**, then deleting that edge leaves its endpoint with degree
  k − 1, forcing λ ≤ k − 1 < k.  All the constructions in this library
  satisfy the witness, so verifying large instances stays cheap; the
  exact checker cross-validates the fast path in the test suite.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Edge, Graph
from repro.graphs.connectivity import (
    edge_connectivity,
    is_k_edge_connected,
    is_k_node_connected,
    node_connectivity,
)


def is_link_minimal(graph: Graph, k: Optional[int] = None) -> bool:
    """Return ``True`` if removing any one edge drops the connectivity.

    Parameters
    ----------
    k:
        The connectivity level to check against.  If omitted it is
        computed as min(κ, λ) of the graph itself.

    Notes
    -----
    Exact but O(m) connectivity computations; intended for tests and
    small-to-medium graphs.  Use :func:`has_degree_witness_minimality`
    for the large sweeps.
    """
    if graph.number_of_edges() == 0:
        return True
    if k is None:
        k = min(node_connectivity(graph), edge_connectivity(graph))
    if k == 0:
        # A disconnected graph cannot lose connectivity it does not have.
        return False
    for u, v in graph.edges():
        reduced = graph.without_edges([(u, v)])
        still_k = is_k_edge_connected(reduced, k) and is_k_node_connected(reduced, k)
        if still_k:
            return False
    return True


def redundant_edges(graph: Graph, k: Optional[int] = None) -> List[Edge]:
    """Return every edge whose removal leaves the graph k-connected.

    An empty result means the graph is link-minimal.  Useful in tests to
    pinpoint which edge violates Property 3.
    """
    if k is None:
        k = min(node_connectivity(graph), edge_connectivity(graph))
    extras: List[Edge] = []
    if k == 0:
        return extras
    for u, v in graph.edges():
        reduced = graph.without_edges([(u, v)])
        if is_k_edge_connected(reduced, k) and is_k_node_connected(reduced, k):
            extras.append((u, v))
    return extras


def has_degree_witness_minimality(graph: Graph, k: int) -> bool:
    """Sound fast-path minimality check via degree witnesses.

    Returns ``True`` if every edge has at least one endpoint of degree
    exactly ``k``.  Combined with the graph being k-connected this
    *implies* link minimality: removing such an edge leaves a node of
    degree k − 1, and since λ(G) ≤ min-degree, the link connectivity
    falls below k.

    A ``False`` answer is inconclusive (the graph may still be minimal);
    fall back to :func:`is_link_minimal` in that case.

    Raises
    ------
    GraphError
        If ``k`` is not positive.
    """
    if k <= 0:
        raise GraphError(f"connectivity level must be positive, got {k}")
    degrees = graph.degrees()
    return all(
        degrees[u] == k or degrees[v] == k for u, v in graph.iter_edges()
    )


def minimality_report(graph: Graph, k: int) -> Tuple[bool, str]:
    """Return ``(is_minimal, how)`` using the cheapest sufficient method.

    ``how`` is ``"degree-witness"`` when the fast path decided, or
    ``"exhaustive"`` when each edge had to be tested individually.
    """
    if has_degree_witness_minimality(graph, k):
        return True, "degree-witness"
    return is_link_minimal(graph, k), "exhaustive"


def excess_edges_over_harary_bound(graph: Graph, k: int) -> int:
    """Return ``m − ⌈kn/2⌉``: edges beyond Harary's absolute minimum.

    Zero means the graph matches the fewest edges *any* k-connected
    graph on n nodes can have; link-minimal LHGs may legitimately carry a
    small positive excess at non-regular (n, k) points, which experiment
    T1 tabulates.
    """
    import math

    n = graph.number_of_nodes()
    if k < 1 or n <= k:
        raise GraphError(f"needs n > k >= 1, got k={k}, n={n}")
    return graph.number_of_edges() - math.ceil(k * n / 2)
