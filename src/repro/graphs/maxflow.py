"""Dinic's maximum-flow algorithm on small integer capacities.

Connectivity of a graph reduces, through Menger's theorem, to maximum
flow in a derived unit-capacity network:

* **edge connectivity** λ(s, t): each undirected edge becomes a pair of
  opposite arcs of capacity 1; max-flow = number of edge-disjoint paths.
* **node connectivity** κ(s, t): every node is split into ``in``/``out``
  halves joined by a capacity-1 arc; max-flow = number of internally
  node-disjoint paths.

:class:`FlowNetwork` implements Dinic's algorithm with the standard
level-graph + blocking-flow structure.  On the unit-capacity networks
used here it runs in O(m·√m), comfortably fast for the graph sizes the
benchmarks sweep.  The min-cut side is exposed so the connectivity layer
can return cut certificates, not just numbers.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import GraphError

NodeId = Hashable

_INF = float("inf")


class _Arc:
    """One directed arc in the residual network.

    ``rev`` indexes the reverse arc inside the adjacency list of ``head``,
    the standard trick that lets residual updates touch both directions
    in O(1).  ``initial`` remembers the construction-time capacity so the
    flow an arc carried (``initial - capacity``) can be read back after
    the max-flow run; pure residual arcs have ``initial == 0``.
    """

    __slots__ = ("head", "capacity", "rev", "initial")

    def __init__(self, head: int, capacity: float, rev: int) -> None:
        self.head = head
        self.capacity = capacity
        self.rev = rev
        self.initial = capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Arc(head={self.head}, capacity={self.capacity})"


class FlowNetwork:
    """A directed flow network with Dinic max-flow.

    Nodes are arbitrary hashable labels, mapped internally to dense
    integer ids.  Arcs are added with :meth:`add_arc`; parallel arcs are
    allowed (their capacities simply add up during flow computation).

    Examples
    --------
    >>> net = FlowNetwork()
    >>> net.add_arc("s", "a", 1)
    >>> net.add_arc("a", "t", 1)
    >>> net.max_flow("s", "t")
    1.0
    """

    def __init__(self) -> None:
        self._ids: Dict[NodeId, int] = {}
        self._labels: List[NodeId] = []
        self._arcs: List[List[_Arc]] = []

    def _intern(self, label: NodeId) -> int:
        """Return the dense id for ``label``, creating it if new."""
        node_id = self._ids.get(label)
        if node_id is None:
            node_id = len(self._labels)
            self._ids[label] = node_id
            self._labels.append(label)
            self._arcs.append([])
        return node_id

    def add_node(self, label: NodeId) -> None:
        """Ensure ``label`` exists in the network."""
        self._intern(label)

    def add_arc(self, tail: NodeId, head: NodeId, capacity: float) -> None:
        """Add a directed arc ``tail → head`` with the given capacity.

        A zero-capacity residual arc is added in the opposite direction.

        Raises
        ------
        GraphError
            If the capacity is negative.
        """
        if capacity < 0:
            raise GraphError(f"arc capacity must be non-negative, got {capacity}")
        t = self._intern(tail)
        h = self._intern(head)
        self._arcs[t].append(_Arc(h, capacity, len(self._arcs[h])))
        self._arcs[h].append(_Arc(t, 0.0, len(self._arcs[t]) - 1))

    def number_of_nodes(self) -> int:
        """Return how many distinct node labels the network holds."""
        return len(self._labels)

    # ------------------------------------------------------------------
    # Dinic
    # ------------------------------------------------------------------

    def _bfs_levels(self, source: int, sink: int) -> Optional[List[int]]:
        """Build the level graph; return ``None`` if sink is unreachable."""
        levels = [-1] * len(self._labels)
        levels[source] = 0
        queue: deque = deque([source])
        while queue:
            node = queue.popleft()
            for arc in self._arcs[node]:
                if arc.capacity > 0 and levels[arc.head] < 0:
                    levels[arc.head] = levels[node] + 1
                    queue.append(arc.head)
        return levels if levels[sink] >= 0 else None

    def _dfs_push(
        self,
        node: int,
        sink: int,
        pushed: float,
        levels: List[int],
        arc_iter: List[int],
    ) -> float:
        """Push a blocking-flow augmenting path in the level graph."""
        if node == sink:
            return pushed
        arcs = self._arcs[node]
        while arc_iter[node] < len(arcs):
            arc = arcs[arc_iter[node]]
            if arc.capacity > 0 and levels[arc.head] == levels[node] + 1:
                flow = self._dfs_push(
                    arc.head, sink, min(pushed, arc.capacity), levels, arc_iter
                )
                if flow > 0:
                    arc.capacity -= flow
                    self._arcs[arc.head][arc.rev].capacity += flow
                    return flow
            arc_iter[node] += 1
        return 0.0

    def max_flow(
        self, source: NodeId, sink: NodeId, cutoff: Optional[float] = None
    ) -> float:
        """Compute the maximum flow from ``source`` to ``sink``.

        Parameters
        ----------
        cutoff:
            Optional early-exit bound: once the flow reaches ``cutoff``
            the computation stops and returns it.  Connectivity checks
            use this to answer "is κ ≥ k" without computing all of κ.

        Notes
        -----
        The computation mutates residual capacities; call it once per
        network instance (build a fresh network per query, which is what
        the connectivity layer does).

        Raises
        ------
        GraphError
            If source or sink is unknown, or source equals sink.
        """
        if source not in self._ids or sink not in self._ids:
            raise GraphError("source and sink must be nodes of the network")
        if source == sink:
            raise GraphError("source and sink must differ")
        s = self._ids[source]
        t = self._ids[sink]
        total = 0.0
        bound = _INF if cutoff is None else cutoff
        while total < bound:
            levels = self._bfs_levels(s, t)
            if levels is None:
                break
            arc_iter = [0] * len(self._labels)
            while total < bound:
                pushed = self._dfs_push(s, t, bound - total, levels, arc_iter)
                if pushed <= 0:
                    break
                total += pushed
        return total

    def iter_flows(self) -> List[Tuple[NodeId, NodeId, float]]:
        """Return ``(tail, head, flow)`` for every original arc with flow > 0.

        Call after :meth:`max_flow`.  Only construction-time arcs are
        reported (residual arcs are skipped), so the result is a valid
        flow assignment for the original network.
        """
        flows: List[Tuple[NodeId, NodeId, float]] = []
        for tail_id, arcs in enumerate(self._arcs):
            tail = self._labels[tail_id]
            for arc in arcs:
                carried = arc.initial - arc.capacity
                if arc.initial > 0 and carried > 0:
                    flows.append((tail, self._labels[arc.head], carried))
        return flows

    def min_cut_reachable(self, source: NodeId) -> Set[NodeId]:
        """Return labels reachable from ``source`` in the residual network.

        Call after :meth:`max_flow`; the returned set is the source side
        of a minimum cut.
        """
        if source not in self._ids:
            raise GraphError(f"{source!r} is not a node of the network")
        start = self._ids[source]
        seen = {start}
        queue: deque = deque([start])
        while queue:
            node = queue.popleft()
            for arc in self._arcs[node]:
                if arc.capacity > 0 and arc.head not in seen:
                    seen.add(arc.head)
                    queue.append(arc.head)
        return {self._labels[i] for i in seen}


def edge_disjoint_flow_network(edges: List[Tuple[NodeId, NodeId]]) -> FlowNetwork:
    """Build the unit network whose max-flow counts edge-disjoint paths.

    Each undirected edge ``(u, v)`` becomes two opposite unit arcs, so an
    s–t max-flow equals the maximum number of pairwise edge-disjoint
    undirected s–t paths (Menger, edge form).
    """
    net = FlowNetwork()
    for u, v in edges:
        net.add_arc(u, v, 1)
        net.add_arc(v, u, 1)
    return net


def node_disjoint_flow_network(
    nodes: List[NodeId],
    edges: List[Tuple[NodeId, NodeId]],
    source: NodeId,
    sink: NodeId,
) -> FlowNetwork:
    """Build the vertex-split unit network for node-disjoint path counting.

    Every node ``x`` other than ``source``/``sink`` is split into
    ``("in", x)`` and ``("out", x)`` joined by a unit arc; each undirected
    edge contributes arcs in both directions between the corresponding
    ``out``/``in`` halves.  The s–t max-flow then equals the maximum
    number of internally node-disjoint s–t paths (Menger, vertex form).

    Edge arcs carry capacity n (effectively infinite) so that every
    minimum cut consists purely of split arcs — which is what lets
    :func:`repro.graphs.connectivity.minimum_node_cut` read a node
    separator off the residual reachability.  The one exception is a
    direct ``source–sink`` edge, which is capped at 1 (it contributes
    exactly one disjoint path and no split arc bounds it).
    """

    def out_half(x: NodeId) -> Tuple[str, NodeId]:
        return ("src", x) if x == source else ("out", x)

    def in_half(x: NodeId) -> Tuple[str, NodeId]:
        return ("dst", x) if x == sink else ("in", x)

    big = len(nodes) + 1
    net = FlowNetwork()
    net.add_node(out_half(source))
    net.add_node(in_half(sink))
    for x in nodes:
        if x != source and x != sink:
            net.add_arc(("in", x), ("out", x), 1)
    for u, v in edges:
        if u != sink and v != source:
            capacity = 1 if (u == source and v == sink) else big
            net.add_arc(out_half(u), in_half(v), capacity)
        if v != sink and u != source:
            capacity = 1 if (v == source and u == sink) else big
            net.add_arc(out_half(v), in_half(u), capacity)
    return net
