"""Weisfeiler–Lehman graph hashing: label-free structural fingerprints.

The overlay rebuilds its topology on every membership event with fresh
member labels; to test that two rebuilds produced *the same structure*
(not just the same counts) we need an isomorphism-invariant hash.  The
1-dimensional Weisfeiler–Lehman refinement provides one: iteratively
hash each node's neighbourhood multiset, then hash the sorted multiset
of node colours.

Guarantees: isomorphic graphs always collide (the hash is a graph
invariant).  Non-isomorphic graphs *usually* differ, but 1-WL has a
well-known blind spot: on a connected d-regular graph every node keeps
the same colour forever, so two connected d-regular graphs of equal
size always collide.  The hash therefore folds in one extra invariant —
the sorted connected-component sizes — which separates e.g. C6 from two
disjoint triangles; genuinely regular connected pairs (an LHG vs a
random k-regular graph) remain indistinguishable to this hash, and the
tests document that.  For the overlay use-case (same construction,
different member labels) the hash is exact.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.graphs.graph import Graph, Node


def _digest(text: str) -> str:
    return hashlib.blake2b(text.encode(), digest_size=8).hexdigest()


def weisfeiler_lehman_hash(graph: Graph, iterations: int = 3) -> str:
    """Return an isomorphism-invariant hex digest of the graph.

    Parameters
    ----------
    iterations:
        WL refinement rounds; 3 suffices for diameter-O(log n) graphs of
        the sizes used here (each round propagates one hop further).

    Examples
    --------
    >>> from repro.graphs.generators.classic import cycle_graph
    >>> a = cycle_graph(6)
    >>> b = cycle_graph(6).relabeled({i: f"x{i}" for i in range(6)})
    >>> weisfeiler_lehman_hash(a) == weisfeiler_lehman_hash(b)
    True
    """
    from repro.graphs.traversal import connected_components

    component_sizes = sorted(len(c) for c in connected_components(graph))
    colors: Dict[Node, str] = {
        node: _digest(f"deg:{graph.degree(node)}") for node in graph
    }
    history: List[str] = [
        _digest(f"components:{component_sizes}"),
        _colors_signature(colors),
    ]
    for _ in range(max(0, iterations)):
        colors = {
            node: _digest(
                colors[node]
                + "|"
                + ",".join(sorted(colors[nbr] for nbr in graph.neighbors(node)))
            )
            for node in graph
        }
        history.append(_colors_signature(colors))
    return _digest(";".join(history))


def _colors_signature(colors: Dict[Node, str]) -> str:
    return _digest(",".join(sorted(colors.values())))


def wl_equivalent(a: Graph, b: Graph, iterations: int = 3) -> bool:
    """True when the two graphs are WL-indistinguishable.

    A ``True`` answer means "isomorphic as far as 1-WL can see"; a
    ``False`` answer is a proof of non-isomorphism.
    """
    if a.number_of_nodes() != b.number_of_nodes():
        return False
    if a.number_of_edges() != b.number_of_edges():
        return False
    return weisfeiler_lehman_hash(a, iterations) == weisfeiler_lehman_hash(
        b, iterations
    )
