"""Optional networkx interoperability.

The library itself never depends on networkx — the substrate is pure
stdlib so the reproduction stands on its own.  The test suite, however,
cross-validates connectivity, diameter and the Harary construction
against networkx, and downstream users may want to hand graphs to the
wider ecosystem.  Import errors are raised lazily so environments
without networkx can still use everything else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.oracle import oracle_edges, oracle_nodes

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx


def _networkx():
    """Import networkx lazily with a clear error when absent."""
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - env without networkx
        raise GraphError(
            "networkx is not installed; install repro[test] for interop"
        ) from exc
    return networkx


def to_networkx(graph) -> "networkx.Graph":
    """Convert any ``NeighborOracle`` to networkx (labels preserved).

    Dense int ids from a CSR or implicit backend arrive as Python ints,
    never strings — the round trip back through :func:`from_networkx`
    and CSR compilation reproduces the identical structure.
    """
    nx = _networkx()
    out = nx.Graph(name=getattr(graph, "name", ""))
    out.add_nodes_from(oracle_nodes(graph))
    out.add_edges_from(oracle_edges(graph))
    return out


def from_networkx(nx_graph: "networkx.Graph") -> Graph:
    """Convert from networkx, rejecting directed/multi graphs.

    Raises
    ------
    GraphError
        If the input graph is directed or a multigraph (the substrate
        models simple undirected graphs only).
    """
    if nx_graph.is_directed():
        raise GraphError("directed graphs are not supported")
    if nx_graph.is_multigraph():
        raise GraphError("multigraphs are not supported")
    graph = Graph(name=str(nx_graph.name) if nx_graph.name else "")
    graph.add_nodes_from(nx_graph.nodes())
    graph.add_edges_from(nx_graph.edges())
    return graph
