"""Structured log-diameter families from the related-work section.

The paper's introduction (and the follow-on literature) observes that
well-known families — hypercubes, de Bruijn graphs, butterflies — are
*instances* of Logarithmic Harary Graphs but exist only for very special
node counts (2^d, d^D, d·2^d …), which makes them unusable when the
network size n is arbitrary.  These generators exist so the benchmark
suite can chart exactly that sparsity of valid (n, k) pairs against the
Jenkins–Demers construction (experiment T4) and compare diameters where
the families do exist.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, List, Tuple

from repro.errors import GeneratorParameterError
from repro.graphs.graph import Graph


def hypercube_graph(dimension: int) -> Graph:
    """Return the ``dimension``-cube Q_d on 2^d nodes.

    Q_d is d-regular, d-connected, and has diameter d = log2(n): an LHG
    that exists only when n is a power of two.  Nodes are integers whose
    bits encode the coordinates.
    """
    if dimension < 1:
        raise GeneratorParameterError(f"dimension must be >= 1, got {dimension}")
    n = 1 << dimension
    graph = Graph(nodes=range(n), name=f"hypercube({dimension})")
    for v in range(n):
        for bit in range(dimension):
            graph.add_edge(v, v ^ (1 << bit))
    return graph


def debruijn_graph(symbols: int, length: int) -> Graph:
    """Return the undirected simple de Bruijn graph B(symbols, length).

    Nodes are the ``symbols^length`` strings over a ``symbols``-letter
    alphabet; the directed de Bruijn arcs (shift left, append a symbol)
    are taken as undirected edges with self-loops dropped.  Degree is at
    most ``2·symbols`` and the diameter is ``length`` = log_symbols(n):
    another special-(n, k) LHG-style family.

    Nodes are tuples of ints for clarity; relabel if integers are needed.
    """
    if symbols < 2:
        raise GeneratorParameterError(f"alphabet size must be >= 2, got {symbols}")
    if length < 1:
        raise GeneratorParameterError(f"word length must be >= 1, got {length}")
    graph = Graph(name=f"debruijn({symbols},{length})")
    for word in product(range(symbols), repeat=length):
        graph.add_node(word)
    for word in graph.nodes():
        for symbol in range(symbols):
            successor = word[1:] + (symbol,)
            if successor != word:
                graph.add_edge(word, successor)
    return graph


def butterfly_graph(dimension: int) -> Graph:
    """Return the wrap-around butterfly BF(dimension) on d·2^d nodes.

    Nodes are ``(level, word)`` with ``level ∈ 0…d−1`` and ``word`` a
    d-bit integer.  Each node connects to the next level (wrapping) via
    the *straight* edge (same word) and the *cross* edge (word with bit
    ``level`` flipped).  The graph is 4-regular with Θ(log n) diameter —
    the structure underlying the Viceroy overlay cited by the paper's
    related work.
    """
    if dimension < 2:
        raise GeneratorParameterError(f"dimension must be >= 2, got {dimension}")
    graph = Graph(name=f"butterfly({dimension})")
    size = 1 << dimension
    for level in range(dimension):
        for word in range(size):
            graph.add_node((level, word))
    for level in range(dimension):
        next_level = (level + 1) % dimension
        for word in range(size):
            graph.add_edge((level, word), (next_level, word))
            graph.add_edge((level, word), (next_level, word ^ (1 << level)))
    return graph


def cube_connected_cycles(dimension: int) -> Graph:
    """Return the cube-connected-cycles network CCC(dimension).

    Each hypercube corner is replaced by a ``dimension``-cycle; node
    ``(i, w)`` joins its cycle neighbours and the cycle node of the
    corner across hypercube dimension ``i``.  3-regular, Θ(log n)
    diameter, exists only for n = d·2^d.
    """
    if dimension < 3:
        raise GeneratorParameterError(f"dimension must be >= 3, got {dimension}")
    graph = Graph(name=f"ccc({dimension})")
    size = 1 << dimension
    for i in range(dimension):
        for w in range(size):
            graph.add_node((i, w))
    for i in range(dimension):
        for w in range(size):
            graph.add_edge((i, w), ((i + 1) % dimension, w))
            graph.add_edge((i, w), (i, w ^ (1 << i)))
    return graph


def torus_graph(rows: int, cols: int) -> Graph:
    """Return the 2-D torus (wrap-around grid), 4-regular for sizes ≥ 3."""
    if rows < 3 or cols < 3:
        raise GeneratorParameterError(
            f"torus needs both dimensions >= 3, got {rows}x{cols}"
        )
    graph = Graph(name=f"torus({rows},{cols})")
    for r in range(rows):
        for c in range(cols):
            graph.add_node((r, c))
    for r in range(rows):
        for c in range(cols):
            graph.add_edge((r, c), ((r + 1) % rows, c))
            graph.add_edge((r, c), (r, (c + 1) % cols))
    return graph


def valid_hypercube_sizes(max_n: int) -> List[int]:
    """Return the node counts ≤ ``max_n`` for which a hypercube exists."""
    sizes = []
    d = 1
    while (1 << d) <= max_n:
        sizes.append(1 << d)
        d += 1
    return sizes


def valid_debruijn_sizes(symbols: int, max_n: int) -> List[int]:
    """Return node counts ≤ ``max_n`` for which B(symbols, ·) exists."""
    if symbols < 2:
        raise GeneratorParameterError(f"alphabet size must be >= 2, got {symbols}")
    sizes = []
    n = symbols
    while n <= max_n:
        sizes.append(n)
        n *= symbols
    return sizes


def valid_butterfly_sizes(max_n: int) -> List[int]:
    """Return node counts ≤ ``max_n`` for which a wrapped butterfly exists."""
    sizes = []
    d = 2
    while d * (1 << d) <= max_n:
        sizes.append(d * (1 << d))
        d += 1
    return sizes


def special_family_coverage(max_n: int) -> Iterator[Tuple[str, int]]:
    """Yield ``(family, n)`` for every special-family size up to ``max_n``.

    Used by the coverage benchmark (T4) to visualise how sparse the
    related-work families are compared with the LHG constructions.
    """
    for n in valid_hypercube_sizes(max_n):
        yield ("hypercube", n)
    for n in valid_debruijn_sizes(2, max_n):
        yield ("debruijn-2", n)
    for n in valid_butterfly_sizes(max_n):
        yield ("butterfly", n)
