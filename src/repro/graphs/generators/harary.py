"""Classic Harary graphs H(k, n) — the paper's eponymous baseline.

Harary (1962) showed the minimum number of edges of any k-connected
graph on n nodes is ⌈kn/2⌉ and gave constructions achieving it.  The
resulting graphs are k-node-connected, k-edge-connected and
link-minimal — LHG Properties 1–3 — but their diameter is Θ(n/k):
**linear** in the network size.  That linear diameter is exactly the
inefficiency Jenkins & Demers' Logarithmic Harary Graphs remove, so
H(k, n) is the baseline every diameter/latency experiment compares
against.

Construction cases (following Harary's original paper):

* ``k`` even, ``k = 2r``: the circulant C_n(1, …, r).
* ``k`` odd, ``n`` even, ``k = 2r + 1``: C_n(1, …, r) plus the diagonal
  offset n/2.
* ``k`` odd, ``n`` odd: C_n(1, …, r) plus (n+1)/2 near-diagonal edges;
  node 0 ends with degree k + 1 and every other node with degree k
  (a perfectly k-regular graph cannot exist when ``k·n`` is odd).
"""

from __future__ import annotations

import math

from repro.errors import GeneratorParameterError
from repro.graphs.graph import Graph
from repro.graphs.generators.classic import circulant_graph, complete_graph, path_graph


def harary_minimum_edges(k: int, n: int) -> int:
    """Return ⌈kn/2⌉ — the fewest edges any k-connected n-node graph can have."""
    if k < 1 or n <= k:
        raise GeneratorParameterError(
            f"a k-connected graph needs n > k >= 1, got k={k}, n={n}"
        )
    return math.ceil(k * n / 2)


def harary_graph(k: int, n: int) -> Graph:
    """Return the classic Harary graph H(k, n).

    The result is k-connected with exactly ⌈kn/2⌉ edges — the minimum
    possible.  Its diameter is roughly ``n / (2 ⌊k/2⌋)``, i.e. linear in
    ``n`` for fixed ``k``.

    Parameters
    ----------
    k:
        Desired connectivity, ``1 ≤ k < n``.
    n:
        Number of nodes.

    Raises
    ------
    GeneratorParameterError
        If ``k < 1`` or ``n ≤ k``.

    Examples
    --------
    >>> g = harary_graph(4, 10)
    >>> g.number_of_edges()
    20
    >>> g.regular_degree()
    4
    """
    if k < 1 or n <= k:
        raise GeneratorParameterError(
            f"harary_graph needs n > k >= 1, got k={k}, n={n}"
        )
    if k == 1:
        graph = path_graph(n)
        graph.name = f"harary({k},{n})"
        return graph
    if k == n - 1:
        graph = complete_graph(n)
        graph.name = f"harary({k},{n})"
        return graph

    half = k // 2
    if k % 2 == 0:
        graph = circulant_graph(n, list(range(1, half + 1)))
    elif n % 2 == 0:
        graph = circulant_graph(n, list(range(1, half + 1)) + [n // 2])
    else:
        graph = circulant_graph(n, list(range(1, half + 1)))
        # Odd k, odd n: k-regularity is impossible (kn odd), so Harary's
        # construction gives node 0 degree k + 1 and everyone else k.
        graph.add_edge(0, (n - 1) // 2)
        graph.add_edge(0, (n + 1) // 2)
        for i in range(1, (n - 1) // 2):
            graph.add_edge(i, i + (n + 1) // 2)
    graph.name = f"harary({k},{n})"
    return graph


def harary_diameter_estimate(k: int, n: int) -> int:
    """Return the hop diameter the circulant core of H(k, n) implies.

    For even ``k = 2r`` the farthest pair is ⌈(n/2)/r⌉ hops apart; odd
    ``k`` gains the diagonal shortcut, roughly halving the distance but
    leaving it Θ(n/k).  The exact value is computed in tests/benches via
    BFS; this closed form exists so benches can annotate expected scale.
    """
    if k < 1 or n <= k:
        raise GeneratorParameterError(
            f"needs n > k >= 1, got k={k}, n={n}"
        )
    if k == n - 1:
        return 1
    half = max(1, k // 2)
    if k % 2 == 0:
        return math.ceil((n // 2) / half)
    # Diagonal edges cut the ring in two; worst case is about a quarter
    # of the ring at stride ``half`` plus one diagonal hop.
    return math.ceil((n / 4) / half) + 1
