"""Classic deterministic graph generators.

These small families serve three roles in the reproduction:

* building blocks for the LHG constructions (balanced trees, stars),
* edge cases for the test suite (paths, cycles, complete graphs have
  known κ, λ, diameter, and regularity), and
* baselines in the related-work comparisons.

Nodes are integers ``0 … n-1`` unless stated otherwise.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import GeneratorParameterError
from repro.graphs.graph import Graph


def empty_graph(n: int) -> Graph:
    """Return ``n`` isolated nodes.

    Raises
    ------
    GeneratorParameterError
        If ``n`` is negative.
    """
    if n < 0:
        raise GeneratorParameterError(f"n must be non-negative, got {n}")
    return Graph(nodes=range(n), name=f"empty({n})")


def path_graph(n: int) -> Graph:
    """Return the path P_n on ``n`` nodes (n − 1 edges)."""
    if n < 0:
        raise GeneratorParameterError(f"n must be non-negative, got {n}")
    graph = Graph(nodes=range(n), name=f"path({n})")
    graph.add_edges_from((i, i + 1) for i in range(n - 1))
    return graph


def cycle_graph(n: int) -> Graph:
    """Return the cycle C_n (requires n ≥ 3).

    C_n is exactly the Harary graph H(2, n): 2-connected, 2-regular,
    link-minimal, but with linear diameter ⌊n/2⌋ — the canonical example
    of why LHGs are needed.
    """
    if n < 3:
        raise GeneratorParameterError(f"a cycle needs n >= 3, got {n}")
    graph = Graph(nodes=range(n), name=f"cycle({n})")
    graph.add_edges_from((i, (i + 1) % n) for i in range(n))
    return graph


def complete_graph(n: int) -> Graph:
    """Return the complete graph K_n."""
    if n < 0:
        raise GeneratorParameterError(f"n must be non-negative, got {n}")
    graph = Graph(nodes=range(n), name=f"complete({n})")
    graph.add_edges_from((i, j) for i in range(n) for j in range(i + 1, n))
    return graph


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """Return K_{a,b} with parts ``0…a-1`` and ``a…a+b-1``.

    K_{k,k} is the smallest Jenkins–Demers LHG (the (2k, k) base case),
    which makes this generator a handy independent witness in tests.
    """
    if a < 0 or b < 0:
        raise GeneratorParameterError(f"parts must be non-negative, got {a}, {b}")
    graph = Graph(nodes=range(a + b), name=f"complete_bipartite({a},{b})")
    graph.add_edges_from((i, a + j) for i in range(a) for j in range(b))
    return graph


def star_graph(n: int) -> Graph:
    """Return a star: hub 0 joined to leaves ``1 … n``.

    The result has ``n + 1`` nodes, matching the usual S_n convention.
    """
    if n < 0:
        raise GeneratorParameterError(f"n must be non-negative, got {n}")
    graph = Graph(nodes=range(n + 1), name=f"star({n})")
    graph.add_edges_from((0, i) for i in range(1, n + 1))
    return graph


def balanced_tree(branching: int, height: int) -> Graph:
    """Return the perfectly balanced tree with the given branching factor.

    The root is node 0; children of node ``v`` are ``v·b + 1 … v·b + b``
    in level order.  Height 0 yields the single root.

    Raises
    ------
    GeneratorParameterError
        If ``branching < 1`` or ``height < 0``.
    """
    if branching < 1:
        raise GeneratorParameterError(
            f"branching factor must be >= 1, got {branching}"
        )
    if height < 0:
        raise GeneratorParameterError(f"height must be >= 0, got {height}")
    if branching == 1:
        return path_graph(height + 1)
    n = (branching ** (height + 1) - 1) // (branching - 1)
    graph = Graph(nodes=range(n), name=f"balanced_tree({branching},{height})")
    for v in range(n):
        for c in range(1, branching + 1):
            child = v * branching + c
            if child < n:
                graph.add_edge(v, child)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """Return the ``rows × cols`` 2-D grid; node ``(r, c)`` pairs as labels."""
    if rows < 1 or cols < 1:
        raise GeneratorParameterError(
            f"grid dimensions must be positive, got {rows}x{cols}"
        )
    graph = Graph(name=f"grid({rows},{cols})")
    for r in range(rows):
        for c in range(cols):
            graph.add_node((r, c))
            if r > 0:
                graph.add_edge((r - 1, c), (r, c))
            if c > 0:
                graph.add_edge((r, c - 1), (r, c))
    return graph


def circulant_graph(n: int, offsets: List[int]) -> Graph:
    """Return the circulant graph C_n(offsets).

    Node ``i`` is joined to ``(i ± d) mod n`` for each offset ``d``.
    Classic Harary graphs are circulants plus at most one diagonal, so
    this generator underpins :mod:`repro.graphs.generators.harary`.

    Raises
    ------
    GeneratorParameterError
        If ``n < 3`` or any offset lies outside ``1 … n//2``.
    """
    if n < 3:
        raise GeneratorParameterError(f"circulant needs n >= 3, got {n}")
    graph = Graph(nodes=range(n), name=f"circulant({n},{sorted(set(offsets))})")
    for d in offsets:
        if not 1 <= d <= n // 2:
            raise GeneratorParameterError(
                f"offset {d} outside valid range 1..{n // 2}"
            )
        for i in range(n):
            graph.add_edge(i, (i + d) % n)
    return graph


def wheel_graph(n: int) -> Graph:
    """Return the wheel W_n: a hub 0 joined to every node of a cycle ``1…n``."""
    if n < 3:
        raise GeneratorParameterError(f"a wheel needs n >= 3 rim nodes, got {n}")
    graph = Graph(nodes=range(n + 1), name=f"wheel({n})")
    for i in range(1, n + 1):
        graph.add_edge(0, i)
        graph.add_edge(i, 1 + (i % n))
    return graph


def petersen_graph() -> Graph:
    """Return the Petersen graph — a 3-regular, 3-connected test classic."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    return Graph(nodes=range(10), edges=outer + inner + spokes, name="petersen")


def edge_list_pairs(graph: Graph) -> List[Tuple[int, int]]:
    """Return the edge list of an integer-labelled graph, sorted canonically.

    Convenience for table output and golden tests.
    """
    return sorted(tuple(sorted(edge)) for edge in graph.iter_edges())
