"""Random graph generators used as probabilistic baselines.

Gossip-based dissemination (the main alternative the paper's intro
discusses) runs over random topologies whose connectivity holds only
*with high probability*.  These generators supply those baselines:

* :func:`gnp_random_graph` — Erdős–Rényi G(n, p);
* :func:`random_regular_graph` — uniform-ish d-regular graphs via the
  pairing/configuration model with rejection;
* :func:`random_tree` — uniform labelled trees via Prüfer sequences;
* :func:`random_k_out_graph` — each node picks k random neighbours, the
  "k-random graph" of deterministic-dissemination systems like Araneola.

Every generator takes an explicit ``seed`` so experiments replay
exactly; no module-level random state is touched.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import GeneratorParameterError
from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected


def gnp_random_graph(n: int, p: float, seed: int = 0) -> Graph:
    """Return an Erdős–Rényi G(n, p) sample.

    Raises
    ------
    GeneratorParameterError
        If ``n`` is negative or ``p`` is outside [0, 1].
    """
    if n < 0:
        raise GeneratorParameterError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise GeneratorParameterError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    graph = Graph(nodes=range(n), name=f"gnp({n},{p})")
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                graph.add_edge(i, j)
    return graph


def connected_gnp_graph(
    n: int, p: float, seed: int = 0, max_tries: int = 100
) -> Graph:
    """Return a connected G(n, p) sample, rejecting disconnected draws.

    Raises
    ------
    GeneratorParameterError
        If no connected sample is found within ``max_tries`` attempts —
        a sign that ``p`` is below the connectivity threshold ln(n)/n.
    """
    for attempt in range(max_tries):
        graph = gnp_random_graph(n, p, seed=seed + attempt)
        if is_connected(graph):
            return graph
    raise GeneratorParameterError(
        f"no connected G({n}, {p}) sample in {max_tries} tries; "
        f"p is likely below the ~ln(n)/n connectivity threshold"
    )


def random_regular_graph(
    degree: int, n: int, seed: int = 0, max_tries: int = 200
) -> Graph:
    """Return a simple ``degree``-regular graph on ``n`` nodes.

    Uses the pairing (configuration) model: put ``degree`` stubs on each
    node, draw a uniform perfect matching of stubs, reject drawings with
    self-loops or parallel edges.  Rejection keeps the distribution close
    to uniform for the moderate degrees used in benchmarks.

    Raises
    ------
    GeneratorParameterError
        If ``degree·n`` is odd, ``degree ≥ n``, or no simple pairing is
        found within ``max_tries``.
    """
    if degree < 0 or n < 0:
        raise GeneratorParameterError(
            f"degree and n must be non-negative, got {degree}, {n}"
        )
    if degree >= n and n > 0:
        raise GeneratorParameterError(
            f"degree {degree} impossible on {n} nodes (needs degree < n)"
        )
    if (degree * n) % 2 != 0:
        raise GeneratorParameterError(
            f"degree*n must be even, got {degree}*{n}"
        )
    if degree == 0 or n == 0:
        return Graph(nodes=range(n), name=f"random_regular({degree},{n})")

    rng = random.Random(seed)
    for _ in range(max_tries):
        edges = _pair_stubs_incrementally(degree, n, rng)
        if edges is not None:
            graph = Graph(nodes=range(n), name=f"random_regular({degree},{n})")
            graph.add_edges_from(edges)
            return graph
    raise GeneratorParameterError(
        f"no simple {degree}-regular pairing on {n} nodes in {max_tries} tries"
    )


def _pair_stubs_incrementally(degree: int, n: int, rng: random.Random):
    """One Steger–Wormald-style pairing attempt.

    Pairs stubs one edge at a time, rejecting only the individual draw
    (not the whole matching) when it would create a loop or a duplicate;
    gives up and returns ``None`` only when no suitable pair remains.
    """
    stubs = [v for v in range(n) for _ in range(degree)]
    rng.shuffle(stubs)
    edges = set()
    while stubs:
        placed = False
        for _ in range(10 * len(stubs)):
            i = rng.randrange(len(stubs))
            j = rng.randrange(len(stubs))
            if i == j:
                continue
            u, v = stubs[i], stubs[j]
            if u == v or (min(u, v), max(u, v)) in edges:
                continue
            edges.add((min(u, v), max(u, v)))
            for index in sorted((i, j), reverse=True):
                stubs[index] = stubs[-1]
                stubs.pop()
            placed = True
            break
        if not placed:
            return None  # dead end: remaining stubs admit no simple edge
    return edges


def random_tree(n: int, seed: int = 0) -> Graph:
    """Return a uniformly random labelled tree on ``n`` nodes (Prüfer).

    Trees are the canonical low-cost but failure-fragile dissemination
    topology (one crash partitions them) — the baseline motivating the
    paper's k-connectivity requirement.
    """
    if n < 1:
        raise GeneratorParameterError(f"a tree needs n >= 1, got {n}")
    graph = Graph(nodes=range(n), name=f"random_tree({n})")
    if n == 1:
        return graph
    if n == 2:
        graph.add_edge(0, 1)
        return graph
    rng = random.Random(seed)
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in sequence:
        degree[v] += 1
    # Standard Prüfer decoding: repeatedly join the smallest leaf to the
    # next sequence element.
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in sequence:
        leaf = heapq.heappop(leaves)
        graph.add_edge(leaf, v)
        degree[leaf] = 0  # consumed; must not reappear as a final leaf
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    last = [v for v in range(n) if degree[v] == 1]
    graph.add_edge(last[0], last[1])
    return graph


def random_k_out_graph(n: int, k: int, seed: int = 0) -> Graph:
    """Return the undirected union of ``k`` random out-choices per node.

    Every node selects ``k`` distinct random targets; the union of the
    selections, viewed undirected, gives degree between k and ~2k.  This
    is the "k-random graph" used by deterministic dissemination systems
    (e.g. Araneola) that the paper's intro contrasts with LHGs.
    """
    if n < 2:
        raise GeneratorParameterError(f"needs n >= 2, got {n}")
    if not 1 <= k < n:
        raise GeneratorParameterError(f"needs 1 <= k < n, got k={k}, n={n}")
    rng = random.Random(seed)
    graph = Graph(nodes=range(n), name=f"random_k_out({n},{k})")
    for v in range(n):
        others = [u for u in range(n) if u != v]
        for target in rng.sample(others, k):
            graph.add_edge(v, target)
    return graph


def random_hamiltonian_expander(
    n: int, cycles: int, seed: int = 0, max_tries: int = 200
) -> Graph:
    """Return the union of ``cycles`` independent random Hamiltonian cycles.

    Law & Siu's expander construction (cited in the paper's related
    work): superposing d random Hamiltonian cycles gives a 2d-regular
    graph that is an expander with high probability.  Cycles are resampled
    if their union would create a duplicate edge, keeping the graph simple.
    """
    if n < 3:
        raise GeneratorParameterError(f"needs n >= 3, got {n}")
    if cycles < 1:
        raise GeneratorParameterError(f"needs cycles >= 1, got {cycles}")
    if 2 * cycles >= n:
        raise GeneratorParameterError(
            f"{cycles} cycles need n > {2 * cycles} for a simple graph"
        )
    rng = random.Random(seed)
    graph = Graph(nodes=range(n), name=f"hamiltonian_expander({n},{cycles})")
    built = 0
    for _ in range(max_tries):
        if built == cycles:
            break
        order: List[int] = list(range(n))
        rng.shuffle(order)
        cycle_edges = list(zip(order, order[1:] + order[:1]))
        if any(graph.has_edge(u, v) for u, v in cycle_edges):
            continue
        graph.add_edges_from(cycle_edges)
        built += 1
    if built != cycles:
        raise GeneratorParameterError(
            f"could not superpose {cycles} edge-disjoint Hamiltonian cycles "
            f"on {n} nodes in {max_tries} tries"
        )
    return graph


def sample_failure_set(
    nodes: List[object], count: int, seed: int = 0, exclude: Optional[set] = None
) -> List[object]:
    """Return ``count`` distinct nodes drawn without replacement.

    Shared helper for failure-injection experiments; ``exclude`` protects
    nodes (e.g. the flood source) from selection.

    Raises
    ------
    GeneratorParameterError
        If fewer than ``count`` eligible nodes exist.
    """
    eligible = [v for v in nodes if not exclude or v not in exclude]
    if count > len(eligible):
        raise GeneratorParameterError(
            f"cannot sample {count} failures from {len(eligible)} eligible nodes"
        )
    return random.Random(seed).sample(eligible, count)
