"""Implicit Jenkins–Demers oracle: ``neighbors(v)`` by arithmetic.

The JD construction is completely determined by its
:class:`~repro.core.jenkins_demers.JDPlan` — the conversion count α and
the added-leaf pair count p.  Because growth converts leaves in FIFO
order, every structural question about the abstract tree has a closed
form, so the pasted graph never needs to be materialised:

* the tree has ``m = α + 1`` interiors; conversion ``j`` converts leaf
  ``j`` into interior ``j + 1``;
* leaf slot ids run ``0 … T − 1`` with ``T = k + α(k − 1)``; slots
  ``0 … α − 1`` are converted, slots ``α … T − 1`` are live;
* the parent of leaf slot ``j`` is interior ``0`` when ``j < k`` and
  ``(j − k) // (k − 1) + 1`` otherwise; interior ``i ≥ 1``'s parent is
  the parent of the leaf it replaced, ``leaf_parent(i − 1)``;
* interior ``i``'s leaf slots are ``0 … k − 1`` for the root and
  ``k + (i − 1)(k − 1) … k + i(k − 1) − 1`` otherwise;
* the p host interiors for added-leaf pairs are the first p non-root
  interiors with a live leaf child — the *consecutive* ids
  ``i_min … i_min + p − 1`` with ``i_min = max(1, leaf_parent(α))``,
  matching :func:`repro.core.jenkins_demers.jd_schema` exactly.

Graph nodes get **dense int ids** in a fixed layout — interior
``(copy c, id i)`` is ``c·m + i``; live structural leaf ``j`` is
``k·m + (j − α)``; added leaf ``e`` is ``k·m + live + e`` — so CSR
compilation keeps no label table and flooding runs on flat int arrays.
:meth:`label_of` / :meth:`id_of` give the exact bijection to the
``("T", copy, i)`` / ``("L", leaf_id)`` labels
:func:`~repro.core.tree_schema.paste_copies` would have used, which is
how the equivalence tests pin this oracle to the materialised graph.

Memory: O(1) per instance, O(k) per ``neighbors`` call; the graph
itself never exists.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Tuple

from repro.errors import NodeNotFoundError
from repro.core.jenkins_demers import RULE_NAME, JDPlan, jd_feasibility

Node = Hashable


def _leaf_parent(j: int, k: int) -> int:
    """Interior id the structural leaf slot ``j`` hangs off."""
    if j < k:
        return 0
    return (j - k) // (k - 1) + 1


def _leaf_slot_range(i: int, k: int) -> Tuple[int, int]:
    """Half-open range of structural leaf-slot ids under interior ``i``."""
    if i == 0:
        return 0, k
    return k + (i - 1) * (k - 1), k + i * (k - 1)


class ImplicitJDOracle:
    """The Jenkins–Demers LHG for (n, k) as an arithmetic neighbour oracle.

    Satisfies the :class:`~repro.graphs.oracle.NeighborOracle` protocol
    with dense int node ids ``0 … n − 1``.

    Raises
    ------
    InfeasiblePairError
        If the JD rule has no graph for (n, k) — exactly when
        :func:`~repro.core.jenkins_demers.jd_schema` would refuse.
    """

    __slots__ = (
        "n",
        "k",
        "name",
        "_alpha",
        "_pairs",
        "_m",
        "_slots",
        "_live",
        "_i_min",
    )

    def __init__(self, n: int, k: int) -> None:
        plan = jd_feasibility(n, k)
        if plan is None:
            from repro.core.jenkins_demers import jd_schema

            jd_schema(n, k)  # raises InfeasiblePairError with the real reason
            raise AssertionError("unreachable")  # pragma: no cover
        self.n = n
        self.k = k
        self.name = f"jenkins_demers({n},{k})"
        self._alpha = plan.conversions
        self._pairs = plan.extra_pairs
        self._m = plan.conversions + 1
        self._slots = k + plan.conversions * (k - 1)
        self._live = self._slots - plan.conversions
        self._i_min = max(1, _leaf_parent(plan.conversions, k))

    # ------------------------------------------------------------------
    # Shape accounting
    # ------------------------------------------------------------------

    @property
    def plan(self) -> JDPlan:
        """The feasible build plan this oracle realises."""
        return JDPlan(
            n=self.n, k=self.k, conversions=self._alpha, extra_pairs=self._pairs
        )

    @property
    def rule(self) -> str:
        """Name of the construction rule."""
        return RULE_NAME

    def _leaf_base(self) -> int:
        return self.k * self._m

    def _is_host(self, interior_id: int) -> bool:
        return (
            self._pairs > 0
            and self._i_min <= interior_id < self._i_min + self._pairs
        )

    def height(self) -> int:
        """Height of the abstract tree (O(log n) parent walk)."""
        if self._alpha == 0:
            return 1
        depth = 0
        interior = self._alpha  # parent of the deepest leaf slot
        while interior != 0:
            interior = _leaf_parent(interior - 1, self.k)
            depth += 1
        return depth + 1

    # ------------------------------------------------------------------
    # NeighborOracle surface
    # ------------------------------------------------------------------

    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.n

    def degree(self, node: Node) -> int:
        """Degree of ``node`` — every node has degree k except added-leaf
        hosts, which have k + 2."""
        v = self._check(node)
        leaf_base = self._leaf_base()
        if v < leaf_base:
            interior = v % self._m
            return self.k + 2 if self._is_host(interior) else self.k
        return self.k

    def neighbors(self, node: Node) -> List[int]:
        """Neighbours of ``node``, computed arithmetically (O(k))."""
        v = self._check(node)
        k, m, alpha = self.k, self._m, self._alpha
        leaf_base = self._leaf_base()
        if v < leaf_base:
            copy, interior = divmod(v, m)
            base = copy * m
            out = []
            if interior > 0:
                out.append(base + _leaf_parent(interior - 1, k))
            lo, hi = _leaf_slot_range(interior, k)
            for slot in range(lo, hi):
                if slot < alpha:
                    out.append(base + slot + 1)
                else:
                    out.append(leaf_base + slot - alpha)
            if self._is_host(interior):
                first = leaf_base + self._live + 2 * (interior - self._i_min)
                out.append(first)
                out.append(first + 1)
            return out
        offset = v - leaf_base
        if offset < self._live:
            parent = _leaf_parent(offset + alpha, k)
        else:
            parent = self._i_min + (offset - self._live) // 2
        return [copy * m + parent for copy in range(k)]

    def iter_nodes(self) -> Iterator[int]:
        """Nodes are the dense ints 0 … n − 1, in order."""
        return iter(range(self.n))

    # ------------------------------------------------------------------
    # Graph-compatible conveniences
    # ------------------------------------------------------------------

    def _check(self, node: Node) -> int:
        if (
            isinstance(node, int)
            and node is not True
            and node is not False
            and 0 <= node < self.n
        ):
            return node
        raise NodeNotFoundError(node)

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[int]:
        return self.iter_nodes()

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __repr__(self) -> str:
        return (
            f"<ImplicitJDOracle n={self.n} k={self.k} "
            f"conversions={self._alpha} extra_pairs={self._pairs}>"
        )

    def has_node(self, node: Node) -> bool:
        """True for the ints 0 … n − 1."""
        try:
            self._check(node)
        except NodeNotFoundError:
            return False
        return True

    def has_edge(self, u: Node, v: Node) -> bool:
        """True when the undirected edge (u, v) exists — O(k) scan."""
        if not (self.has_node(u) and self.has_node(v)):
            return False
        return v in self.neighbors(u)

    def nodes(self) -> List[int]:
        """All nodes as a list (prefer :meth:`iter_nodes` at scale)."""
        return list(range(self.n))

    def number_of_nodes(self) -> int:
        """Number of nodes (Graph spelling)."""
        return self.n

    def number_of_edges(self) -> int:
        """Edge count from the plan: k·(m − 1) tree edges plus k per leaf."""
        leaves = self._live + 2 * self._pairs
        return self.k * (self._m - 1) + self.k * leaves

    # ------------------------------------------------------------------
    # Label bijection to the materialised construction
    # ------------------------------------------------------------------

    def label_of(self, node_id: int) -> Tuple:
        """The ``paste_copies`` label of dense id ``node_id``.

        Interiors map to ``("T", copy, interior_id)``; live structural
        leaf slots and added leaves map to ``("L", leaf_slot_id)``.
        """
        v = self._check(node_id)
        leaf_base = self._leaf_base()
        if v < leaf_base:
            copy, interior = divmod(v, self._m)
            return ("T", copy, interior)
        offset = v - leaf_base
        if offset < self._live:
            return ("L", offset + self._alpha)
        return ("L", self._slots + (offset - self._live))

    def id_of(self, label: Node) -> int:
        """Inverse of :meth:`label_of`.

        Raises
        ------
        NodeNotFoundError
            If the label does not name a node of this construction.
        """
        if isinstance(label, tuple) and len(label) == 3 and label[0] == "T":
            _, copy, interior = label
            if 0 <= copy < self.k and 0 <= interior < self._m:
                return copy * self._m + interior
        elif isinstance(label, tuple) and len(label) == 2 and label[0] == "L":
            _, slot = label
            if self._alpha <= slot < self._slots:
                return self._leaf_base() + (slot - self._alpha)
            extra = slot - self._slots
            if 0 <= extra < 2 * self._pairs:
                return self._leaf_base() + self._live + extra
        raise NodeNotFoundError(label)

    # ------------------------------------------------------------------
    # Structural certification
    # ------------------------------------------------------------------

    def structural_proofs(self):
        """Certify LHG Properties 1–4 from the construction arithmetic.

        Returns a :class:`repro.core.certificates.StructuralProofs`.
        The premises are *checked*, not assumed: the host window must
        keep every added-leaf host degree-isolated from its tree parent
        and children (the P3 degree witness), and the tree-height bound
        must fit inside the logarithmic diameter budget (P4).
        """
        from repro.core.certificates import assemble_structural_proofs

        # P3 degree witness: every edge needs an endpoint of degree
        # exactly k.  Leaf edges always have one (leaves have degree k);
        # an interior-interior edge fails only if both endpoints are
        # hosts, so check each host's tree parent and interior children.
        witness_ok = True
        detail = ""
        for host in range(self._i_min, self._i_min + self._pairs):
            parent = _leaf_parent(host - 1, self.k)
            if self._is_host(parent):
                witness_ok = False
                detail = f"hosts {parent} and {host} are tree-adjacent"
                break
            lo, hi = _leaf_slot_range(host, self.k)
            for slot in range(lo, min(hi, self._alpha)):
                if self._is_host(slot + 1):
                    witness_ok = False
                    detail = f"hosts {host} and {slot + 1} are tree-adjacent"
                    break
            if not witness_ok:
                break

        return assemble_structural_proofs(
            n=self.n,
            k=self.k,
            rule=RULE_NAME,
            height=self.height(),
            tree_ok=True,
            tree_detail=(
                f"JD plan α={self._alpha}, p={self._pairs}: FIFO-grown tree "
                f"with m={self._m} interiors, all leaves shared"
            ),
            degree_witness_ok=witness_ok,
            degree_witness_detail=detail
            or (
                f"all leaves have degree k={self.k}; every interior-interior "
                f"edge touches a non-host interior of degree exactly k"
            ),
            num_edges=self.number_of_edges(),
        )
