"""Serialisation for graph backends (any ``NeighborOracle``).

Three formats, chosen for the workflows the repo actually has:

* **edge list** (text) — interchange with graph tools and golden files;
* **JSON adjacency** — lossless round-trip including isolated nodes and
  the graph name;
* **DOT** — quick visual inspection with Graphviz.

Node labels survive JSON round-trips when they are JSON-representable
scalars or (nested) lists/tuples; tuples are restored as tuples, which
covers every construction in this library (LHG nodes are tuples like
``("copy", 2, 5)``).  Int labels stay ints — a graph compiled to
:class:`~repro.graphs.csr.CSRGraph` (dense int ids), serialised, and
read back compiles to an identical CSR structure; nothing is ever
stringified.  The writers accept any
:class:`~repro.graphs.oracle.NeighborOracle`; readers return a mutable
:class:`Graph`.
"""

from __future__ import annotations

import json
from typing import Any, List, TextIO

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.oracle import oracle_edges, oracle_nodes


def write_edge_list(graph, stream: TextIO) -> None:
    """Write one ``u<TAB>v`` line per edge (labels via ``repr``).

    Lossy for non-string labels and isolated nodes; meant for human
    inspection and diffing, not round-trips.  Use JSON for fidelity.
    """
    for u, v in sorted(oracle_edges(graph), key=lambda e: (repr(e[0]), repr(e[1]))):
        stream.write(f"{u!r}\t{v!r}\n")


def read_integer_edge_list(stream: TextIO) -> Graph:
    """Read a whitespace-separated integer edge list.

    Blank lines and ``#`` comments are skipped.

    Raises
    ------
    GraphError
        On malformed lines.
    """
    graph = Graph()
    for line_number, line in enumerate(stream, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        parts = text.split()
        if len(parts) != 2:
            raise GraphError(
                f"line {line_number}: expected two fields, got {len(parts)}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphError(f"line {line_number}: non-integer label") from exc
        graph.add_edge(u, v)
    return graph


def _encode_label(label: Any) -> Any:
    """Encode a node label into a JSON-safe shape, tagging tuples."""
    if isinstance(label, tuple):
        return {"__tuple__": [_encode_label(item) for item in label]}
    if isinstance(label, (str, int, float, bool)) or label is None:
        return label
    raise GraphError(
        f"label {label!r} of type {type(label).__name__} is not JSON-serialisable"
    )


def _decode_label(value: Any) -> Any:
    """Inverse of :func:`_encode_label`."""
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_decode_label(item) for item in value["__tuple__"])
    return value


def to_json(graph) -> str:
    """Serialise a graph or oracle (name, nodes, edges) to a JSON string.

    ``array('q')`` neighbour ids from a CSR backend surface as plain
    Python ints, so dense int node ids round-trip as ints.
    """
    payload = {
        "name": getattr(graph, "name", ""),
        "nodes": [_encode_label(v) for v in oracle_nodes(graph)],
        "edges": [
            [_encode_label(u), _encode_label(v)] for u, v in oracle_edges(graph)
        ],
    }
    return json.dumps(payload, sort_keys=False)


def from_json(text: str) -> Graph:
    """Reconstruct a graph serialised with :func:`to_json`.

    Raises
    ------
    GraphError
        If the payload is missing required keys or malformed.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "nodes" not in payload or "edges" not in payload:
        raise GraphError("JSON graph payload needs 'nodes' and 'edges' keys")
    graph = Graph(name=payload.get("name", ""))
    for label in payload["nodes"]:
        graph.add_node(_decode_label(label))
    for pair in payload["edges"]:
        if not isinstance(pair, list) or len(pair) != 2:
            raise GraphError(f"malformed edge entry: {pair!r}")
        graph.add_edge(_decode_label(pair[0]), _decode_label(pair[1]))
    return graph


def to_dot(graph, highlight: List[Any] = ()) -> str:
    """Render the graph in Graphviz DOT (undirected).

    Parameters
    ----------
    highlight:
        Nodes to draw filled, e.g. a flood source or a min cut.
    """
    marked = set(highlight)
    lines = ["graph G {"]
    name = getattr(graph, "name", "")
    if name:
        lines.append(f'  label="{name}";')
    for node in oracle_nodes(graph):
        attrs = ' [style=filled, fillcolor=lightblue]' if node in marked else ""
        lines.append(f'  "{node!r}"{attrs};')
    for u, v in oracle_edges(graph):
        lines.append(f'  "{u!r}" -- "{v!r}";')
    lines.append("}")
    return "\n".join(lines)
