"""The ``NeighborOracle`` protocol: the minimal read surface of a graph.

Every hot read path in this library — traversal, connectivity
reachability, diameter estimation, the flooding simulator's topology
access — needs exactly four things from a topology:

* ``num_nodes()`` — how many nodes there are,
* ``degree(v)`` — how many neighbours ``v`` has,
* ``neighbors(v)`` — an iterable of those neighbours,
* ``iter_nodes()`` — an iterator over all nodes in a stable order.

:class:`NeighborOracle` names that surface.  Anything providing it can
be traversed, flooded and measured without ever materialising an
adjacency map, which is what unlocks million-node LHGs: the
Jenkins–Demers construction rule is regular enough that ``neighbors(v)``
is *computable arithmetically* (:mod:`repro.graphs.implicit`), and a
materialised graph can be compacted into a few integer arrays
(:mod:`repro.graphs.csr`) instead of a dict of sets.

Three backends ship with the library:

* :class:`~repro.graphs.graph.Graph` — the mutable dict-of-sets
  substrate (satisfies the protocol as-is);
* :class:`~repro.graphs.csr.CSRGraph` — a compact, read-only
  CSR-style backend over ``array('q')`` buffers with dense int ids;
* :class:`~repro.graphs.implicit.ImplicitJDOracle` — the implicit
  Jenkins–Demers oracle, O(1) memory for any n.

The helpers below bridge the gap between the four required methods and
the conveniences richer backends offer (``has_node`` / ``has_edge`` /
``nodes``): they use the backend's native method when present and fall
back to a protocol-only implementation otherwise, so algorithm code can
stay generic without every oracle having to implement the long tail.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, List

try:  # Protocol is stdlib from 3.8; keep a fallback for exotic setups
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py<3.8 only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


Node = Hashable


@runtime_checkable
class NeighborOracle(Protocol):
    """Minimal read-only surface every graph backend provides.

    The contract every implementation must honour:

    * ``iter_nodes`` yields each node exactly once, in a *stable,
      deterministic* order (two iterations agree; the order is the one
      CSR compilation assigns dense ids in);
    * ``neighbors(v)`` yields each neighbour exactly once (no
      self-loops, no parallel edges — simple graphs only) and is
      consistent with ``degree(v)``;
    * adjacency is symmetric: ``u in neighbors(v)`` iff
      ``v in neighbors(u)``.
    """

    def num_nodes(self) -> int:
        """Number of nodes."""
        ...

    def degree(self, node: Node) -> int:
        """Number of neighbours of ``node``."""
        ...

    def neighbors(self, node: Node) -> Iterable[Node]:
        """The neighbours of ``node`` (any iterable, each exactly once)."""
        ...

    def iter_nodes(self) -> Iterator[Node]:
        """Iterate over all nodes in a stable order."""
        ...


def oracle_has_node(oracle: NeighborOracle, node: Node) -> bool:
    """``node in oracle``, using the backend's fast path when it has one.

    Falls back to probing ``degree`` — the protocol guarantees it
    raises (or that the caller treats any exception as absence) for
    unknown nodes.
    """
    probe = getattr(oracle, "has_node", None)
    if probe is not None:
        return bool(probe(node))
    try:
        oracle.degree(node)
    except Exception:
        return False
    return True


def oracle_has_edge(oracle: NeighborOracle, u: Node, v: Node) -> bool:
    """Whether the undirected edge (u, v) exists.

    Uses the backend's ``has_edge`` when present, otherwise scans
    ``neighbors(u)`` — O(degree), which is O(k) on the bounded-degree
    graphs this library builds.
    """
    probe = getattr(oracle, "has_edge", None)
    if probe is not None:
        return bool(probe(u, v))
    if not oracle_has_node(oracle, u):
        return False
    for neighbor in oracle.neighbors(u):
        if neighbor == v:
            return True
    return False


def oracle_nodes(oracle: NeighborOracle) -> List[Node]:
    """All nodes as a list, via ``nodes()`` when the backend has it."""
    probe = getattr(oracle, "nodes", None)
    if probe is not None:
        return list(probe())
    return list(oracle.iter_nodes())


def oracle_num_edges(oracle: NeighborOracle) -> int:
    """Edge count, via ``number_of_edges()`` or the degree sum."""
    probe = getattr(oracle, "number_of_edges", None)
    if probe is not None:
        return int(probe())
    return sum(oracle.degree(node) for node in oracle.iter_nodes()) // 2


def oracle_edges(oracle: NeighborOracle) -> Iterator[tuple]:
    """Yield every undirected edge exactly once.

    Uses ``iter_edges()`` when the backend has it; otherwise reports
    each adjacency pair once from the lower-id endpoint when nodes are
    comparable, falling back to a seen-set for mixed label types.
    """
    probe = getattr(oracle, "iter_edges", None)
    if probe is not None:
        yield from probe()
        return
    seen = set()
    for u in oracle.iter_nodes():
        for v in oracle.neighbors(u):
            key = frozenset((u, v))
            if key not in seen:
                seen.add(key)
                yield (u, v)


def materialize(oracle: NeighborOracle, name: str = ""):
    """Build a mutable dict-of-sets :class:`Graph` from any oracle.

    The inverse of CSR compilation — useful when an algorithm that
    needs mutation (max-flow residuals, repair planning) must run on a
    topology that lives behind a read-only backend.  O(n + m) time and
    memory; at million-node scale prefer the certificate-based
    verifiers instead.
    """
    from repro.graphs.graph import Graph

    graph = Graph(name=name or getattr(oracle, "name", ""))
    for node in oracle.iter_nodes():
        graph.add_node(node)
        for neighbor in oracle.neighbors(node):
            if not graph.has_edge(node, neighbor):
                graph.add_edge(node, neighbor)
    return graph
