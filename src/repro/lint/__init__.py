"""Static determinism & fork-safety analysis for the repro codebase.

The exec/robustness/telemetry stack rests on one invariant: results are
byte-identical across ``--workers 1/2/4``, serial vs. supervised, and
fresh vs. checkpoint-resumed runs.  The dynamic determinism suites
(``tests/test_parallel_determinism.py``, ``tests/test_telemetry.py``)
enforce that property *after the fact*; this package enforces its known
preconditions *statically*, at the AST level, before a slow integration
test has to catch the regression.

Zero dependencies: the engine is built on the stdlib :mod:`ast` module.

Two analysis depths share one engine (findings, fingerprints,
suppressions, baselines):

* **per-file** — every rule below that proves a local fact from one
  module's AST (``repro lint PATH``);
* **whole-program** — ``repro lint --project PATH`` builds a project
  model (import graph + cycles, name table, conservative call graph;
  :mod:`repro.lint.project`) and an interprocedural seed-taint analysis
  (:mod:`repro.lint.flow`), then runs the cross-module rule families
  from :mod:`repro.lint.rules_project` on top of the per-file pass.

Rule catalog (see DESIGN.md §11 and §16):

=========  ========  ====================================================
rule       severity  hazard
=========  ========  ====================================================
DET001     error     unseeded module-level ``random.*`` call (use
                     ``random.Random(seed)`` / an injected rng)
DET002     error     wall-clock read (``time.time``/``perf_counter``/
                     ``monotonic``, ``datetime.now``…) outside the
                     allowlisted profiling/observability modules
DET003     warning   iteration over a set without ``sorted()`` — order
                     can differ across processes (``PYTHONHASHSEED``)
FORK001    error     thread/lock/pool created at module import time
                     (state crosses ``fork()`` into workers)
FORK002    error     file handle or socket opened at module import time
                     (fd shared with every forked worker)
EXC001     error     over-broad ``except`` in a worker loop that can
                     swallow ``KeyboardInterrupt``/``SystemExit``
API001     error     mutable default argument in a public function
SEED001    error     seed value tainted by a nondeterministic source
                     (wall clock, pid, ``os.urandom``, global random) —
                     reported with its full cross-module taint path
SEED002    error     ``random.Random(x)`` where ``x`` has untraceable
                     provenance (must come from ``derive_seed``, a
                     spec/config field, or an annotated source)
SEED003    error     ``random.Random()`` constructed with no seed
ORACLE001  error     class claims ``NeighborOracle`` but the read
                     surface is incomplete or arity-incompatible
ORACLE002  error     oracle read method mutates instance state
ORACLE003  error     oracle miss path raises ``KeyError`` instead of
                     ``NodeNotFoundError``
API002     error     ``__all__`` exports a name the module never binds
API003     warning   public top-level def/class missing from ``__all__``
API004     warning   ``__all__``-exported callable without a docstring
PROJ001    warning   import cycle between project modules
SUP001     warning   malformed suppression comment (missing reason)
PARSE001   error     file could not be parsed
=========  ========  ====================================================

Findings can be silenced three ways:

* inline, with a reason (enforced)::

      value = api_call()  # repro: lint-ignore[DET002] profiling only

* file-scoped, with a reason (enforced)::

      # repro: lint-ignore-file[DET002] watchdog deadlines in this test

* via a committed baseline file of grandfathered fingerprints
  (``lint-baseline.json``), so new code is held to the bar without a
  flag-day fix of historical findings.

Seed values whose determinism the analysis cannot see (e.g. parsed from
a reproducibility manifest) are declared at the assignment::

    seed = manifest["run_seed"]  # repro: seed-source replayed manifest

Entry points: :func:`run_lint` (library), ``repro lint`` (CLI) and
``tests/test_lint.py`` / ``tests/test_lint_project.py`` (tier-1
self-checks over ``src/repro``).
"""

from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    Finding,
    LintConfig,
    LintResult,
    Severity,
    lint_paths,
    lint_source,
    run_lint,
)
from repro.lint.project import (
    build_project,
    lint_project,
    render_graph_dot,
    render_graph_json,
)
from repro.lint.report import render_json, render_sarif, render_text
from repro.lint.rules import RULES, rule_ids

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "RULES",
    "Severity",
    "apply_baseline",
    "build_project",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_baseline",
    "render_graph_dot",
    "render_graph_json",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "run_lint",
    "write_baseline",
]
