"""Static determinism & fork-safety analysis for the repro codebase.

The exec/robustness/telemetry stack rests on one invariant: results are
byte-identical across ``--workers 1/2/4``, serial vs. supervised, and
fresh vs. checkpoint-resumed runs.  The dynamic determinism suites
(``tests/test_parallel_determinism.py``, ``tests/test_telemetry.py``)
enforce that property *after the fact*; this package enforces its known
preconditions *statically*, at the AST level, before a slow integration
test has to catch the regression.

Zero dependencies: the engine is built on the stdlib :mod:`ast` module.

Rule catalog (see :data:`repro.lint.rules.RULES` and DESIGN.md §11):

=========  ========  ====================================================
rule       severity  hazard
=========  ========  ====================================================
DET001     error     unseeded module-level ``random.*`` call (use
                     ``random.Random(seed)`` / an injected rng)
DET002     error     wall-clock read (``time.time``/``perf_counter``/
                     ``monotonic``, ``datetime.now``…) outside the
                     allowlisted profiling/observability modules
DET003     warning   iteration over a set without ``sorted()`` — order
                     can differ across processes (``PYTHONHASHSEED``)
FORK001    error     thread/lock/pool created at module import time
                     (state crosses ``fork()`` into workers)
FORK002    error     file handle or socket opened at module import time
                     (fd shared with every forked worker)
EXC001     error     over-broad ``except`` in a worker loop that can
                     swallow ``KeyboardInterrupt``/``SystemExit``
API001     error     mutable default argument in a public function
SUP001     warning   malformed suppression comment (missing reason)
PARSE001   error     file could not be parsed
=========  ========  ====================================================

Findings can be silenced two ways:

* inline, with a reason (enforced)::

      value = api_call()  # repro: lint-ignore[DET002] profiling only

* via a committed baseline file of grandfathered fingerprints
  (``lint-baseline.json``), so new code is held to the bar without a
  flag-day fix of historical findings.

Entry points: :func:`run_lint` (library), ``repro lint`` (CLI) and
``tests/test_lint.py`` (tier-1 self-check over ``src/repro``).
"""

from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    Finding,
    LintConfig,
    LintResult,
    Severity,
    lint_paths,
    lint_source,
    run_lint,
)
from repro.lint.report import render_json, render_text
from repro.lint.rules import RULES, rule_ids

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "RULES",
    "Severity",
    "apply_baseline",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_json",
    "render_text",
    "rule_ids",
    "run_lint",
    "write_baseline",
]
