"""The project model: whole-program structure for the lint analyzer.

Per-file AST rules (:mod:`repro.lint.rules`) can prove local facts —
"this call reads the wall clock" — but the determinism contract is a
*global* property: a seed minted correctly in one module can be
laundered through three call frames into a non-derived RNG two packages
away, and no single file shows the violation.  This module builds the
shared substrate the cross-module rules stand on:

* **module discovery** — every ``.py`` file under the analyzed roots,
  parsed exactly once, with package-aware dotted names
  (:func:`package_module_name` walks ``__init__.py`` markers, so
  fixtures and out-of-tree packages resolve just like ``src/repro``);
* **import graph** — module-level (import-time) edges between project
  modules, with ``if TYPE_CHECKING:`` blocks excluded and strongly
  connected components reported as cycles;
* **name table** — per-module resolution of every top-level name to its
  fully qualified origin, chasing re-export chains through the project
  (``from repro.exec import derive_seed`` resolves to
  ``repro.exec.seeding.derive_seed``);
* **conservative call graph** — for every function and method, the
  call sites whose callee resolves through the name table.  Unresolved
  calls are simply absent: the graph under-approximates, which is the
  right direction for the taint analysis built on top (an edge we
  cannot prove never manufactures a finding).

The driver, :func:`lint_project`, parses each file once, runs the
per-file rules, then the project rules
(:mod:`repro.lint.rules_project`), and funnels everything through the
same suppression/fingerprint/baseline machinery as the per-file path.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (
    Finding,
    LintConfig,
    LintResult,
    ModuleContext,
    Suppression,
    apply_suppressions,
    check_tree,
    iter_python_files,
    malformed_suppression_findings,
    parse_failure_finding,
    parse_suppressions,
)

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "build_project",
    "import_cycles",
    "lint_project",
    "package_module_name",
    "render_graph_dot",
    "render_graph_json",
    "resolve_call_target",
]


def package_module_name(path: str) -> str:
    """Dotted module name derived from on-disk package structure.

    Walks parent directories while they contain ``__init__.py``, so the
    name reflects the *importable* identity of the file regardless of
    where the analysis was rooted: ``src/repro/exec/pool.py`` →
    ``repro.exec.pool``; ``tests/lint_fixtures/project_bad/tangle/
    mint.py`` → ``tangle.mint`` (``project_bad`` has no marker).  A
    bare script resolves to its stem.
    """
    normalized = os.path.normpath(os.path.abspath(path))
    directory, filename = os.path.split(normalized)
    stem = filename[: -len(".py")] if filename.endswith(".py") else filename
    parts: List[str] = []
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        if not package:
            break
        parts.insert(0, package)
    if stem != "__init__":
        parts.append(stem)
    return ".".join(parts) if parts else stem


@dataclass
class ModuleInfo:
    """One parsed module plus everything later passes need from it."""

    path: str
    module: str
    tree: ast.Module
    source_lines: List[str]
    suppressions: List[Suppression] = field(default_factory=list)
    malformed_suppressions: List[int] = field(default_factory=list)

    def context(self, config: LintConfig) -> ModuleContext:
        return ModuleContext(
            path=self.path,
            module=self.module,
            source_lines=self.source_lines,
            config=config,
        )


@dataclass
class FunctionInfo:
    """A function or method definition, addressable project-wide.

    ``qualname`` is ``module.func`` for top-level functions and
    ``module.Class.method`` for methods; ``params`` excludes
    ``self``/``cls`` for methods so call-site argument mapping lines up
    with what callers actually pass.
    """

    qualname: str
    module: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    params: Tuple[str, ...]
    defaults_count: int
    is_method: bool
    class_name: Optional[str] = None

    def param_for_call(
        self, call: ast.Call
    ) -> Dict[str, ast.expr]:
        """Map a call site's arguments onto this function's parameters.

        Positional args line up with ``params`` in order; keywords match
        by name.  ``*args``/``**kwargs`` at the call site are skipped —
        the mapping under-approximates, never mis-attributes.
        """
        mapping: Dict[str, ast.expr] = {}
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if index < len(self.params):
                mapping[self.params[index]] = arg
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in self.params:
                mapping[keyword.arg] = keyword.value
        return mapping


@dataclass
class ClassInfo:
    """A top-level class: its methods and base-class names."""

    qualname: str
    module: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CallSite:
    """One resolved call: ``caller`` invokes ``callee`` at ``node``."""

    caller: str  # qualname of enclosing function, or "<module>" scope
    callee: str  # resolved qualified name
    module: str  # module containing the call
    node: ast.Call


@dataclass
class ProjectModel:
    """Everything the cross-module rules need, computed once."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    imports: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    import_lines: Dict[Tuple[str, str], int] = field(default_factory=dict)
    cycles: List[List[str]] = field(default_factory=list)
    # per-module: local top-level name -> fully-qualified origin
    names: Dict[str, Dict[str, str]] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    call_sites: List[CallSite] = field(default_factory=list)
    # callee qualname -> call sites invoking it
    callers_of: Dict[str, List[CallSite]] = field(default_factory=dict)
    config: LintConfig = field(default_factory=LintConfig)

    def module_of(self, qualname: str) -> Optional[ModuleInfo]:
        """The module that defines ``qualname`` (function/class), if any."""
        info = self.functions.get(qualname) or self.classes.get(qualname)
        if info is None:
            return None
        return self.modules.get(info.module)

    def resolve(self, module: str, name: str) -> Optional[str]:
        """Fully-qualified origin of ``name`` as seen from ``module``.

        Chases re-export chains through project modules (bounded, cycle
        safe): if ``module`` imported the name from another project
        module that itself imported it, resolution continues until a
        definition or an external origin is reached.
        """
        seen: Set[Tuple[str, str]] = set()
        current_module, current_name = module, name
        for _ in range(32):
            if (current_module, current_name) in seen:
                return None
            seen.add((current_module, current_name))
            table = self.names.get(current_module)
            if table is None or current_name not in table:
                return None
            origin = table[current_name]
            owner, _, leaf = origin.rpartition(".")
            if origin == f"{current_module}.{current_name}" or not owner:
                return origin
            if owner in self.modules:
                # re-export: does the owner define it, or import it on?
                owner_table = self.names.get(owner, {})
                if owner_table.get(leaf) == origin:
                    return origin
                if leaf in owner_table:
                    current_module, current_name = owner, leaf
                    continue
                return origin
            if origin.rpartition(".")[0] == "":
                return origin
            # origin's owner might itself be a dotted project module
            # (``from repro.exec.seeding import derive_seed``)
            return origin
        return None


# ----------------------------------------------------------------------
# Discovery and per-module tables
# ----------------------------------------------------------------------


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"


def _is_main_guard(test: ast.expr) -> bool:
    return (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == "__name__"
    )


def _import_time_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Statements executed when the module is imported.

    Descends through top-level ``if``/``try``/``with`` and class bodies
    but not into functions; skips ``if TYPE_CHECKING`` and main guards
    (imports there are not import-time edges).
    """

    def walk(statements: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield stmt
            if isinstance(stmt, ast.If):
                if _is_type_checking(stmt.test) or _is_main_guard(stmt.test):
                    yield from walk(stmt.orelse)
                    continue
                yield from walk(stmt.body)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                yield from walk(stmt.body)
                for handler in stmt.handlers:
                    yield from walk(handler.body)
                yield from walk(stmt.orelse)
                yield from walk(stmt.finalbody)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                yield from walk(stmt.body)
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body)

    yield from walk(tree.body)


def _resolve_relative(module: str, node: ast.ImportFrom) -> Optional[str]:
    """Absolute module targeted by a (possibly relative) ``from`` import."""
    if not node.level:
        return node.module
    parts = module.split(".")
    # level 1 = current package; the module's own name is not a package
    # component unless it *is* a package (__init__), which discovery
    # already collapsed into the package name.
    if node.level > len(parts):
        return None
    base = parts[: len(parts) - node.level + 1]
    # ``from . import x`` inside package p: base should be p itself
    if len(base) == len(parts):
        base = parts[:-1] if len(parts) > 1 else []
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _function_info(
    node: ast.AST,
    module: str,
    class_name: Optional[str],
) -> FunctionInfo:
    args = node.args  # type: ignore[attr-defined]
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if class_name is not None and names and names[0] in ("self", "cls"):
        names = names[1:]
    kwonly = [a.arg for a in args.kwonlyargs]
    name = node.name  # type: ignore[attr-defined]
    qual = (
        f"{module}.{class_name}.{name}"
        if class_name
        else f"{module}.{name}"
    )
    return FunctionInfo(
        qualname=qual,
        module=module,
        node=node,
        params=tuple(names + kwonly),
        defaults_count=len(args.defaults),
        is_method=class_name is not None,
        class_name=class_name,
    )


def _base_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):  # Protocol[T], Generic[T]
        return _base_name(expr.value)
    return None


def build_project(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    exclude: Sequence[str] = (),
) -> Tuple[ProjectModel, List[Finding]]:
    """Parse every module under ``paths`` and assemble the model.

    Returns ``(project, parse_findings)`` — files that fail to parse
    become PARSE001 findings and are excluded from the model.
    """
    config = config or LintConfig()
    project = ProjectModel(config=config)
    parse_findings: List[Finding] = []

    for path in iter_python_files(paths, exclude=exclude):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        source_lines = source.splitlines()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            if config.rule_selected("PARSE001"):
                parse_findings.append(
                    parse_failure_finding(exc, path, source_lines)
                )
            continue
        module = package_module_name(path)
        suppressions, malformed = parse_suppressions(source_lines)
        info = ModuleInfo(
            path=path,
            module=module,
            tree=tree,
            source_lines=source_lines,
            suppressions=suppressions,
            malformed_suppressions=malformed,
        )
        # first file wins on duplicate dotted names (shadowed scripts)
        project.modules.setdefault(module, info)

    for module, info in project.modules.items():
        _index_module(project, info)
    project.cycles = import_cycles(project.imports)
    _build_call_graph(project)
    return project, parse_findings


def _index_module(project: ProjectModel, info: ModuleInfo) -> None:
    """Fill the name table, import edges and definitions for one module."""
    module = info.module
    table: Dict[str, str] = {}
    edges: List[str] = []

    for stmt in _import_time_statements(info.tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                table[local] = origin
                target = _project_prefix(project, alias.name)
                if target is not None and target != module:
                    edges.append(target)
                    project.import_lines.setdefault(
                        (module, target), stmt.lineno
                    )
        elif isinstance(stmt, ast.ImportFrom):
            target_module = _resolve_relative(module, stmt)
            if target_module is None:
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{target_module}.{alias.name}"
            resolved = _project_prefix(project, target_module)
            if resolved is None:
                # ``from pkg import sub`` where pkg.sub is a module
                for alias in stmt.names:
                    candidate = f"{target_module}.{alias.name}"
                    sub = _project_prefix(project, candidate)
                    if sub is not None and sub != module:
                        edges.append(sub)
                        project.import_lines.setdefault(
                            (module, sub), stmt.lineno
                        )
            elif resolved != module:
                edges.append(resolved)
                project.import_lines.setdefault(
                    (module, resolved), stmt.lineno
                )

    for stmt in info.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _function_info(stmt, module, None)
            project.functions[fn.qualname] = fn
            table[stmt.name] = fn.qualname
        elif isinstance(stmt, ast.ClassDef):
            cls = ClassInfo(
                qualname=f"{module}.{stmt.name}",
                module=module,
                node=stmt,
                base_names=tuple(
                    name
                    for name in (_base_name(b) for b in stmt.bases)
                    if name is not None
                ),
            )
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = _function_info(sub, module, stmt.name)
                    cls.methods[sub.name] = fn
                    project.functions[fn.qualname] = fn
            project.classes[cls.qualname] = cls
            table[stmt.name] = cls.qualname
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    table.setdefault(target.id, f"{module}.{target.id}")
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                table.setdefault(
                    stmt.target.id, f"{module}.{stmt.target.id}"
                )

    project.names[module] = table
    project.imports[module] = tuple(dict.fromkeys(edges))


def _project_prefix(project: ProjectModel, dotted: str) -> Optional[str]:
    """Longest project module matched by ``dotted`` (or its package)."""
    parts = dotted.split(".")
    for end in range(len(parts), 0, -1):
        candidate = ".".join(parts[:end])
        if candidate in project.modules:
            return candidate
    return None


# ----------------------------------------------------------------------
# Cycle detection (Tarjan, iterative)
# ----------------------------------------------------------------------


def import_cycles(
    imports: Dict[str, Tuple[str, ...]]
) -> List[List[str]]:
    """Strongly connected components of size > 1 (plus self-loops).

    Deterministic: modules are visited in sorted order and each cycle is
    rotated to start at its lexicographically smallest member.
    """
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    def strongconnect(root: str) -> None:
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = sorted(imports.get(node, ()))
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in imports:
                    continue
                if child not in index_of:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if recurse:
                continue
            if low[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in imports.get(node, ()):
                    smallest = min(component)
                    pivot = component.index(smallest)
                    components.append(
                        component[pivot:] + component[:pivot]
                    )
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for node in sorted(imports):
        if node not in index_of:
            strongconnect(node)
    return sorted(components)


# ----------------------------------------------------------------------
# Conservative call graph
# ----------------------------------------------------------------------


def resolve_call_target(
    project: ProjectModel,
    module: str,
    func: ast.expr,
    enclosing_class: Optional[str],
) -> Optional[str]:
    """Qualified name a call expression resolves to, if provable.

    Handles ``name(...)``, ``mod.attr(...)`` chains rooted at an
    imported module, and ``self.method(...)`` within a known class.
    Anything else (dynamic dispatch, call results, subscripts) returns
    ``None`` — the call graph under-approximates by design.
    """
    if isinstance(func, ast.Name):
        resolved = project.resolve(module, func.id)
        return resolved if resolved is not None else func.id
    if isinstance(func, ast.Attribute):
        parts: List[str] = []
        cursor: ast.expr = func
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        parts.reverse()
        if isinstance(cursor, ast.Name):
            if cursor.id == "self" and enclosing_class is not None:
                cls = project.classes.get(f"{module}.{enclosing_class}")
                if cls is not None and len(parts) == 1:
                    method = cls.methods.get(parts[0])
                    if method is not None:
                        return method.qualname
                return None
            base = project.resolve(module, cursor.id)
            if base is None:
                return None
            dotted = ".".join([base] + parts)
            # normalise through a project re-export if one applies
            owner = _project_prefix(project, base)
            if owner is not None and len(parts) == 1:
                chased = project.resolve(owner, parts[0])
                if chased is not None:
                    return chased
            return dotted
    return None


def _build_call_graph(project: ProjectModel) -> None:
    for module, info in project.modules.items():
        for scope_name, class_name, body in _callable_scopes(info.tree, module):
            for node in _walk_stmts(body):
                if isinstance(node, ast.Call):
                    target = resolve_call_target(
                        project, module, node.func, class_name
                    )
                    if target is None:
                        continue
                    # class instantiation: route to __init__ when known
                    cls = project.classes.get(target)
                    if cls is not None and "__init__" in cls.methods:
                        target = cls.methods["__init__"].qualname
                    site = CallSite(
                        caller=scope_name,
                        callee=target,
                        module=module,
                        node=node,
                    )
                    project.call_sites.append(site)
                    project.callers_of.setdefault(target, []).append(site)


def _walk_stmts(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    for stmt in body:
        yield from ast.walk(stmt)


def _callable_scopes(
    tree: ast.Module, module: str
) -> Iterator[Tuple[str, Optional[str], List[ast.stmt]]]:
    """Yield ``(scope qualname, class name, body)`` for every scope.

    Module-level code is the ``<module>``-suffixed scope; nested
    functions are attributed to their outermost enclosing def (their
    calls execute when the outer function runs or returns the closure).
    """
    top: List[ast.stmt] = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield f"{module}.{stmt.name}", None, stmt.body
        elif isinstance(stmt, ast.ClassDef):
            class_tail: List[ast.stmt] = []
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield (
                        f"{module}.{stmt.name}.{sub.name}",
                        stmt.name,
                        sub.body,
                    )
                else:
                    class_tail.append(sub)
            if class_tail:
                yield f"{module}.<module>", stmt.name, class_tail
        else:
            top.append(stmt)
    if top:
        yield f"{module}.<module>", None, top


# ----------------------------------------------------------------------
# Graph dumps (--graph dot|json)
# ----------------------------------------------------------------------


def render_graph_json(project: ProjectModel) -> str:
    """Machine-readable dump of the import and call graphs."""
    import json

    payload = {
        "version": 1,
        "modules": {
            module: {
                "path": info.path,
                "imports": sorted(project.imports.get(module, ())),
            }
            for module, info in sorted(project.modules.items())
        },
        "cycles": project.cycles,
        "calls": sorted(
            {
                (site.caller, site.callee)
                for site in project.call_sites
                if site.callee in project.functions
                or site.callee in project.classes
            }
        ),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_graph_dot(project: ProjectModel) -> str:
    """GraphViz dot rendering of the module import graph.

    Cycle members are highlighted; edge direction is importer →
    imported.
    """
    cycle_members = {m for cycle in project.cycles for m in cycle}
    lines = ["digraph imports {", "  rankdir=LR;", "  node [shape=box];"]
    for module in sorted(project.modules):
        attrs = ' [color=red, penwidth=2]' if module in cycle_members else ""
        lines.append(f'  "{module}"{attrs};')
    for module in sorted(project.imports):
        for target in sorted(project.imports[module]):
            in_cycle = module in cycle_members and target in cycle_members
            attrs = " [color=red]" if in_cycle else ""
            lines.append(f'  "{module}" -> "{target}"{attrs};')
    lines.append("}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def lint_project(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    exclude: Sequence[str] = (),
) -> LintResult:
    """The whole-program pass: per-file rules + project rules.

    Every file is parsed exactly once; per-file findings and
    cross-module findings flow through the same suppression machinery
    (line- and file-scoped comments in the file a finding is anchored
    to), so fingerprints, baselines and SUP001 behave identically to
    the per-file path.
    """
    from repro.lint.rules_project import PROJECT_RULES

    config = config or LintConfig()
    project, parse_findings = build_project(
        paths, config=config, exclude=exclude
    )

    raw_by_path: Dict[str, List[Finding]] = {}
    for info in project.modules.values():
        context = info.context(config)
        raw_by_path.setdefault(info.path, []).extend(
            check_tree(info.tree, context)
        )

    for rule in PROJECT_RULES:
        if config.rule_selected(rule.id):
            for finding in rule.check(project):
                raw_by_path.setdefault(finding.path, []).append(finding)

    result = LintResult(files=len(project.modules) + len(parse_findings))
    result.findings.extend(parse_findings)
    by_path = {info.path: info for info in project.modules.values()}
    for path in sorted(raw_by_path):
        info = by_path.get(path)
        if info is None:
            result.findings.extend(raw_by_path[path])
            continue
        kept, suppressed = apply_suppressions(
            raw_by_path[path], info.suppressions
        )
        context = info.context(config)
        kept.extend(
            malformed_suppression_findings(
                info.malformed_suppressions, context
            )
        )
        result.findings.extend(kept)
        result.suppressed.extend(suppressed)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
