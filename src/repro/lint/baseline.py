"""Baseline file: grandfathered findings that do not gate the build.

The baseline is a committed JSON file mapping finding *fingerprints*
(content-addressed, line-number independent — see
:attr:`repro.lint.engine.Finding.fingerprint`) to a short record of
what was grandfathered and why.  The gate then fails only on findings
that are neither inline-suppressed nor baselined, so a new rule can
land with historical findings parked instead of blocking on a flag-day
cleanup.

Policy (DESIGN.md §11): the baseline may only ever shrink.  New code
never gets baselined — fix it or suppress it inline with a reason.
Stale entries (fingerprints that no longer match anything) are reported
by ``repro lint`` so they can be pruned.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.engine import Finding, LintResult

__all__ = ["apply_baseline", "load_baseline", "write_baseline"]

BASELINE_VERSION = 1


def load_baseline(path: str) -> Dict[str, Dict[str, Any]]:
    """Read a baseline file into ``{fingerprint: entry}``.

    Raises ``ValueError`` on a malformed file — a silently ignored
    baseline would un-grandfather everything and fail the build in a
    confusing way.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {path!r} is not valid JSON: {exc}")
    if not isinstance(payload, dict) or "baseline" not in payload:
        raise ValueError(
            f"baseline {path!r} must be an object with a 'baseline' list"
        )
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path!r} has version {payload.get('version')!r}; "
            f"this tool reads version {BASELINE_VERSION}"
        )
    entries: Dict[str, Dict[str, Any]] = {}
    for entry in payload["baseline"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(
                f"baseline {path!r}: every entry needs a 'fingerprint'"
            )
        entries[entry["fingerprint"]] = entry
    return entries


def write_baseline(
    findings: List[Finding], path: str, reason: str = "grandfathered"
) -> int:
    """Write ``findings`` as a fresh baseline file; returns the count."""
    entries = []
    seen = set()
    for finding in sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    ):
        if finding.fingerprint in seen:
            continue
        seen.add(finding.fingerprint)
        entries.append(
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "snippet": finding.snippet,
                "reason": reason,
            }
        )
    payload = {"version": BASELINE_VERSION, "baseline": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def apply_baseline(
    result: LintResult, baseline: Dict[str, Dict[str, Any]]
) -> LintResult:
    """Move baselined findings out of the gating set, in place.

    Also records baseline entries that matched nothing
    (``result.stale_baseline``) so the file can be pruned as findings
    get fixed.
    """
    kept: List[Finding] = []
    matched = set()
    for finding in result.findings:
        if finding.fingerprint in baseline:
            matched.add(finding.fingerprint)
            result.baselined.append(finding)
        else:
            kept.append(finding)
    result.findings = kept
    result.stale_baseline = sorted(set(baseline) - matched)
    return result
