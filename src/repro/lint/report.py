"""Renderers for lint results: human text and machine JSON.

The JSON document is a stable schema (``version`` bumps on breaking
change) so CI annotations and editor integrations can consume it::

    {
      "version": 1,
      "clean": false,
      "files": 12,
      "counts": {"DET002": 3},
      "suppressed": 1,
      "baselined": 0,
      "stale_baseline": [],
      "findings": [
        {"rule": "DET002", "severity": "error", "path": "...",
         "line": 7, "col": 11, "message": "...", "snippet": "...",
         "fingerprint": "6f0c..."}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.lint.engine import Finding, LintResult

__all__ = ["finding_to_dict", "render_json", "render_text"]

JSON_VERSION = 1


def finding_to_dict(finding: Finding) -> Dict[str, Any]:
    return {
        "rule": finding.rule,
        "severity": finding.severity,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "snippet": finding.snippet,
        "fingerprint": finding.fingerprint,
    }


def render_json(result: LintResult) -> str:
    payload = {
        "version": JSON_VERSION,
        "clean": result.clean,
        "files": result.files,
        "counts": result.counts(),
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "stale_baseline": result.stale_baseline,
        "findings": [finding_to_dict(f) for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_text(result: LintResult) -> str:
    lines = []
    for finding in result.findings:
        lines.append(finding.format())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    tail = (
        f"{len(result.findings)} finding(s) in {result.files} file(s)"
        if result.findings
        else f"clean: {result.files} file(s), 0 findings"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed inline")
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.stale_baseline:
        extras.append(
            f"{len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
            "(fixed findings — prune them)"
        )
    if extras:
        tail += " (" + ", ".join(extras) + ")"
    if result.findings:
        counts = ", ".join(
            f"{rule}={count}" for rule, count in result.counts().items()
        )
        lines.append(tail + f" [{counts}]")
    else:
        lines.append(tail)
    return "\n".join(lines)
