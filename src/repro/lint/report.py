"""Renderers for lint results: human text, machine JSON, SARIF 2.1.0.

The JSON document is a stable schema (``version`` bumps on breaking
change) so CI annotations and editor integrations can consume it::

    {
      "version": 1,
      "clean": false,
      "files": 12,
      "counts": {"DET002": 3},
      "suppressed": 1,
      "baselined": 0,
      "stale_baseline": [],
      "findings": [
        {"rule": "DET002", "severity": "error", "path": "...",
         "line": 7, "col": 11, "message": "...", "snippet": "...",
         "hops": [], "fingerprint": "6f0c..."}
      ]
    }

``render_sarif`` emits a SARIF 2.1.0 log suitable for
``github/codeql-action/upload-sarif`` so findings annotate PRs inline;
interprocedural taint paths become SARIF ``codeFlows`` and the engine
fingerprint rides along in ``partialFingerprints`` for dedup across
renumbering edits.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.engine import Finding, LintResult, Severity

__all__ = [
    "finding_to_dict",
    "render_json",
    "render_sarif",
    "render_text",
]

JSON_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def finding_to_dict(finding: Finding) -> Dict[str, Any]:
    """One finding as a JSON-ready dict (stable key set, version 1)."""
    return {
        "rule": finding.rule,
        "severity": finding.severity,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "snippet": finding.snippet,
        "hops": [list(hop) for hop in finding.hops],
        "fingerprint": finding.fingerprint,
    }


def render_json(result: LintResult) -> str:
    """Render a :class:`LintResult` as the versioned JSON document."""
    payload = {
        "version": JSON_VERSION,
        "clean": result.clean,
        "files": result.files,
        "counts": result.counts(),
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "stale_baseline": result.stale_baseline,
        "findings": [finding_to_dict(f) for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_text(result: LintResult) -> str:
    """Render findings as ``path:line:col: RULE message`` lines."""
    lines = []
    for finding in result.findings:
        lines.append(finding.format())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
        for path, line, note in finding.hops:
            lines.append(f"    via {path}:{line}: {note}")
    tail = (
        f"{len(result.findings)} finding(s) in {result.files} file(s)"
        if result.findings
        else f"clean: {result.files} file(s), 0 findings"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed inline")
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.stale_baseline:
        extras.append(
            f"{len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
            "(fixed findings — prune them)"
        )
    if extras:
        tail += " (" + ", ".join(extras) + ")"
    if result.findings:
        counts = ", ".join(
            f"{rule}={count}" for rule, count in result.counts().items()
        )
        lines.append(tail + f" [{counts}]")
    else:
        lines.append(tail)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# SARIF 2.1.0
# ----------------------------------------------------------------------


def _sarif_level(severity: str) -> str:
    return "error" if severity == Severity.ERROR else "warning"


def _sarif_location(path: str, line: int, col: int) -> Dict[str, Any]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": {
                "startLine": max(1, line),
                "startColumn": max(1, col + 1),
            },
        }
    }


def _sarif_code_flow(finding: Finding) -> Dict[str, Any]:
    locations: List[Dict[str, Any]] = []
    for path, line, note in finding.hops:
        location = _sarif_location(path, line, 0)
        location["message"] = {"text": note}
        locations.append({"location": location})
    sink = _sarif_location(finding.path, finding.line, finding.col)
    sink["message"] = {"text": "seeding position (sink)"}
    locations.append({"location": sink})
    return {"threadFlows": [{"locations": locations}]}


def _rule_metadata() -> List[Dict[str, Any]]:
    """Driver rule descriptors: per-file, project, engine diagnostics."""
    from repro.lint.rules import ENGINE_RULE_SUMMARIES, RULES
    from repro.lint.rules_project import PROJECT_RULES

    rules: List[Dict[str, Any]] = []
    seen = set()
    for rule in list(RULES) + list(PROJECT_RULES):
        if rule.id in seen:
            continue
        seen.add(rule.id)
        rules.append(
            {
                "id": rule.id,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {
                    "level": _sarif_level(rule.severity)
                },
            }
        )
    for rule_id in sorted(ENGINE_RULE_SUMMARIES):
        if rule_id in seen:
            continue
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {
                    "text": ENGINE_RULE_SUMMARIES[rule_id]
                },
                "defaultConfiguration": {"level": "warning"},
            }
        )
    return rules


def render_sarif(result: LintResult) -> str:
    """Render a :class:`LintResult` as a SARIF 2.1.0 log."""
    rules = _rule_metadata()
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for finding in result.findings:
        entry: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": _sarif_level(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                _sarif_location(finding.path, finding.line, finding.col)
            ],
            "partialFingerprints": {
                "reproLint/v1": finding.fingerprint
            },
        }
        if finding.rule in rule_index:
            entry["ruleIndex"] = rule_index[finding.rule]
        if finding.hops:
            entry["codeFlows"] = [_sarif_code_flow(finding)]
        results.append(entry)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
