"""Cross-module rule families: seed provenance, oracle contracts, API drift.

These rules consume the :class:`~repro.lint.project.ProjectModel` (and,
for the SEED family, the interprocedural results of
:mod:`repro.lint.flow`) instead of a single file's AST.  Findings are
anchored at real source locations and flow through the same
suppression/fingerprint/baseline machinery as the per-file rules.

Families:

``SEED0xx``
    Every value reaching an RNG-seeding position — ``random.Random(x)``,
    ``seed=`` keyword arguments — must be traceable to
    ``repro.exec.seeding.derive_seed``, an ``ExperimentSpec``/config
    field, a literal, or an assignment annotated
    ``# repro: seed-source reason``.  Violations report the full taint
    path as ``file:line`` hops.

``ORACLE0xx``
    A class structurally claiming :class:`repro.graphs.oracle.
    NeighborOracle` (it defines most of the core read surface, or names
    the protocol as a base) must implement the complete surface with
    compatible arities, must not mutate state inside read methods, and
    must raise ``NodeNotFoundError`` — never a bare ``KeyError`` — on
    its miss paths.

``API0xx``
    ``__all__`` vs. reality: dead exports (API002), public definitions
    missing from a declared ``__all__`` (API003), exported callables
    without docstrings (API004).

``PROJ0xx``
    Project-structure facts: import cycles (PROJ001).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Finding, Severity
from repro.lint.flow import SeedIssue, analyze_seed_flow
from repro.lint.project import (
    ClassInfo,
    ModuleInfo,
    ProjectModel,
    _import_time_statements,
)

__all__ = [
    "DeadExportRule",
    "ImportCycleRule",
    "OracleMissRule",
    "OracleReadMutationRule",
    "OracleSurfaceRule",
    "PROJECT_RULES",
    "ProjectRule",
    "SeedMissingRule",
    "SeedOpaqueRule",
    "SeedTaintRule",
    "UndocumentedExportRule",
    "UnexportedPublicRule",
    "project_rule_ids",
]


class ProjectRule:
    """Base class for whole-program rules: ``check`` takes the model."""

    id: str = ""
    severity: str = Severity.ERROR
    summary: str = ""

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        project: ProjectModel,
        module: str,
        line: int,
        col: int,
        message: str,
        hops: Tuple[Tuple[str, int, str], ...] = (),
    ) -> Finding:
        info = project.modules.get(module)
        path = info.path if info is not None else "<unknown>"
        snippet = ""
        if info is not None and 1 <= line <= len(info.source_lines):
            snippet = info.source_lines[line - 1].strip()
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
            hops=hops,
        )


# ----------------------------------------------------------------------
# SEED001 / SEED002 / SEED003 — seed provenance
# ----------------------------------------------------------------------


def _format_hops(hops: Tuple[Tuple[str, int, str], ...]) -> str:
    return " -> ".join(
        f"{path}:{line} ({note})" for path, line, note in hops
    )


class _SeedRule(ProjectRule):
    """Shared driver: one flow analysis feeds all three SEED rules."""

    kind: str = ""

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        for issue in analyze_seed_flow(project):
            if issue.kind != self.kind:
                continue
            yield self.finding(
                project,
                issue.module,
                issue.line,
                issue.col,
                self.message(issue),
                hops=issue.hops,
            )

    def message(self, issue: SeedIssue) -> str:
        raise NotImplementedError


class SeedTaintRule(_SeedRule):
    """SEED001: a provably nondeterministic value reaches a seed."""

    id = "SEED001"
    severity = Severity.ERROR
    kind = "tainted"
    summary = (
        "seed value is tainted by a nondeterministic source (wall clock, "
        "pid, os.urandom, global random) — derive it via "
        "repro.exec.seeding.derive_seed instead"
    )

    def message(self, issue: SeedIssue) -> str:
        text = (
            f"value reaching {issue.sink} is nondeterministic "
            f"({issue.detail}); every run will seed differently, "
            "breaking byte-identical replay — derive the seed with "
            "repro.exec.seeding.derive_seed(base_seed, ...) from "
            "experiment identity instead"
        )
        if issue.hops:
            text += f". Taint path: {_format_hops(issue.hops)}"
        return text


class SeedOpaqueRule(_SeedRule):
    """SEED002: untraceable provenance at a direct RNG construction."""

    id = "SEED002"
    severity = Severity.ERROR
    kind = "opaque"
    summary = (
        "random.Random(x) where x has untraceable provenance — seeds "
        "must come from derive_seed, a spec/config field, or an "
        "assignment annotated '# repro: seed-source reason'"
    )

    def message(self, issue: SeedIssue) -> str:
        text = (
            f"cannot prove the value reaching {issue.sink} is "
            f"deterministic ({issue.detail}); seeds must be traceable "
            "to repro.exec.seeding.derive_seed, an ExperimentSpec/"
            "config field, or an assignment annotated "
            "'# repro: seed-source reason'"
        )
        if issue.hops:
            text += f". Provenance trail: {_format_hops(issue.hops)}"
        return text


class SeedMissingRule(_SeedRule):
    """SEED003: ``random.Random()`` constructed with no seed at all."""

    id = "SEED003"
    severity = Severity.ERROR
    kind = "unseeded"
    summary = (
        "random.Random() constructed with no seed — it draws its state "
        "from OS entropy and every run differs"
    )

    def message(self, issue: SeedIssue) -> str:
        return (
            f"{issue.sink} {issue.detail}; pass a seed derived via "
            "repro.exec.seeding.derive_seed(base_seed, ...)"
        )


# ----------------------------------------------------------------------
# ORACLE001 / ORACLE002 / ORACLE003 — NeighborOracle conformance
# ----------------------------------------------------------------------

# The complete required surface with required-argument counts
# (excluding self).  Extra defaulted parameters are compatible.
_ORACLE_REQUIRED: Dict[str, int] = {
    "num_nodes": 0,
    "degree": 1,
    "neighbors": 1,
    "iter_nodes": 0,
}

# Read methods (required + optional surface): mutating any state or
# raising bare KeyError inside these breaks every consumer that treats
# the oracle as a pure view.
_ORACLE_READS: Tuple[str, ...] = (
    "num_nodes",
    "degree",
    "neighbors",
    "iter_nodes",
    "has_node",
    "has_edge",
    "nodes",
    "number_of_edges",
    "iter_edges",
    "edges",
)

_MUTATOR_CALLS: Set[str] = {
    "add",
    "append",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}


def _claims_oracle(cls: ClassInfo) -> bool:
    """Does this class structurally claim the NeighborOracle protocol?

    Either it names the protocol as a base, or it defines at least three
    of the four core read methods.  The protocol definition itself
    (``class NeighborOracle(Protocol)``) is exempt.
    """
    if "Protocol" in cls.base_names:
        return False
    if "NeighborOracle" in cls.base_names:
        return True
    defined = sum(1 for name in _ORACLE_REQUIRED if name in cls.methods)
    return defined >= 3


def _method_signature(node: ast.AST) -> Tuple[int, Optional[int]]:
    """(required argument count, positional capacity) excluding self.

    Capacity is ``None`` when ``*args`` makes it unbounded.  Required
    keyword-only parameters count toward the requirement: a protocol
    caller passing only positional arguments cannot satisfy them.
    """
    args = node.args  # type: ignore[attr-defined]
    positional = [a.arg for a in args.posonlyargs + args.args]
    if positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    required = max(0, len(positional) - len(args.defaults))
    required += sum(1 for d in args.kw_defaults if d is None)
    capacity = None if args.vararg is not None else len(positional)
    return required, capacity


def _rooted_at_self(expr: ast.expr) -> bool:
    cursor: ast.expr = expr
    while isinstance(cursor, (ast.Attribute, ast.Subscript)):
        cursor = cursor.value
    return isinstance(cursor, ast.Name) and cursor.id == "self"


def _walk_skipping_defs(root: ast.AST) -> Iterator[ast.AST]:
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


class OracleSurfaceRule(ProjectRule):
    """ORACLE001: incomplete or arity-incompatible oracle surface."""

    id = "ORACLE001"
    severity = Severity.ERROR
    summary = (
        "class structurally claims NeighborOracle but is missing part "
        "of the required surface (num_nodes/degree/neighbors/iter_nodes) "
        "or implements it with an incompatible arity"
    )

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        for qualname in sorted(project.classes):
            cls = project.classes[qualname]
            if not _claims_oracle(cls):
                continue
            for name in sorted(_ORACLE_REQUIRED):
                expected = _ORACLE_REQUIRED[name]
                method = cls.methods.get(name)
                if method is None:
                    yield self.finding(
                        project,
                        cls.module,
                        cls.node.lineno,
                        cls.node.col_offset,
                        f"class {cls.node.name} claims the "
                        "NeighborOracle protocol (defines "
                        f"{self._claimed(cls)}) but is missing "
                        f"{name}(); implement the full read surface "
                        "so oracle consumers (flooding, robustness, "
                        "certificates) can treat it uniformly",
                    )
                    continue
                required, capacity = _method_signature(method.node)
                compatible = required <= expected and (
                    capacity is None or capacity >= expected
                )
                if not compatible:
                    yield self.finding(
                        project,
                        cls.module,
                        method.node.lineno,  # type: ignore[attr-defined]
                        method.node.col_offset,  # type: ignore[attr-defined]
                        f"{cls.node.name}.{name}() is not callable "
                        f"with the protocol's {expected} argument(s) "
                        f"(requires {required}, accepts "
                        f"{'unbounded' if capacity is None else capacity}"
                        "); align the signature with "
                        "repro.graphs.oracle.NeighborOracle",
                    )

    @staticmethod
    def _claimed(cls: ClassInfo) -> str:
        present = [n for n in _ORACLE_REQUIRED if n in cls.methods]
        return "/".join(present) if present else "the protocol base"


class OracleReadMutationRule(ProjectRule):
    """ORACLE002: oracle read methods must not mutate instance state."""

    id = "ORACLE002"
    severity = Severity.ERROR
    summary = (
        "oracle read method mutates instance state — readers must be "
        "pure views so concurrent consumers and replays see identical "
        "structure"
    )

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        for qualname in sorted(project.classes):
            cls = project.classes[qualname]
            if not _claims_oracle(cls):
                continue
            for name in _ORACLE_READS:
                method = cls.methods.get(name)
                if method is None:
                    continue
                yield from self._check_method(project, cls, name, method.node)

    def _check_method(
        self,
        project: ProjectModel,
        cls: ClassInfo,
        name: str,
        node: ast.AST,
    ) -> Iterator[Finding]:
        for stmt in getattr(node, "body", []):
            for sub in _walk_skipping_defs(stmt):
                message: Optional[str] = None
                if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        sub.targets
                        if isinstance(sub, ast.Assign)
                        else [sub.target]
                    )
                    if any(
                        isinstance(t, (ast.Attribute, ast.Subscript))
                        and _rooted_at_self(t)
                        for t in targets
                    ):
                        message = "assigns to instance state"
                elif isinstance(sub, ast.Delete):
                    if any(_rooted_at_self(t) for t in sub.targets):
                        message = "deletes instance state"
                elif isinstance(sub, ast.Call):
                    func = sub.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _MUTATOR_CALLS
                        and isinstance(func.value, (ast.Attribute, ast.Subscript))
                        and _rooted_at_self(func.value)
                    ):
                        message = (
                            f"calls .{func.attr}() on instance state"
                        )
                if message is not None:
                    yield self.finding(
                        project,
                        cls.module,
                        sub.lineno,
                        sub.col_offset,
                        f"{cls.node.name}.{name}() {message}; oracle "
                        "read methods must be pure views — move the "
                        "mutation to construction or an explicit "
                        "update method",
                    )


class OracleMissRule(ProjectRule):
    """ORACLE003: miss paths must raise NodeNotFoundError, not KeyError."""

    id = "ORACLE003"
    severity = Severity.ERROR
    summary = (
        "oracle read method raises bare KeyError on a miss — raise "
        "repro.errors.NodeNotFoundError so callers can distinguish "
        "structural misses from programming errors"
    )

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        for qualname in sorted(project.classes):
            cls = project.classes[qualname]
            if not _claims_oracle(cls):
                continue
            for name in _ORACLE_READS:
                method = cls.methods.get(name)
                if method is None:
                    continue
                for stmt in getattr(method.node, "body", []):
                    for sub in _walk_skipping_defs(stmt):
                        if not isinstance(sub, ast.Raise) or sub.exc is None:
                            continue
                        raised = sub.exc
                        if isinstance(raised, ast.Call):
                            raised = raised.func
                        leaf = (
                            raised.id
                            if isinstance(raised, ast.Name)
                            else raised.attr
                            if isinstance(raised, ast.Attribute)
                            else None
                        )
                        if leaf == "KeyError":
                            yield self.finding(
                                project,
                                cls.module,
                                sub.lineno,
                                sub.col_offset,
                                f"{cls.node.name}.{name}() raises "
                                "KeyError on its miss path; raise "
                                "NodeNotFoundError (repro.errors) — "
                                "it subclasses KeyError, so existing "
                                "callers keep working while oracle "
                                "consumers can catch the precise type",
                            )


# ----------------------------------------------------------------------
# API002 / API003 / API004 — export drift
# ----------------------------------------------------------------------


def _declared_all(info: ModuleInfo) -> Optional[List[Tuple[str, int]]]:
    """``(name, line)`` entries of ``__all__``, or None when undeclared.

    Understands ``__all__ = [...]``, ``__all__ += [...]`` and
    ``__all__.extend([...])`` / ``.append("x")`` at import time.
    """
    entries: List[Tuple[str, int]] = []
    declared = False

    def harvest(value: ast.expr, line: int) -> None:
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    entries.append((element.value, element.lineno))
        elif isinstance(value, ast.Constant) and isinstance(
            value.value, str
        ):
            entries.append((value.value, line))

    for stmt in _import_time_statements(info.tree):
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in stmt.targets
            ):
                declared = True
                harvest(stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__all__"
            ):
                declared = True
                harvest(stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (
                isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == "__all__"
                and call.func.attr in ("extend", "append")
                and call.args
            ):
                declared = True
                harvest(call.args[0], stmt.lineno)
    return entries if declared else None


def _has_star_import(info: ModuleInfo) -> bool:
    for stmt in _import_time_statements(info.tree):
        if isinstance(stmt, ast.ImportFrom):
            if any(alias.name == "*" for alias in stmt.names):
                return True
    return False


def _iter_binding_statements(info: ModuleInfo) -> Iterator[ast.stmt]:
    """Import-time statements *including* function definitions.

    :func:`_import_time_statements` skips ``def`` nodes entirely (their
    bodies don't run at import) but the *name* they bind does exist at
    import time, which is what export checking needs.
    """

    def walk(statements: List[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in statements:
            yield stmt
            if isinstance(stmt, ast.If):
                yield from walk(stmt.body)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                yield from walk(stmt.body)
                for handler in stmt.handlers:
                    yield from walk(handler.body)
                yield from walk(stmt.orelse)
                yield from walk(stmt.finalbody)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                yield from walk(stmt.body)

    yield from walk(list(info.tree.body))


def _bound_names(info: ModuleInfo) -> Set[str]:
    """Every name bound at import time (defs, classes, imports, assigns)."""
    bound: Set[str] = set()
    for stmt in _iter_binding_statements(info):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        bound.add(node.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                bound.add(stmt.target.id)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for node in ast.walk(stmt.target):
                if isinstance(node, ast.Name):
                    bound.add(node.id)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for node in ast.walk(item.optional_vars):
                        if isinstance(node, ast.Name):
                            bound.add(node.id)
    return bound


class DeadExportRule(ProjectRule):
    """API002: ``__all__`` names something the module never binds."""

    id = "API002"
    severity = Severity.ERROR
    summary = (
        "__all__ exports a name the module never defines or imports — "
        "'from module import *' raises AttributeError at runtime"
    )

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        for module in sorted(project.modules):
            info = project.modules[module]
            exported = _declared_all(info)
            if exported is None or _has_star_import(info):
                continue
            bound = _bound_names(info)
            for name, line in exported:
                if name in bound or name.startswith("__"):
                    continue
                yield self.finding(
                    project,
                    module,
                    line,
                    0,
                    f"__all__ exports '{name}' but {module} never "
                    "defines or imports it; remove the dead export "
                    "or restore the definition",
                )


class UnexportedPublicRule(ProjectRule):
    """API003: public definition missing from a declared ``__all__``."""

    id = "API003"
    severity = Severity.WARNING
    summary = (
        "public top-level def/class not listed in the module's __all__ "
        "— the export surface has drifted from the definitions"
    )

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        for module in sorted(project.modules):
            info = project.modules[module]
            exported = _declared_all(info)
            if exported is None:
                continue
            names = {name for name, _ in exported}
            for stmt in info.tree.body:
                if not isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                if stmt.name.startswith("_") or stmt.name in names:
                    continue
                kind = (
                    "class"
                    if isinstance(stmt, ast.ClassDef)
                    else "function"
                )
                yield self.finding(
                    project,
                    module,
                    stmt.lineno,
                    stmt.col_offset,
                    f"public {kind} {stmt.name} is not listed in "
                    f"{module}.__all__; add it to the export list or "
                    "rename it with a leading underscore",
                )


class UndocumentedExportRule(ProjectRule):
    """API004: exported callables/classes need docstrings."""

    id = "API004"
    severity = Severity.WARNING
    summary = (
        "__all__-exported function/class has no docstring — the "
        "promoted API surface must document itself"
    )

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        for module in sorted(project.modules):
            info = project.modules[module]
            exported = _declared_all(info)
            if exported is None:
                continue
            for name, _ in exported:
                resolved = project.resolve(module, name)
                if resolved is None:
                    continue
                target = project.functions.get(resolved)
                node: Optional[ast.AST] = None
                owner: Optional[str] = None
                if target is not None and not target.is_method:
                    node = target.node
                    owner = target.module
                else:
                    cls = project.classes.get(resolved)
                    if cls is not None:
                        node = cls.node
                        owner = cls.module
                if node is None or owner is None:
                    continue
                if ast.get_docstring(node) is None:  # type: ignore[arg-type]
                    yield self.finding(
                        project,
                        owner,
                        node.lineno,  # type: ignore[attr-defined]
                        node.col_offset,  # type: ignore[attr-defined]
                        f"'{name}' is exported via {module}.__all__ "
                        "but has no docstring; the promoted API "
                        "surface must document its contract",
                    )


# ----------------------------------------------------------------------
# PROJ001 — import cycles
# ----------------------------------------------------------------------


class ImportCycleRule(ProjectRule):
    """PROJ001: strongly connected components in the import graph."""

    id = "PROJ001"
    severity = Severity.WARNING
    summary = (
        "import cycle between project modules — import-time side "
        "effects become order-dependent and partial modules leak"
    )

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        for cycle in project.cycles:
            first = cycle[0]
            second = cycle[1] if len(cycle) > 1 else cycle[0]
            line = project.import_lines.get((first, second), 1)
            chain = " -> ".join(cycle + [first])
            yield self.finding(
                project,
                first,
                line,
                0,
                f"import cycle: {chain}; break it with a function-"
                "level import or by moving the shared definition "
                "into a leaf module",
            )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

PROJECT_RULES: Tuple[ProjectRule, ...] = (
    SeedTaintRule(),
    SeedOpaqueRule(),
    SeedMissingRule(),
    OracleSurfaceRule(),
    OracleReadMutationRule(),
    OracleMissRule(),
    DeadExportRule(),
    UnexportedPublicRule(),
    UndocumentedExportRule(),
    ImportCycleRule(),
)


def project_rule_ids() -> Tuple[str, ...]:
    """Ids of every registered whole-program rule, in registry order."""
    return tuple(rule.id for rule in PROJECT_RULES)
