"""Core lint engine: findings, configuration, suppression, file driver.

The engine is rule-agnostic: it parses each file once, hands the AST to
every registered rule (:mod:`repro.lint.rules`), collects the raw
findings, then applies inline suppressions.  Baseline filtering is a
separate, later stage (:mod:`repro.lint.baseline`) so that suppressed
findings never reach the baseline at all.

Suppression grammar (one comment silences one line, or the next line
when the comment stands alone)::

    # repro: lint-ignore[DET002] reason why this is safe
    # repro: lint-ignore[DET002,DET003] shared reason

A suppression without a reason does not suppress anything and is itself
reported as ``SUP001`` — the whole point is that every silenced finding
carries a recorded justification.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "Severity",
    "Suppression",
    "apply_suppressions",
    "check_tree",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "malformed_suppression_findings",
    "module_name_for_path",
    "parse_failure_finding",
    "parse_suppressions",
    "run_lint",
    "with_select",
]


class Severity:
    """Per-rule severity labels (plain strings, ordered for display)."""

    ERROR = "error"
    WARNING = "warning"

    ORDER: Tuple[str, ...] = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule firing at a specific source location.

    ``hops`` is the optional provenance trail behind an interprocedural
    finding (seed-taint paths): ``(path, line, note)`` triples ordered
    source-first, sink-last.  Hops are rendered into the message and the
    SARIF ``codeFlows`` but deliberately excluded from the fingerprint,
    which must stay stable when unrelated edits renumber the hop lines.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    hops: Tuple[Tuple[str, int, str], ...] = ()

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining, tolerant of line renumbering.

        Hashes the *content* of the flagged line (whitespace-normalised)
        rather than its number, so adding code above a grandfathered
        finding does not invalidate the baseline entry.  Hop lines are
        excluded for the same reason.
        """
        normalized = " ".join(self.snippet.split())
        payload = f"{_norm_path(self.path)}::{self.rule}::{normalized}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        """Render as ``path:line:col: RULE [severity] message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


def _norm_path(path: str) -> str:
    """Normalise a path for fingerprinting (separator- and cwd-stable)."""
    normalized = path.replace(os.sep, "/")
    for anchor in ("/src/", "/tests/"):
        index = normalized.rfind(anchor)
        if index >= 0:
            return normalized[index + 1 :]
    return normalized.lstrip("./")


# Wall-clock allowlist: the triaged measurement/scheduling modules.  The
# exec pool and supervisor read the clock for *observed* quantities
# (per-item wall time, timeout deadlines, retry backoff) that never feed
# a simulated result; profiling and span timing are measurement by
# definition.  The sampling profiler (obs.prof) exists to sample the
# wall/CPU clock — the clock is the instrument — and is provably
# passive: it only ever *reads* collector state, so profiler-off runs
# are byte-identical (pinned by tests/test_telemetry.py).  The perf
# ledger schema (perf.schema) stamps benchmark results with a
# wall-clock timestamp and host fingerprint as provenance metadata;
# nothing simulated consumes them.  The soak service runs on virtual
# ticks and reads the clock only for its ``max_wall`` safety valve,
# which truncates the loop without changing any completed tick's
# result.  Everything else — simulation, protocol, graph and analysis
# code — must use the sim clock or an injected clock.
DEFAULT_WALLCLOCK_ALLOWLIST: Tuple[str, ...] = (
    "repro.exec.pool",
    "repro.exec.profiling",
    "repro.exec.supervisor",
    "repro.obs.prof",
    "repro.obs.spans",
    "repro.perf.schema",
    "repro.service.soak",
)

# Modules whose code runs inside worker processes' task loops, where a
# swallowed KeyboardInterrupt/SystemExit turns ^C into a hang.
DEFAULT_WORKER_MODULES: Tuple[str, ...] = ("repro.exec",)


@dataclass(frozen=True)
class LintConfig:
    """Tunable policy for a lint run.

    ``wallclock_allowlist`` and ``worker_modules`` are dotted module
    prefixes; a module matches when it equals a prefix or starts with
    ``prefix + "."``.
    """

    wallclock_allowlist: Tuple[str, ...] = DEFAULT_WALLCLOCK_ALLOWLIST
    worker_modules: Tuple[str, ...] = DEFAULT_WORKER_MODULES
    select: Optional[Tuple[str, ...]] = None

    def allows_wallclock(self, module: str) -> bool:
        return _matches_prefix(module, self.wallclock_allowlist)

    def is_worker_module(self, module: str) -> bool:
        return _matches_prefix(module, self.worker_modules)

    def rule_selected(self, rule_id: str) -> bool:
        return self.select is None or rule_id in self.select


def _matches_prefix(module: str, prefixes: Sequence[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


@dataclass
class ModuleContext:
    """Everything a rule needs to know about the file under analysis."""

    path: str
    module: str
    source_lines: List[str]
    config: LintConfig

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""

    def finding(
        self,
        rule: str,
        severity: str,
        node: ast.AST,
        message: str,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            severity=severity,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet(line),
        )


def module_name_for_path(path: str) -> str:
    """Derive a dotted module name from a file path.

    ``.../src/repro/exec/pool.py`` → ``repro.exec.pool``;
    ``.../repro/obs/spans.py`` → ``repro.obs.spans``; files outside a
    recognisable package root fall back to their stem (fixtures).
    """
    normalized = os.path.normpath(path).replace(os.sep, "/")
    parts = normalized.split("/")
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[: -len(".py")]
    parts = parts[:-1] + [stem]
    anchor = -1
    for index, part in enumerate(parts):
        if part == "src":
            anchor = index
    if anchor < 0:
        for index, part in enumerate(parts):
            if part == "repro":
                anchor = index - 1
                break
    if anchor < 0:
        return stem
    dotted = parts[anchor + 1 :]
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted) if dotted else stem


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ignore(?P<scope>-file)?"
    r"\[(?P<codes>[A-Z0-9_,\s]+)\]\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: lint-ignore[...]`` comment.

    ``file_scope`` marks the ``lint-ignore-file[RULE] reason`` variant,
    which silences the named rules for the whole file instead of one
    line.  The mandatory reason is enforced for both scopes (SUP001).
    """

    line: int
    codes: Tuple[str, ...]
    reason: str
    standalone: bool
    file_scope: bool = False

    @property
    def target_line(self) -> int:
        """The source line this suppression silences."""
        return self.line + 1 if self.standalone else self.line


def parse_suppressions(
    source_lines: Sequence[str],
) -> Tuple[List[Suppression], List[int]]:
    """Scan for suppression comments (line- and file-scoped).

    Returns ``(suppressions, malformed_lines)`` where ``malformed_lines``
    are comments missing the mandatory reason (these suppress nothing).
    """
    suppressions: List[Suppression] = []
    malformed: List[int] = []
    for number, text in enumerate(source_lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = tuple(
            code.strip()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        reason = match.group("reason").strip()
        if not codes or not reason:
            malformed.append(number)
            continue
        standalone = text[: match.start()].strip() == ""
        suppressions.append(
            Suppression(
                line=number,
                codes=codes,
                reason=reason,
                standalone=standalone,
                file_scope=match.group("scope") is not None,
            )
        )
    return suppressions, malformed


def apply_suppressions(
    findings: Iterable[Finding],
    suppressions: Sequence[Suppression],
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(kept, suppressed)`` using inline comments.

    Line-scoped comments silence their target line; file-scoped ones
    silence the named rules anywhere in the file the findings came from
    (the caller passes one file's findings at a time).
    """
    by_line: Dict[int, Set[str]] = {}
    file_codes: Set[str] = set()
    for suppression in suppressions:
        if suppression.file_scope:
            file_codes.update(suppression.codes)
        else:
            by_line.setdefault(suppression.target_line, set()).update(
                suppression.codes
            )
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        codes = by_line.get(finding.line, set())
        if finding.rule in codes or finding.rule in file_codes:
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed


# ----------------------------------------------------------------------
# File / source drivers
# ----------------------------------------------------------------------


@dataclass
class LintResult:
    """Aggregate outcome of a lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        """Per-rule tally of live (non-suppressed, non-baselined) findings."""
        tally: Dict[str, int] = {}
        for finding in self.findings:
            tally[finding.rule] = tally.get(finding.rule, 0) + 1
        return dict(sorted(tally.items()))

    def exit_code(self) -> int:
        """The ``repro lint`` contract: 0 clean, 1 findings."""
        return 0 if self.clean else 1


def parse_failure_finding(
    exc: SyntaxError, path: str, source_lines: Sequence[str]
) -> Finding:
    """Render a ``SyntaxError`` as the PARSE001 engine diagnostic."""
    line = exc.lineno or 1
    snippet = ""
    if 1 <= line <= len(source_lines):
        snippet = source_lines[line - 1].strip()
    return Finding(
        rule="PARSE001",
        severity=Severity.ERROR,
        path=path,
        line=line,
        col=(exc.offset or 1) - 1,
        message=f"file could not be parsed: {exc.msg}",
        snippet=snippet,
    )


def check_tree(tree: ast.Module, context: ModuleContext) -> List[Finding]:
    """Run every selected per-file AST rule over a parsed module."""
    from repro.lint.rules import RULES

    raw: List[Finding] = []
    for rule in RULES:
        if context.config.rule_selected(rule.id):
            raw.extend(rule.check(tree, context))
    return raw


def malformed_suppression_findings(
    malformed: Sequence[int], context: ModuleContext
) -> List[Finding]:
    """SUP001 findings for suppression comments missing their reason."""
    if not context.config.rule_selected("SUP001"):
        return []
    return [
        Finding(
            rule="SUP001",
            severity=Severity.WARNING,
            path=context.path,
            line=line,
            col=0,
            message=(
                "suppression comment is missing its mandatory "
                "reason (or rule codes) and suppresses nothing; "
                "write '# repro: lint-ignore[RULE] reason' (or "
                "lint-ignore-file[RULE] reason for a whole file)"
            ),
            snippet=context.snippet(line),
        )
        for line in malformed
    ]


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    module: Optional[str] = None,
) -> LintResult:
    """Lint one source string; the building block for files and tests."""
    config = config or LintConfig()
    source_lines = source.splitlines()
    context = ModuleContext(
        path=path,
        module=module if module is not None else module_name_for_path(path),
        source_lines=source_lines,
        config=config,
    )
    result = LintResult(files=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        if config.rule_selected("PARSE001"):
            result.findings.append(
                parse_failure_finding(exc, path, source_lines)
            )
        return result

    raw = check_tree(tree, context)
    suppressions, malformed = parse_suppressions(source_lines)
    kept, suppressed = apply_suppressions(raw, suppressions)
    kept.extend(malformed_suppression_findings(malformed, context))
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.findings = kept
    result.suppressed = suppressed
    return result


def lint_file(path: str, config: Optional[LintConfig] = None) -> LintResult:
    """Lint one file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, config=config)


def iter_python_files(
    paths: Sequence[str], exclude: Sequence[str] = ()
) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    ``exclude`` entries are path substrings (separator-normalised);
    any file whose path contains one is skipped — used by the CI gate
    to walk ``tests/`` without tripping over the intentionally-bad
    ``tests/lint_fixtures/`` corpus.
    """
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            collected.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        collected.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    if exclude:
        collected = [
            path
            for path in collected
            if not any(
                pattern in path.replace(os.sep, "/") for pattern in exclude
            )
        ]
    return sorted(dict.fromkeys(collected))


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    exclude: Sequence[str] = (),
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` and merge the results."""
    merged = LintResult()
    for path in iter_python_files(paths, exclude=exclude):
        single = lint_file(path, config=config)
        merged.findings.extend(single.findings)
        merged.suppressed.extend(single.suppressed)
        merged.files += single.files
    merged.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return merged


def run_lint(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    baseline_path: Optional[str] = None,
    project: bool = False,
    exclude: Sequence[str] = (),
) -> LintResult:
    """Lint ``paths``, then subtract the baseline file if one is given.

    ``project=True`` runs the whole-program pass (import graph, call
    graph, interprocedural seed taint, oracle conformance, API drift)
    on top of the per-file rules.  This is the function behind
    ``repro lint`` and the tier-1 self-check.
    """
    from repro.lint.baseline import apply_baseline, load_baseline

    if project:
        from repro.lint.project import lint_project

        result = lint_project(paths, config=config, exclude=exclude)
    else:
        result = lint_paths(paths, config=config, exclude=exclude)
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        apply_baseline(result, baseline)
    return result


def with_select(config: LintConfig, rules: Sequence[str]) -> LintConfig:
    """Return a copy of ``config`` restricted to ``rules``."""
    return replace(config, select=tuple(rules))
