"""The rule set: determinism, fork-safety and API-hygiene checks.

Each rule is a small class with an ``id``, a ``severity``, a one-line
``summary`` (rendered into the DESIGN.md §11 catalog) and a ``check``
method taking the parsed module and a :class:`~repro.lint.engine.
ModuleContext`.  Rules are pure AST analyses — nothing here imports or
executes the code under inspection.

Adding a rule:

1. subclass :class:`Rule`, give it the next free id in its family,
2. append an instance to :data:`RULES`,
3. drop a ``<rule>_bad.py`` / ``<rule>_good.py`` pair into
   ``tests/lint_fixtures/`` (the fixture sweep in ``tests/test_lint.py``
   picks them up by name and will fail until both exist).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import Finding, ModuleContext, Severity

__all__ = [
    "RULES",
    "ImportMap",
    "ImportTimeConcurrencyRule",
    "ImportTimeResourceRule",
    "InterruptSwallowRule",
    "MutableDefaultRule",
    "Rule",
    "SetIterationRule",
    "UnseededRandomRule",
    "WallClockRule",
    "rule_ids",
]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


@dataclass
class ImportMap:
    """Resolves local names back to the dotted things they import.

    ``modules`` maps an alias to a module path (``import random as rnd``
    → ``{"rnd": "random"}``); ``names`` maps a bare name to its origin
    (``from random import shuffle`` → ``{"shuffle": "random.shuffle"}``).
    """

    modules: Dict[str, str] = field(default_factory=dict)
    names: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    imports.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return imports

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, or None."""
        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        parts.reverse()
        base = cursor.id
        if base in self.modules:
            return ".".join([self.modules[base]] + parts)
        if base in self.names:
            return ".".join([self.names[base]] + parts)
        if not parts:
            return base  # plain builtin or local name
        return None


class Rule:
    """Base class: metadata plus the ``check`` hook."""

    id: str = ""
    severity: str = Severity.ERROR
    summary: str = ""

    def check(
        self, tree: ast.Module, ctx: ModuleContext
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return ctx.finding(self.id, self.severity, node, message)


def _walk_skipping_defs(root: ast.AST) -> Iterator[ast.AST]:
    """Depth-first walk that does not descend into nested functions.

    ``ast.walk`` offers no way to prune a subtree; this one skips
    ``def``/``async def``/``lambda`` bodies, which is what every scoped
    analysis here needs.
    """
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _import_time_exprs(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield the statements/expressions evaluated at module import.

    Descends through top-level ``if``/``try``/``with``/loops and class
    bodies (all run at import) but not into function bodies, and skips
    ``if __name__ == "__main__"`` and ``if TYPE_CHECKING`` blocks.
    Compound statements contribute their header expressions (``with``
    items, loop iterables, ``if`` tests); simple statements are yielded
    whole.
    """

    def is_main_guard(test: ast.expr) -> bool:
        return (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__"
        )

    def is_type_checking(test: ast.expr) -> bool:
        if isinstance(test, ast.Attribute):
            return test.attr == "TYPE_CHECKING"
        return isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"

    def walk(statements: Sequence[ast.stmt]) -> Iterator[ast.AST]:
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.If):
                if is_main_guard(stmt.test) or is_type_checking(stmt.test):
                    yield from walk(stmt.orelse)
                    continue
                yield stmt.test
                yield from walk(stmt.body)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                yield from walk(stmt.body)
                for handler in stmt.handlers:
                    yield from walk(handler.body)
                yield from walk(stmt.orelse)
                yield from walk(stmt.finalbody)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    yield item.context_expr
                yield from walk(stmt.body)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                yield stmt.iter
                yield from walk(stmt.body)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, ast.While):
                yield stmt.test
                yield from walk(stmt.body)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body)
            else:
                yield stmt

    yield from walk(tree.body)


def _import_time_calls(tree: ast.Module) -> Iterator[ast.Call]:
    """Every Call evaluated at import time, excluding nested defs."""
    for node in _import_time_exprs(tree):
        for sub in _walk_skipping_defs(node):
            if isinstance(sub, ast.Call):
                yield sub


# ----------------------------------------------------------------------
# DET001 — unseeded module-level random
# ----------------------------------------------------------------------

_RANDOM_OK = {"Random", "SystemRandom"}
_RANDOM_BANNED = {
    "betavariate",
    "binomialvariate",
    "choice",
    "choices",
    "expovariate",
    "gammavariate",
    "gauss",
    "getrandbits",
    "getstate",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "setstate",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}


class UnseededRandomRule(Rule):
    """DET001: module-level ``random.*`` draws from hidden global state."""

    id = "DET001"
    severity = Severity.ERROR
    summary = (
        "unseeded module-level random.* call — route randomness through "
        "random.Random(seed) / an injected rng"
    )

    def check(
        self, tree: ast.Module, ctx: ModuleContext
    ) -> Iterator[Finding]:
        imports = ImportMap.of(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _RANDOM_BANNED or alias.name == "*":
                        yield self.finding(
                            ctx,
                            node,
                            f"'from random import {alias.name}' pulls the "
                            "shared global generator into scope; use "
                            "random.Random(seed) or an injected rng "
                            "instead",
                        )
            elif isinstance(node, ast.Call):
                dotted = imports.resolve(node.func)
                if (
                    dotted is not None
                    and dotted.startswith("random.")
                    and dotted.split(".", 1)[1] in _RANDOM_BANNED
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted}() draws from the process-global "
                        "generator, whose state depends on import order "
                        "and other callers; use random.Random(seed) or "
                        "an injected rng (see graphs/generators/"
                        "random.py for the idiom)",
                    )


# ----------------------------------------------------------------------
# DET002 — wall-clock reads
# ----------------------------------------------------------------------

_TIME_READS = {
    "clock_gettime",
    "clock_gettime_ns",
    "gmtime",
    "localtime",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "time",
    "time_ns",
}
_DATETIME_READS = {
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}


class WallClockRule(Rule):
    """DET002: wall-clock reads outside the profiling/obs allowlist."""

    id = "DET002"
    severity = Severity.ERROR
    summary = (
        "wall-clock read (time.*/datetime.now) outside the allowlisted "
        "profiling/obs modules — deterministic code must use the sim "
        "clock or an injected clock"
    )

    def check(
        self, tree: ast.Module, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if ctx.config.allows_wallclock(ctx.module):
            return
        imports = ImportMap.of(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_READS or alias.name == "*":
                            yield self.finding(
                                ctx,
                                node,
                                f"'from time import {alias.name}' imports "
                                "a wall-clock read into a non-allowlisted "
                                "module; use the simulation clock (or add "
                                "this module to the DET002 allowlist if "
                                "it is genuinely profiling/obs code)",
                            )
            elif isinstance(node, ast.Attribute):
                dotted = imports.resolve(node)
                if dotted is None:
                    continue
                banned = (
                    dotted in _DATETIME_READS
                    or (
                        dotted.startswith("time.")
                        and dotted.split(".", 1)[1] in _TIME_READS
                    )
                )
                if banned:
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted} reads the wall clock; simulation and "
                        "protocol code must use the sim clock so runs "
                        "replay byte-identically (allowlisted only in "
                        "profiling/obs modules)",
                    )


# ----------------------------------------------------------------------
# DET003 — unordered set iteration
# ----------------------------------------------------------------------


def _is_set_expr(node: ast.expr, known_sets: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in known_sets
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set",
            "frozenset",
        ):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
            "copy",
        ):
            return _is_set_expr(node.func.value, known_sets)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, known_sets) or _is_set_expr(
            node.right, known_sets
        )
    return False


class SetIterationRule(Rule):
    """DET003: set iteration order varies with PYTHONHASHSEED."""

    id = "DET003"
    severity = Severity.WARNING
    summary = (
        "iteration over a set without sorted() — order differs across "
        "processes, so anything it feeds (traces, hashes, event order) "
        "diverges between workers"
    )

    _MESSAGE = (
        "iterating a set without sorted(): element order depends on "
        "PYTHONHASHSEED and can differ between worker processes; wrap "
        "in sorted(...) (or build an insertion-ordered dict) before "
        "the order can leak into traces, hashes or emitted events"
    )

    def check(
        self, tree: ast.Module, ctx: ModuleContext
    ) -> Iterator[Finding]:
        scopes: List[ast.AST] = [tree]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            yield from self._check_scope(scope, ctx)

    def _scope_statements(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Nodes belonging to ``scope`` but not to a nested function."""
        for stmt in getattr(scope, "body", []):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from _walk_skipping_defs(stmt)

    def _check_scope(
        self, scope: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        known_sets: Set[str] = set()
        demoted: Set[str] = set()
        for node in self._scope_statements(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if _is_set_expr(node.value, known_sets):
                            known_sets.add(target.id)
                        else:
                            demoted.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    if _is_set_expr(node.value, known_sets):
                        known_sets.add(node.target.id)
                    else:
                        demoted.add(node.target.id)
        known_sets -= demoted

        for node in self._scope_statements(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, known_sets):
                    yield self.finding(ctx, node.iter, self._MESSAGE)
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
            ):
                # SetComp is deliberately exempt: a set built from a set
                # carries no iteration order out of the expression.
                for generator in node.generators:
                    if _is_set_expr(generator.iter, known_sets):
                        yield self.finding(ctx, generator.iter, self._MESSAGE)
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple")
                    and len(node.args) == 1
                    and _is_set_expr(node.args[0], known_sets)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{node.func.id}() over a set materialises an "
                        "arbitrary, process-dependent order; use "
                        "sorted(...) instead",
                    )


# ----------------------------------------------------------------------
# FORK001 / FORK002 — import-time state that crosses fork()
# ----------------------------------------------------------------------

_CONCURRENCY_FACTORIES = {
    "threading.Barrier",
    "threading.BoundedSemaphore",
    "threading.Condition",
    "threading.Event",
    "threading.Lock",
    "threading.RLock",
    "threading.Semaphore",
    "threading.Thread",
    "threading.Timer",
    "threading.local",
    "multiprocessing.Array",
    "multiprocessing.Barrier",
    "multiprocessing.BoundedSemaphore",
    "multiprocessing.Condition",
    "multiprocessing.Event",
    "multiprocessing.Lock",
    "multiprocessing.Manager",
    "multiprocessing.Pool",
    "multiprocessing.Process",
    "multiprocessing.Queue",
    "multiprocessing.RLock",
    "multiprocessing.Semaphore",
    "multiprocessing.SimpleQueue",
    "multiprocessing.Value",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
}

_RESOURCE_FACTORIES = {
    "open",
    "io.FileIO",
    "io.open",
    "io.open_code",
    "os.fdopen",
    "os.open",
    "os.pipe",
    "socket.create_connection",
    "socket.create_server",
    "socket.socket",
    "socket.socketpair",
    "tempfile.NamedTemporaryFile",
    "tempfile.SpooledTemporaryFile",
    "tempfile.TemporaryFile",
    "tempfile.mkstemp",
}


class ImportTimeConcurrencyRule(Rule):
    """FORK001: locks/threads/pools created when the module is imported."""

    id = "FORK001"
    severity = Severity.ERROR
    summary = (
        "thread/lock/pool created at module import time — the object is "
        "duplicated into every forked worker (a held lock stays held "
        "forever in the child)"
    )

    def check(
        self, tree: ast.Module, ctx: ModuleContext
    ) -> Iterator[Finding]:
        imports = ImportMap.of(tree)
        for call in _import_time_calls(tree):
            dotted = imports.resolve(call.func)
            if dotted in _CONCURRENCY_FACTORIES:
                yield self.finding(
                    ctx,
                    call,
                    f"{dotted}() at import time crosses fork() into "
                    "exec.pool/exec.supervisor workers in undefined "
                    "state; create it lazily inside the function or "
                    "process that owns it",
                )


class ImportTimeResourceRule(Rule):
    """FORK002: file handles / sockets opened when the module is imported."""

    id = "FORK002"
    severity = Severity.ERROR
    summary = (
        "file handle or socket opened at module import time — the fd is "
        "shared with every forked worker, interleaving writes and "
        "corrupting offsets"
    )

    def check(
        self, tree: ast.Module, ctx: ModuleContext
    ) -> Iterator[Finding]:
        imports = ImportMap.of(tree)
        for call in _import_time_calls(tree):
            dotted = imports.resolve(call.func)
            if dotted in _RESOURCE_FACTORIES:
                yield self.finding(
                    ctx,
                    call,
                    f"{dotted}(...) at import time leaves the descriptor "
                    "open in every forked worker (shared offsets, "
                    "interleaved writes); open it lazily in the code "
                    "path that uses it",
                )


# ----------------------------------------------------------------------
# EXC001 — interrupt-swallowing exception handlers
# ----------------------------------------------------------------------


def _caught_names(handler: ast.ExceptHandler) -> Set[str]:
    if handler.type is None:
        return {"*"}
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: Set[str] = set()
    for node in types:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or hard-exits.

    Accepted escapes: a bare ``raise``, re-raising the bound name, or a
    call to ``os._exit`` (the only correct way for a forked worker to
    die without running inherited cleanup).
    """
    for node in _walk_skipping_defs(handler):
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if (
                isinstance(node.exc, ast.Name)
                and handler.name is not None
                and node.exc.id == handler.name
            ):
                return True
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if (
                node.func.attr == "_exit"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "os"
            ):
                return True
    return False


class InterruptSwallowRule(Rule):
    """EXC001: broad handlers that can eat KeyboardInterrupt/SystemExit."""

    id = "EXC001"
    severity = Severity.ERROR
    summary = (
        "bare except / except BaseException without re-raise, or "
        "except Exception in a worker loop without an explicit "
        "KeyboardInterrupt/SystemExit escape — ^C turns into a hang"
    )

    def check(
        self, tree: ast.Module, ctx: ModuleContext
    ) -> Iterator[Finding]:
        in_worker = ctx.config.is_worker_module(ctx.module)
        yield from self._visit(tree.body, ctx, in_worker, loop_depth=0)

    def _visit(
        self,
        statements: Sequence[ast.stmt],
        ctx: ModuleContext,
        in_worker: bool,
        loop_depth: int,
    ) -> Iterator[Finding]:
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._visit(stmt.body, ctx, in_worker, 0)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                yield from self._visit(
                    stmt.body, ctx, in_worker, loop_depth + 1
                )
                yield from self._visit(stmt.orelse, ctx, in_worker, loop_depth)
            elif isinstance(stmt, ast.Try):
                yield from self._check_try(stmt, ctx, in_worker, loop_depth)
                yield from self._visit(stmt.body, ctx, in_worker, loop_depth)
                for handler in stmt.handlers:
                    yield from self._visit(
                        handler.body, ctx, in_worker, loop_depth
                    )
                yield from self._visit(stmt.orelse, ctx, in_worker, loop_depth)
                yield from self._visit(
                    stmt.finalbody, ctx, in_worker, loop_depth
                )
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                yield from self._visit(stmt.body, ctx, in_worker, loop_depth)
            elif isinstance(stmt, ast.If):
                yield from self._visit(stmt.body, ctx, in_worker, loop_depth)
                yield from self._visit(stmt.orelse, ctx, in_worker, loop_depth)
            elif isinstance(stmt, ast.ClassDef):
                yield from self._visit(stmt.body, ctx, in_worker, loop_depth)

    def _check_try(
        self,
        node: ast.Try,
        ctx: ModuleContext,
        in_worker: bool,
        loop_depth: int,
    ) -> Iterator[Finding]:
        interrupts_escape = False  # an earlier arm already handles KI/SE
        for handler in node.handlers:
            caught = _caught_names(handler)
            safe = _handler_reraises(handler)
            if caught & {"KeyboardInterrupt", "SystemExit"} and safe:
                interrupts_escape = True
                continue
            broad = bool(caught & {"*", "BaseException"})
            if broad and not safe and not interrupts_escape:
                label = (
                    "bare 'except:'"
                    if "*" in caught
                    else "'except BaseException'"
                )
                yield self.finding(
                    ctx,
                    handler,
                    f"{label} swallows KeyboardInterrupt/SystemExit; "
                    "re-raise them (or os._exit in a forked child) "
                    "before handling the rest, e.g. a preceding "
                    "'except (KeyboardInterrupt, SystemExit): raise'",
                )
            elif (
                in_worker
                and loop_depth > 0
                and "Exception" in caught
                and not safe
                and not interrupts_escape
            ):
                yield self.finding(
                    ctx,
                    handler,
                    "'except Exception' in a worker loop: give "
                    "KeyboardInterrupt/SystemExit an explicit escape "
                    "arm ('except (KeyboardInterrupt, SystemExit): "
                    "raise' — os._exit in a forked child) so a ^C or "
                    "injected exit cannot be absorbed into the retry "
                    "path",
                )
            # a safe broad arm also escapes interrupts ('except
            # BaseException: ... raise'); a safe 'except Exception' does
            # not — KeyboardInterrupt/SystemExit bypass it entirely and
            # can still land in a later, broader arm
            if caught & {"*", "BaseException"} and safe:
                interrupts_escape = True


# ----------------------------------------------------------------------
# API001 — mutable default arguments
# ----------------------------------------------------------------------


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray")
    return False


class MutableDefaultRule(Rule):
    """API001: mutable defaults are shared across every call."""

    id = "API001"
    severity = Severity.ERROR
    summary = (
        "mutable default argument in a public function — the default is "
        "evaluated once and shared by every caller"
    )

    def check(
        self, tree: ast.Module, ctx: ModuleContext
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default in public function "
                        f"{node.name}(): the object is created once at "
                        "def time and mutated state leaks between "
                        "calls; default to None and create it inside",
                    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

RULES: Tuple[Rule, ...] = (
    UnseededRandomRule(),
    WallClockRule(),
    SetIterationRule(),
    ImportTimeConcurrencyRule(),
    ImportTimeResourceRule(),
    InterruptSwallowRule(),
    MutableDefaultRule(),
)

# Engine-level diagnostics that are not AST rules but share the id space.
ENGINE_RULE_SUMMARIES: Dict[str, str] = {
    "SUP001": "suppression comment missing its mandatory reason",
    "PARSE001": "file could not be parsed",
}


def rule_ids() -> Tuple[str, ...]:
    """Every valid rule id: AST rules, project rules, engine diagnostics."""
    from repro.lint.rules_project import project_rule_ids

    return (
        tuple(rule.id for rule in RULES)
        + project_rule_ids()
        + tuple(sorted(ENGINE_RULE_SUMMARIES))
    )
