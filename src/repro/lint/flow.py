"""Interprocedural dataflow: seed-provenance taint analysis.

The determinism contract says every RNG in the system draws from a seed
that is a *pure function of experiment identity* — derived via
:func:`repro.exec.seeding.derive_seed`, read from an
``ExperimentSpec``/config field, or a literal.  The per-file rules can
catch ``random.random()``; they cannot catch a seed that is minted
correctly and then laundered through three call frames into a
non-derived RNG.  This module can.

The analysis is a classic source/sink/sanitizer taint lattice stitched
across calls with function summaries:

**lattice** (join = max)::

    TRUSTED  <  PARAM  <  OPAQUE  <  TAINTED

* ``TRUSTED`` — constants, ``derive_seed(...)`` results, attribute or
  subscript reads whose terminal name contains ``seed`` (spec/config
  fields, ``args.seed``), and names annotated at their assignment with
  ``# repro: seed-source reason``;
* ``PARAM`` — traces to a parameter of the enclosing function: an
  *obligation* that is discharged or flagged at each resolvable call
  site (this is the interprocedural stitch);
* ``OPAQUE`` — provenance the analysis cannot follow (external call
  results, unresolvable names).  Flagged only at direct RNG
  construction sites, where provenance is mandatory;
* ``TAINTED`` — provably nondeterministic: wall-clock reads, pids,
  ``os.urandom``, ``uuid``, ``hash()``/``id()``, draws from the global
  ``random`` module, or anything derived from those.

**summaries**: each function's returns are classified once
(memoized); calling a project function folds the callee's summary into
the caller's classification, mapping ``PARAM`` returns back onto the
call-site arguments.  ``derive_seed`` (and any summary-``TRUSTED``
helper) acts as a *sanitizer* for opacity but never for taint —
``derive_seed(time.time())`` is still nondeterministic.

Every finding carries its full taint path as ``(path, line, note)``
hops, source-first; notes are line-free prose so the reported chain is
stable when unrelated edits renumber lines (pinned by the regression
test in ``tests/test_lint_project.py``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.project import (
    FunctionInfo,
    ProjectModel,
    _resolve_relative,
    resolve_call_target,
)

__all__ = [
    "Hop",
    "Provenance",
    "SeedIssue",
    "SeedFlowAnalysis",
    "TRUSTED",
    "PARAM",
    "OPAQUE",
    "TAINTED",
    "analyze_seed_flow",
]

Hop = Tuple[str, int, str]

TRUSTED = 0
PARAM = 1
OPAQUE = 2
TAINTED = 3

_STATE_NAMES = {
    TRUSTED: "trusted",
    PARAM: "parameter",
    OPAQUE: "opaque",
    TAINTED: "tainted",
}

# Provably nondeterministic callables: seeding from any of these makes
# the run irreproducible by construction.
TAINTED_CALLS: Set[str] = {
    "datetime.date.today",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "hash",
    "id",
    "os.getpid",
    "os.getppid",
    "os.times",
    "os.urandom",
    "random.betavariate",
    "random.choice",
    "random.gauss",
    "random.getrandbits",
    "random.randbytes",
    "random.randint",
    "random.random",
    "random.randrange",
    "random.uniform",
    "secrets.randbelow",
    "secrets.randbits",
    "secrets.token_bytes",
    "secrets.token_hex",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.time",
    "time.time_ns",
    "uuid.uuid1",
    "uuid.uuid4",
}

# The blessed derivation root(s): results carry trusted provenance, but
# taint in any argument passes straight through (a sanitizer for
# opacity, never for nondeterminism).
TRUSTED_CALLS: Set[str] = {
    "repro.exec.seeding.derive_seed",
}

# Deterministic pure builtins: result provenance is the join of the
# argument provenances.
PASSTHROUGH_CALLS: Set[str] = {
    "abs",
    "divmod",
    "float",
    "int",
    "max",
    "min",
    "pow",
    "round",
    "sum",
}

# Deterministic regardless of argument identity.
NEUTRAL_CALLS: Set[str] = {"len", "bool", "str", "repr", "ord", "chr"}

_SEED_NAME_RE = re.compile(r"seed", re.IGNORECASE)

_SEED_SOURCE_RE = re.compile(
    r"#\s*repro:\s*seed-source\b\s*(?P<reason>.*)$"
)

_MAX_HOPS = 16
_MAX_OBLIGATION_DEPTH = 10


def _is_seedish(name: str) -> bool:
    return _SEED_NAME_RE.search(name) is not None


@dataclass(frozen=True)
class Provenance:
    """Classification of one expression's value."""

    state: int
    detail: str = ""
    param: Optional[str] = None
    hops: Tuple[Hop, ...] = ()

    def with_hop(self, hop: Hop) -> "Provenance":
        if len(self.hops) >= _MAX_HOPS:
            return self
        return replace(self, hops=self.hops + (hop,))


_TRUSTED_PROV = Provenance(TRUSTED, "literal/derived value")


def _join(provs: Sequence[Provenance]) -> Provenance:
    """Lattice join: the worst contributor wins, keeping its evidence."""
    if not provs:
        return _TRUSTED_PROV
    worst = provs[0]
    for prov in provs[1:]:
        if prov.state > worst.state:
            worst = prov
    return worst


@dataclass(frozen=True)
class SeedIssue:
    """One raw flow issue; rules_project maps these onto SEED00x ids."""

    kind: str  # "tainted" | "opaque" | "unseeded"
    module: str
    path: str
    line: int
    col: int
    sink: str  # human description of the seeding position
    detail: str  # what the offending provenance is
    hops: Tuple[Hop, ...] = ()


@dataclass
class _Scope:
    """One analyzable body: a function, method, nested def, or module."""

    qualname: str
    module: str
    body: Sequence[ast.stmt]
    params: Tuple[str, ...] = ()
    class_name: Optional[str] = None
    info: Optional[FunctionInfo] = None
    outer_env: Dict[str, Provenance] = field(default_factory=dict)
    # function-level imports: local alias -> dotted origin
    local_names: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class _Obligation:
    """A sink reached by a parameter: check every resolvable call site."""

    qualname: str  # function whose parameter feeds the sink
    param: str
    sink: str
    sink_hops: Tuple[Hop, ...]  # path from the parameter to the sink
    depth: int = 0


class SeedFlowAnalysis:
    """Whole-program seed-provenance pass over a :class:`ProjectModel`."""

    def __init__(self, project: ProjectModel) -> None:
        self.project = project
        self.issues: List[SeedIssue] = []
        self._summaries: Dict[str, Provenance] = {}
        self._in_progress: Set[str] = set()
        self._module_envs: Dict[str, Dict[str, Provenance]] = {}
        self._analyzed: Set[str] = set()
        self._obligations: List[_Obligation] = []
        self._seen_obligations: Set[Tuple[str, str]] = set()
        self._seed_source_lines: Dict[str, Set[int]] = {}
        self._pending_scopes: List[_Scope] = []

    # -- public entry ---------------------------------------------------

    def run(self) -> List[SeedIssue]:
        for module in sorted(self.project.modules):
            self._module_env(module)
        for qualname in sorted(self.project.functions):
            self._analyze_function(qualname)
        while self._pending_scopes:
            scope = self._pending_scopes.pop(0)
            self._analyze_scope(scope)
        self._discharge_obligations()
        self.issues.sort(key=lambda i: (i.path, i.line, i.col, i.kind))
        return self.issues

    # -- annotations ----------------------------------------------------

    def _seed_source_annotations(self, module: str) -> Set[int]:
        cached = self._seed_source_lines.get(module)
        if cached is not None:
            return cached
        info = self.project.modules.get(module)
        lines: Set[int] = set()
        if info is not None:
            for number, text in enumerate(info.source_lines, start=1):
                match = _SEED_SOURCE_RE.search(text)
                if match is not None and match.group("reason").strip():
                    lines.add(number)
        self._seed_source_lines[module] = lines
        return lines

    # -- environments ---------------------------------------------------

    def _module_env(self, module: str) -> Dict[str, Provenance]:
        cached = self._module_envs.get(module)
        if cached is not None:
            return cached
        env: Dict[str, Provenance] = {}
        self._module_envs[module] = env  # break import cycles
        info = self.project.modules.get(module)
        if info is None:
            return env
        scope = _Scope(
            qualname=f"{module}.<module>",
            module=module,
            body=info.tree.body,
        )
        self._run_scope(scope, env, collect_returns=False)
        return env

    # -- function analysis ----------------------------------------------

    def _analyze_function(self, qualname: str) -> Provenance:
        """Analyze a function once: record its sinks, return its summary."""
        cached = self._summaries.get(qualname)
        if cached is not None and qualname in self._analyzed:
            return cached
        if qualname in self._in_progress:
            return Provenance(OPAQUE, f"recursive call cycle via {qualname}")
        info = self.project.functions.get(qualname)
        if info is None:
            return Provenance(OPAQUE, f"unknown function {qualname}")
        self._in_progress.add(qualname)
        try:
            scope = _Scope(
                qualname=qualname,
                module=info.module,
                body=list(getattr(info.node, "body", [])),
                params=info.params,
                class_name=info.class_name,
                info=info,
            )
            env: Dict[str, Provenance] = dict(
                self._module_env(info.module)
            )
            for param in info.params:
                env[param] = Provenance(
                    PARAM, f"parameter '{param}'", param=param
                )
            returns = self._run_scope(scope, env, collect_returns=True)
            summary = _join(returns) if returns else _TRUSTED_PROV
            self._summaries[qualname] = summary
            self._analyzed.add(qualname)
            return summary
        finally:
            self._in_progress.discard(qualname)

    def _summary(self, qualname: str) -> Provenance:
        return self._analyze_function(qualname)

    def _analyze_scope(self, scope: _Scope) -> None:
        """Analyze a nested def captured during an outer pass."""
        if scope.qualname in self._analyzed:
            return
        self._analyzed.add(scope.qualname)
        env = dict(scope.outer_env)
        for param in scope.params:
            env[param] = Provenance(
                PARAM, f"parameter '{param}'", param=param
            )
        self._run_scope(scope, env, collect_returns=False)

    # -- the statement walk ---------------------------------------------

    def _run_scope(
        self,
        scope: _Scope,
        env: Dict[str, Provenance],
        collect_returns: bool,
    ) -> List[Provenance]:
        returns: List[Provenance] = []
        annotations = self._seed_source_annotations(scope.module)
        self._exec_block(scope.body, scope, env, returns, annotations)
        return returns if collect_returns else []

    def _exec_block(
        self,
        statements: Sequence[ast.stmt],
        scope: _Scope,
        env: Dict[str, Provenance],
        returns: List[Provenance],
        annotations: Set[int],
    ) -> None:
        for stmt in statements:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._record_local_import(stmt, scope)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if (
                    scope.qualname.endswith(".<module>")
                    and f"{scope.module}.{stmt.name}"
                    in self.project.functions
                ):
                    continue  # top-level function: analyzed directly
                nested = _Scope(
                    qualname=f"{scope.qualname}.<locals>.{stmt.name}",
                    module=scope.module,
                    body=stmt.body,
                    params=tuple(
                        a.arg
                        for a in (
                            stmt.args.posonlyargs
                            + stmt.args.args
                            + stmt.args.kwonlyargs
                        )
                    ),
                    class_name=scope.class_name,
                    outer_env=dict(env),
                    local_names=dict(scope.local_names),
                )
                self._pending_scopes.append(nested)
                continue
            if isinstance(stmt, ast.ClassDef):
                # class body at this level: methods become nested scopes
                for sub in stmt.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        qual = (
                            f"{scope.module}.{stmt.name}.{sub.name}"
                            if scope.qualname.endswith(".<module>")
                            else f"{scope.qualname}.<locals>."
                            f"{stmt.name}.{sub.name}"
                        )
                        if qual in self.project.functions:
                            continue  # top-level method: analyzed directly
                        params = tuple(
                            a.arg
                            for a in (
                                sub.args.posonlyargs
                                + sub.args.args
                                + sub.args.kwonlyargs
                            )
                        )
                        if params and params[0] in ("self", "cls"):
                            params = params[1:]
                        self._pending_scopes.append(
                            _Scope(
                                qualname=qual,
                                module=scope.module,
                                body=sub.body,
                                params=params,
                                class_name=stmt.name,
                                outer_env=dict(env),
                                local_names=dict(scope.local_names),
                            )
                        )
                continue

            # Scan only the parts of the statement that the recursion
            # below does not revisit: simple statements whole, compound
            # statements just their header expressions.
            if isinstance(
                stmt,
                (
                    ast.If,
                    ast.While,
                    ast.For,
                    ast.AsyncFor,
                    ast.With,
                    ast.AsyncWith,
                    ast.Try,
                ),
            ):
                for header in _header_exprs(stmt):
                    self._scan_sinks(header, scope, env)
            else:
                self._scan_sinks(stmt, scope, env)

            if isinstance(stmt, ast.Assign):
                value = self._classify(stmt.value, scope, env)
                if stmt.lineno in annotations:
                    value = Provenance(
                        TRUSTED, "annotated '# repro: seed-source'"
                    )
                for target in stmt.targets:
                    self._bind_target(target, value, env)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = self._classify(stmt.value, scope, env)
                if stmt.lineno in annotations:
                    value = Provenance(
                        TRUSTED, "annotated '# repro: seed-source'"
                    )
                self._bind_target(stmt.target, value, env)
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name):
                    current = env.get(stmt.target.id, _TRUSTED_PROV)
                    value = self._classify(stmt.value, scope, env)
                    env[stmt.target.id] = _join([current, value])
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    returns.append(
                        self._classify(stmt.value, scope, env)
                    )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._bind_target(
                    stmt.target, self._loop_prov(stmt.iter, scope, env), env
                )
                self._exec_block(stmt.body, scope, env, returns, annotations)
                self._exec_block(
                    stmt.orelse, scope, env, returns, annotations
                )
            elif isinstance(stmt, ast.While):
                self._exec_block(stmt.body, scope, env, returns, annotations)
                self._exec_block(
                    stmt.orelse, scope, env, returns, annotations
                )
            elif isinstance(stmt, ast.If):
                self._exec_block(stmt.body, scope, env, returns, annotations)
                self._exec_block(
                    stmt.orelse, scope, env, returns, annotations
                )
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        self._bind_target(
                            item.optional_vars,
                            Provenance(OPAQUE, "context-manager result"),
                            env,
                        )
                self._exec_block(stmt.body, scope, env, returns, annotations)
            elif isinstance(stmt, ast.Try):
                self._exec_block(stmt.body, scope, env, returns, annotations)
                for handler in stmt.handlers:
                    self._exec_block(
                        handler.body, scope, env, returns, annotations
                    )
                self._exec_block(
                    stmt.orelse, scope, env, returns, annotations
                )
                self._exec_block(
                    stmt.finalbody, scope, env, returns, annotations
                )

    def _record_local_import(self, stmt: ast.stmt, scope: _Scope) -> None:
        """Track a function-level import so its names resolve in-scope."""
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname is not None:
                    scope.local_names[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    scope.local_names[root] = root
        elif isinstance(stmt, ast.ImportFrom):
            target = _resolve_relative(scope.module, stmt)
            if target is None:
                return
            for alias in stmt.names:
                if alias.name != "*":
                    scope.local_names[alias.asname or alias.name] = (
                        f"{target}.{alias.name}"
                    )

    def _resolve_target(
        self, func: ast.expr, scope: _Scope
    ) -> Optional[str]:
        """Callee resolution that also sees function-level imports."""
        if scope.local_names:
            if isinstance(func, ast.Name) and func.id in scope.local_names:
                return scope.local_names[func.id]
            if isinstance(func, ast.Attribute):
                parts: List[str] = []
                cursor: ast.expr = func
                while isinstance(cursor, ast.Attribute):
                    parts.append(cursor.attr)
                    cursor = cursor.value
                if (
                    isinstance(cursor, ast.Name)
                    and cursor.id in scope.local_names
                ):
                    parts.reverse()
                    return ".".join(
                        [scope.local_names[cursor.id]] + parts
                    )
        return resolve_call_target(
            self.project, scope.module, func, scope.class_name
        )

    def _loop_prov(
        self,
        iterable: ast.expr,
        scope: _Scope,
        env: Dict[str, Provenance],
    ) -> Provenance:
        """Loop variables over range/enumerate are deterministic indices."""
        if isinstance(iterable, ast.Call):
            target = self._resolve_target(iterable.func, scope)
            if target in ("range", "enumerate", "zip", "sorted", "reversed"):
                return _TRUSTED_PROV
        return Provenance(OPAQUE, "loop variable")

    def _bind_target(
        self,
        target: ast.expr,
        value: Provenance,
        env: Dict[str, Provenance],
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(
                    element,
                    value
                    if value.state in (TAINTED,)
                    else Provenance(OPAQUE, "unpacked element"),
                    env,
                )

    # -- sinks -----------------------------------------------------------

    def _scan_sinks(
        self,
        root: ast.AST,
        scope: _Scope,
        env: Dict[str, Provenance],
    ) -> None:
        for node in ast.walk(root):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if not isinstance(node, ast.Call):
                continue
            target = self._resolve_target(node.func, scope)
            if target == "random.Random":
                if not node.args and not node.keywords:
                    self._record(
                        scope,
                        node,
                        kind="unseeded",
                        sink="random.Random()",
                        detail=(
                            "constructed with no seed: it is seeded from "
                            "OS entropy and every run differs"
                        ),
                        hops=(),
                    )
                elif node.args:
                    self._check_sink(
                        scope,
                        env,
                        node,
                        node.args[0],
                        sink="random.Random(...)",
                        direct=True,
                    )
                else:
                    for keyword in node.keywords:
                        if keyword.arg is not None:
                            self._check_sink(
                                scope,
                                env,
                                node,
                                keyword.value,
                                sink="random.Random(...)",
                                direct=True,
                            )
                continue
            # seed-named keyword arguments of non-project callables
            # (project callees are covered by parameter obligations)
            if target is not None and (
                target in self.project.functions
                or target in self.project.classes
            ):
                continue
            for keyword in node.keywords:
                if keyword.arg is not None and _is_seedish(keyword.arg):
                    label = target if target is not None else "a call"
                    self._check_sink(
                        scope,
                        env,
                        node,
                        keyword.value,
                        sink=f"{label}({keyword.arg}=...)",
                        direct=False,
                    )

    def _check_sink(
        self,
        scope: _Scope,
        env: Dict[str, Provenance],
        call: ast.Call,
        value: ast.expr,
        sink: str,
        direct: bool,
    ) -> None:
        prov = self._classify(value, scope, env)
        if prov.state == TAINTED:
            self._record(
                scope,
                call,
                kind="tainted",
                sink=sink,
                detail=prov.detail,
                hops=prov.hops,
            )
        elif prov.state == OPAQUE and direct:
            self._record(
                scope,
                call,
                kind="opaque",
                sink=sink,
                detail=prov.detail,
                hops=prov.hops,
            )
        elif prov.state == PARAM and prov.param is not None:
            info = scope.info
            if info is not None:
                key = (info.qualname, prov.param)
                if key not in self._seen_obligations:
                    self._seen_obligations.add(key)
                    hop = self._hop(
                        scope.module,
                        call,
                        f"parameter '{prov.param}' of "
                        f"{_short(info.qualname)}() reaches {sink}",
                    )
                    self._obligations.append(
                        _Obligation(
                            qualname=info.qualname,
                            param=prov.param,
                            sink=sink,
                            sink_hops=prov.hops + (hop,),
                        )
                    )

    def _record(
        self,
        scope: _Scope,
        node: ast.AST,
        kind: str,
        sink: str,
        detail: str,
        hops: Tuple[Hop, ...],
    ) -> None:
        info = self.project.modules.get(scope.module)
        path = info.path if info is not None else "<unknown>"
        self.issues.append(
            SeedIssue(
                kind=kind,
                module=scope.module,
                path=path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                sink=sink,
                detail=detail,
                hops=hops,
            )
        )

    def _hop(self, module: str, node: ast.AST, note: str) -> Hop:
        info = self.project.modules.get(module)
        path = info.path if info is not None else "<unknown>"
        return (path, getattr(node, "lineno", 1), note)

    # -- obligations: the interprocedural stitch -------------------------

    def _discharge_obligations(self) -> None:
        while self._obligations:
            obligation = self._obligations.pop(0)
            if obligation.depth >= _MAX_OBLIGATION_DEPTH:
                continue
            info = self.project.functions.get(obligation.qualname)
            if info is None:
                continue
            for site in self.project.callers_of.get(
                obligation.qualname, []
            ):
                mapping = info.param_for_call(site.node)
                arg = mapping.get(obligation.param)
                if arg is None:
                    continue  # default applies: a literal, trusted
                caller_env = self._env_for_caller(site.caller, site.module)
                caller_scope = _Scope(
                    qualname=site.caller,
                    module=site.module,
                    body=[],
                    params=self._params_of(site.caller),
                    class_name=self._class_of(site.caller),
                    info=self.project.functions.get(site.caller),
                )
                prov = self._classify(arg, caller_scope, caller_env)
                call_hop = self._hop(
                    site.module,
                    site.node,
                    f"passed as '{obligation.param}' to "
                    f"{_short(obligation.qualname)}()",
                )
                if prov.state == TAINTED:
                    full = (
                        prov.hops + (call_hop,) + obligation.sink_hops
                    )[:_MAX_HOPS]
                    module_info = self.project.modules.get(site.module)
                    self.issues.append(
                        SeedIssue(
                            kind="tainted",
                            module=site.module,
                            path=(
                                module_info.path
                                if module_info is not None
                                else "<unknown>"
                            ),
                            line=site.node.lineno,
                            col=site.node.col_offset,
                            sink=obligation.sink,
                            detail=prov.detail,
                            hops=full,
                        )
                    )
                elif prov.state == PARAM and prov.param is not None:
                    caller_info = self.project.functions.get(site.caller)
                    if caller_info is None:
                        continue
                    key = (caller_info.qualname, prov.param)
                    if key in self._seen_obligations:
                        continue
                    self._seen_obligations.add(key)
                    self._obligations.append(
                        _Obligation(
                            qualname=caller_info.qualname,
                            param=prov.param,
                            sink=obligation.sink,
                            sink_hops=(call_hop,) + obligation.sink_hops,
                            depth=obligation.depth + 1,
                        )
                    )
                # OPAQUE at a call boundary is not flagged: provenance
                # is only mandatory at direct construction sites.

    def _env_for_caller(
        self, caller: str, module: str
    ) -> Dict[str, Provenance]:
        """Best-effort environment for evaluating a call-site argument.

        Re-runs the caller's binding pass (cheap, memoization keeps the
        summaries shared) so names at the call site resolve; parameters
        of the caller classify as PARAM and propagate the obligation.
        """
        env = dict(self._module_env(module))
        info = self.project.functions.get(caller)
        if info is not None:
            for param in info.params:
                env[param] = Provenance(
                    PARAM, f"parameter '{param}'", param=param
                )
            scope = _Scope(
                qualname=caller,
                module=info.module,
                body=list(getattr(info.node, "body", [])),
                params=info.params,
                class_name=info.class_name,
                info=info,
            )
            annotations = self._seed_source_annotations(info.module)
            self._bind_only(scope.body, scope, env, annotations)
        return env

    def _bind_only(
        self,
        statements: Sequence[ast.stmt],
        scope: _Scope,
        env: Dict[str, Provenance],
        annotations: Set[int],
    ) -> None:
        """Replay assignments (no sink scanning) to build an env."""
        for stmt in statements:
            if isinstance(
                stmt,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._record_local_import(stmt, scope)
                continue
            if isinstance(stmt, ast.Assign):
                value = self._classify(stmt.value, scope, env)
                if stmt.lineno in annotations:
                    value = Provenance(
                        TRUSTED, "annotated '# repro: seed-source'"
                    )
                for target in stmt.targets:
                    self._bind_target(target, value, env)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = self._classify(stmt.value, scope, env)
                self._bind_target(stmt.target, value, env)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._bind_target(
                    stmt.target,
                    self._loop_prov(stmt.iter, scope, env),
                    env,
                )
                self._bind_only(stmt.body, scope, env, annotations)
            elif isinstance(
                stmt, (ast.If, ast.While, ast.With, ast.AsyncWith, ast.Try)
            ):
                for block in _sub_blocks(stmt):
                    self._bind_only(block, scope, env, annotations)

    def _params_of(self, qualname: str) -> Tuple[str, ...]:
        info = self.project.functions.get(qualname)
        return info.params if info is not None else ()

    def _class_of(self, qualname: str) -> Optional[str]:
        info = self.project.functions.get(qualname)
        return info.class_name if info is not None else None

    # -- expression classification ---------------------------------------

    def _classify(
        self,
        expr: ast.expr,
        scope: _Scope,
        env: Dict[str, Provenance],
        depth: int = 0,
    ) -> Provenance:
        if depth > 24:
            return Provenance(OPAQUE, "expression too deep to trace")
        if isinstance(expr, ast.Constant):
            return _TRUSTED_PROV
        if isinstance(expr, ast.Name):
            bound = env.get(expr.id)
            if bound is not None:
                return bound
            resolved = self.project.resolve(scope.module, expr.id)
            if resolved is not None:
                owner, _, leaf = resolved.rpartition(".")
                if owner in self.project.modules and owner != scope.module:
                    other_env = self._module_env(owner)
                    if leaf in other_env:
                        return other_env[leaf]
            if _is_seedish(expr.id):
                # an unresolvable seed-named binding is a boundary the
                # analysis trusts (argparse targets, star imports)
                return Provenance(
                    TRUSTED, f"seed-named binding '{expr.id}'"
                )
            return Provenance(OPAQUE, f"unresolvable name '{expr.id}'")
        if isinstance(expr, ast.Attribute):
            if _is_seedish(expr.attr):
                return Provenance(
                    TRUSTED, f"config/spec field '.{expr.attr}'"
                )
            return Provenance(OPAQUE, f"attribute read '.{expr.attr}'")
        if isinstance(expr, ast.Subscript):
            key = expr.slice
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and _is_seedish(key.value)
            ):
                return Provenance(
                    TRUSTED, f"config entry [{key.value!r}]"
                )
            return Provenance(OPAQUE, "subscript read")
        if isinstance(expr, ast.Call):
            return self._classify_call(expr, scope, env, depth)
        if isinstance(expr, ast.BinOp):
            return _join(
                [
                    self._classify(expr.left, scope, env, depth + 1),
                    self._classify(expr.right, scope, env, depth + 1),
                ]
            )
        if isinstance(expr, ast.UnaryOp):
            return self._classify(expr.operand, scope, env, depth + 1)
        if isinstance(expr, ast.BoolOp):
            return _join(
                [
                    self._classify(value, scope, env, depth + 1)
                    for value in expr.values
                ]
            )
        if isinstance(expr, ast.IfExp):
            return _join(
                [
                    self._classify(expr.body, scope, env, depth + 1),
                    self._classify(expr.orelse, scope, env, depth + 1),
                ]
            )
        if isinstance(expr, (ast.Tuple, ast.List)):
            return _join(
                [
                    self._classify(element, scope, env, depth + 1)
                    for element in expr.elts
                    if not isinstance(element, ast.Starred)
                ]
            )
        if isinstance(expr, ast.Compare):
            return _TRUSTED_PROV  # booleans carry no seed material
        if isinstance(expr, ast.JoinedStr):
            return _TRUSTED_PROV
        return Provenance(OPAQUE, "untraceable expression")

    def _classify_call(
        self,
        call: ast.Call,
        scope: _Scope,
        env: Dict[str, Provenance],
        depth: int,
    ) -> Provenance:
        target = self._resolve_target(call.func, scope)
        arg_provs = [
            self._classify(arg, scope, env, depth + 1)
            for arg in call.args
            if not isinstance(arg, ast.Starred)
        ] + [
            self._classify(keyword.value, scope, env, depth + 1)
            for keyword in call.keywords
            if keyword.arg is not None
        ]
        if target is None:
            return Provenance(OPAQUE, "call through untraceable expression")
        if target in TAINTED_CALLS:
            return Provenance(
                TAINTED,
                f"{target}() — nondeterministic source",
            ).with_hop(
                self._hop(
                    scope.module,
                    call,
                    f"{target}() — nondeterministic source",
                )
            )
        if target == "random.Random" and not call.args and not call.keywords:
            return Provenance(
                TAINTED, "random.Random() seeded from OS entropy"
            ).with_hop(
                self._hop(
                    scope.module, call, "random.Random() with no seed"
                )
            )
        if target in TRUSTED_CALLS:
            worst = _join(arg_provs)
            if worst.state == TAINTED:
                return worst.with_hop(
                    self._hop(
                        scope.module,
                        call,
                        f"taint survives {_short(target)}() derivation",
                    )
                )
            if worst.state == PARAM:
                return worst
            return Provenance(TRUSTED, f"derived via {_short(target)}()")
        if target in NEUTRAL_CALLS:
            return _TRUSTED_PROV
        if target in PASSTHROUGH_CALLS:
            return _join(arg_provs)
        summary = None
        if target in self.project.classes:
            cls = self.project.classes[target]
            init = cls.methods.get("__init__")
            if init is None:
                return Provenance(OPAQUE, f"instance of {_short(target)}")
            target = init.qualname
        if target in self.project.functions:
            summary = self._summary(target)
            if summary.state == TAINTED:
                return summary.with_hop(
                    self._hop(
                        scope.module,
                        call,
                        f"returned from {_short(target)}()",
                    )
                )
            if summary.state == PARAM and summary.param is not None:
                info = self.project.functions[target]
                mapping = info.param_for_call(call)
                arg = mapping.get(summary.param)
                if arg is None:
                    return Provenance(
                        TRUSTED, f"{_short(target)}() default argument"
                    )
                inner = self._classify(arg, scope, env, depth + 1)
                if inner.state in (TAINTED, PARAM):
                    return inner.with_hop(
                        self._hop(
                            scope.module,
                            call,
                            f"flows through parameter "
                            f"'{summary.param}' of {_short(target)}() "
                            "into its return value",
                        )
                    )
                return inner
            if summary.state == TRUSTED:
                return Provenance(
                    TRUSTED, f"returned from {_short(target)}()"
                )
            return Provenance(
                OPAQUE, f"returned from {_short(target)}()"
            )
        return Provenance(
            OPAQUE, f"call to external function {_short(target)}()"
        )


def _short(qualname: str) -> str:
    """Last two components of a qualified name, for readable messages."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname


def _header_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Header expressions of a compound statement (test, iter, items)."""
    if isinstance(stmt, (ast.If, ast.While)):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.iter
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr


def _sub_blocks(stmt: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if block:
            yield block
    for handler in getattr(stmt, "handlers", []):
        yield handler.body


def analyze_seed_flow(project: ProjectModel) -> List[SeedIssue]:
    """Run (and memoize on the model) the whole-program seed pass."""
    cached = getattr(project, "_seed_flow_issues", None)
    if cached is not None:
        return list(cached)
    issues = SeedFlowAnalysis(project).run()
    setattr(project, "_seed_flow_issues", issues)
    return list(issues)
