"""Long-running LHG overlay service: the steady-state soak harness.

Everything else in this repository measures the paper's claims with
*batch* experiments — build a topology, flood it once, tabulate.  The
claim that actually matters operationally is continuous: an overlay
that repairs itself after every failure burst survives an *unbounded*
number of crashes as long as no single burst exceeds k − 1.  This
package turns the :mod:`repro.overlay` primitives into that service:

* :class:`~repro.service.soak.SoakService` — an eternal experiment: a
  virtual-time tick loop driving an
  :class:`~repro.overlay.membership.LHGOverlay` under sustained
  Zipf-distributed multi-source broadcast traffic and Poisson
  join/crash churn, with an online repair controller that keeps
  Properties 1–4 invariant-checked on a cadence;
* **graceful degradation** — a burst beyond k − 1 (or a repair that
  cannot finish before the next burst) moves the service into an
  explicit ``DEGRADED`` state instead of crashing it: floods route
  over the survivor component, admission control sheds load beyond the
  in-flight budget, and repair retries with bounded exponential
  backoff; recovery is *proven* by re-verifying the invariants;
* :class:`~repro.service.slo.SLOTracker` — p50/p99/p999 flood latency,
  repair convergence and message amplification over
  :class:`~repro.obs.metrics.Histogram` instruments, rendered into a
  deterministic :class:`~repro.service.soak.SoakReport`;
* **checkpoint/resume** — every completed tick is journaled through
  :class:`~repro.exec.checkpoint.CheckpointJournal`; a SIGKILL'd soak
  resumes and produces a report byte-identical to an uninterrupted run
  with the same seed.

Exposed on the command line as ``python -m repro soak``.
"""

from repro.service.alerts import Alert, AlertPolicy, BurnRateMonitor
from repro.service.slo import (
    AMPLIFICATION_BUCKETS,
    CONVERGENCE_BUCKETS,
    LATENCY_BUCKETS,
    SLOTracker,
    percentile,
)
from repro.service.soak import (
    DEGRADED,
    HEALTHY,
    DegradationWindow,
    SoakConfig,
    SoakReport,
    SoakService,
    feed_slo_tracker,
    run_soak,
)
from repro.service.workload import poisson_draw, zipf_pick, zipf_weights

__all__ = [
    "AMPLIFICATION_BUCKETS",
    "Alert",
    "AlertPolicy",
    "BurnRateMonitor",
    "CONVERGENCE_BUCKETS",
    "DEGRADED",
    "DegradationWindow",
    "HEALTHY",
    "LATENCY_BUCKETS",
    "SLOTracker",
    "SoakConfig",
    "SoakReport",
    "SoakService",
    "feed_slo_tracker",
    "percentile",
    "poisson_draw",
    "run_soak",
    "zipf_pick",
    "zipf_weights",
]
