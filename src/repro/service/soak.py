"""The soak service: a long-running LHG overlay under production traffic.

:class:`SoakService` runs an :class:`~repro.overlay.membership.LHGOverlay`
as an *eternal experiment* on a *virtual-time* tick loop.  Each tick

1. expires floods whose delivery window elapsed (freeing in-flight
   capacity),
2. draws Poisson membership churn — joins apply immediately, departures
   accumulate into the tick's **crash burst**,
3. feeds the burst to the online repair controller,
4. advances any pending repair by the per-tick edge budget,
5. re-verifies Properties 1–4 on the cadence (and always after a
   completed repair),
6. admits Poisson flood arrivals from Zipf-distributed sources, sheds
   the ones beyond the in-flight budget, and simulates the admitted
   ones on the current routing topology.

**Graceful degradation** is the design center.  A burst ≤ k − 1 is the
paper's contract: the damaged topology stays connected and the repair
usually completes within the tick, invisibly.  A burst beyond k − 1, a
partition, a repair interrupted by the next burst, or a failed
invariant check moves the service into the explicit :data:`DEGRADED`
state — it does **not** crash.  While degraded, floods route over the
survivor component (the routing topology excludes crashed members
pending repair, so a flood covers exactly its source's component),
admission control halves the in-flight budget, and the repair
controller retries with bounded exponential backoff (the same
``min(cap, base·2^(attempt−1))`` schedule as
:class:`~repro.exec.supervisor.SupervisorConfig`, in ticks).  Once the
retry budget is exhausted the controller performs an *emergency
rebuild* — completing the repair immediately regardless of the edge
budget — so a degradation window is always bounded.  Recovery is
proven, not assumed: the service returns to :data:`HEALTHY` only after
the repaired topology passes
:func:`~repro.robustness.invariants.check_topology_invariants`.

**Determinism and resume.**  All randomness derives from
``derive_seed(seed, "soak-tick", t)`` — a tick's workload is a pure
function of the config and the tick index.  With a checkpoint journal,
every completed tick is appended (fsync'd) as one JSON record keyed by
the config digest and tick index; a resumed run *replays* journaled
ticks through the identical controller logic, substituting the
journaled flood results and invariant verdicts for the expensive
simulation/verification calls, and recomputes the rest.  Replay is
cross-checked: a replayed tick must reproduce its journaled record
exactly, so a config mismatch or a determinism bug fails loudly
instead of silently forking history.  The merged
:class:`SoakReport` is a pure function of the per-tick records and is
therefore byte-identical between an uninterrupted run and a SIGKILL'd
+ resumed one — the crash-injection self-test's contract.

The only wall-clock read in this module is the optional ``max_wall``
safety valve, which cleanly truncates a runaway soak; it never feeds a
simulated result (see the DET002 allowlist in :mod:`repro.lint`).
"""

from __future__ import annotations

import json
import math
import random
import time
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple, Union

import repro.obs as obs
from repro.errors import ReproError
from repro.exec.checkpoint import CheckpointJournal, checkpoint_key, open_journal
from repro.exec.seeding import derive_seed
from repro.flooding.experiments import ExperimentSpec, run_experiment
from repro.graphs.graph import Graph
from repro.graphs.traversal import connected_components
from repro.overlay.membership import LHGOverlay
from repro.overlay.repair import execute_repair, plan_repair
from repro.robustness.invariants import check_topology_invariants
from repro.service.alerts import AlertPolicy, BurnRateMonitor
from repro.service.slo import SLOTracker, percentile
from repro.service.workload import poisson_draw, zipf_pick

#: Service states.  The state machine is two-state by design: either
#: the k − 1 contract holds (``healthy``) or it is suspended and the
#: service is running the recovery playbook (``degraded``).
HEALTHY = "healthy"
DEGRADED = "degraded"


@dataclass(frozen=True)
class SoakConfig:
    """Tunable parameters of one soak run.

    Attributes
    ----------
    population:
        Target (and bootstrap) membership; churn is softly pulled back
        toward it.  Must be ≥ 2k so the overlay starts in the LHG
        regime.
    k:
        Overlay connectivity level (fault tolerance k − 1).
    duration:
        Soak length in virtual ticks.
    churn_rate / flood_rate:
        Poisson means: membership events / new floods per tick.
    zipf_exponent:
        Source-popularity skew for the broadcast workload (0 = uniform).
    flood_budget:
        In-flight flood cap before admission control sheds arrivals;
        halved while degraded (backpressure).
    verify_every:
        Invariant-check cadence in ticks (Properties 1–4).
    repair_edge_budget:
        Edge operations (teardown + establish) a repair can perform per
        tick; a plan bigger than this spans ticks.
    repair_retries:
        Restarts a repair episode tolerates (bursts landing mid-repair)
        before the emergency rebuild completes it unconditionally.
    backoff_base / backoff_cap:
        Restart backoff in ticks: restart ``a`` waits
        ``min(cap, base · 2^(a−1))`` before the repair resumes.
    join_bias:
        Base probability a churn event is a join (pulled by population).
    bursts:
        Forced crash bursts as ``(tick, size)`` pairs — the chaos dial
        used by tests and the F16 benchmark to provoke degradation
        deterministically.
    seed:
        Base seed every tick's randomness derives from.
    rule:
        Construction rule forwarded to the overlay.
    max_wall:
        Optional wall-clock budget in seconds; the loop stops cleanly
        (report marked ``truncated``) when exceeded.  The only
        non-virtual time in the service.
    """

    population: int = 24
    k: int = 3
    duration: int = 120
    churn_rate: float = 0.4
    flood_rate: float = 2.0
    zipf_exponent: float = 1.1
    flood_budget: int = 48
    verify_every: int = 20
    repair_edge_budget: int = 24
    repair_retries: int = 3
    backoff_base: int = 1
    backoff_cap: int = 8
    join_bias: float = 0.5
    bursts: Tuple[Tuple[int, int], ...] = ()
    seed: int = 0
    rule: str = "auto"
    max_wall: Optional[float] = None

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ReproError(f"soak needs k >= 2, got {self.k}")
        if self.population < 2 * self.k:
            raise ReproError(
                f"population {self.population} below the LHG minimum "
                f"{2 * self.k} for k={self.k}"
            )
        if self.duration < 1:
            raise ReproError(f"duration must be >= 1 tick, got {self.duration}")
        for name in ("flood_budget", "repair_edge_budget", "verify_every"):
            if getattr(self, name) < 1:
                raise ReproError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.repair_retries < 0:
            raise ReproError(
                f"repair_retries must be >= 0, got {self.repair_retries}"
            )
        if self.backoff_base < 1 or self.backoff_cap < self.backoff_base:
            raise ReproError(
                f"backoff must satisfy 1 <= base <= cap, got "
                f"base={self.backoff_base} cap={self.backoff_cap}"
            )
        object.__setattr__(
            self,
            "bursts",
            tuple(sorted((int(t), int(s)) for t, s in self.bursts)),
        )
        for tick, size in self.bursts:
            if tick < 0 or size < 1:
                raise ReproError(f"invalid forced burst (tick={tick}, size={size})")
        if self.max_wall is not None and self.max_wall <= 0:
            raise ReproError(f"max_wall must be positive, got {self.max_wall}")

    def digest(self) -> str:
        """Stable identity hash of every *science-relevant* field.

        ``max_wall`` is excluded — truncating a run early changes how
        far it got, never what any completed tick computed — so a
        journal written under a wall budget resumes cleanly without one.
        """
        parts: List[Any] = ["soak-config"]
        for spec in fields(self):
            if spec.name == "max_wall":
                continue
            parts.extend((spec.name, getattr(self, spec.name)))
        return checkpoint_key(*parts)


@dataclass(frozen=True)
class DegradationWindow:
    """One closed (or still-open) degradation episode."""

    start: int
    end: Optional[int]
    cause: str

    @property
    def ticks(self) -> Optional[int]:
        """Window length in ticks; ``None`` while still open."""
        return None if self.end is None else self.end - self.start + 1

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering."""
        return {
            "start": self.start,
            "end": self.end,
            "cause": self.cause,
            "ticks": self.ticks,
        }


def feed_slo_tracker(tracker: SLOTracker, record: Dict[str, Any]) -> None:
    """Feed one completed tick record into an :class:`SLOTracker`.

    The single aggregation path: :meth:`SoakReport.build` folds every
    record through it at report time, and the live metrics exporter
    folds each tick as it completes — so streamed snapshots converge on
    exactly the final report's numbers.
    """
    tracker.churn(len(record["joins"]), len(record["crashes"]))
    for flood in record["floods"]:
        if flood["shed"]:
            tracker.flood_shed()
        else:
            tracker.flood_completed(
                flood["latency"],
                flood["messages"],
                flood["covered"],
                flood["reachable"],
            )
    repair = record.get("repair")
    if repair is not None and repair.get("completed"):
        tracker.repair_completed(repair["edge_work"], repair["emergency"])
        for _ in range(repair["restarts"]):
            tracker.repair_restart()
    for verify in record["verify"]:
        tracker.verify(verify["ok"])
    for transition in record["transitions"]:
        if transition["to"] == HEALTHY:
            tracker.repair_converged(transition["convergence"])


class SoakReport:
    """The merged outcome of a soak run — a pure function of its records.

    ``payload`` is one JSON-safe dict; :meth:`to_json` renders it with
    sorted keys, which is the byte-identical artifact the
    checkpoint-resume self-test diffs.
    """

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.payload = payload

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        config: SoakConfig,
        records: List[Dict[str, Any]],
        windows: List[DegradationWindow],
        final_state: str,
        truncated: bool,
        alert_policy: Optional[AlertPolicy] = None,
    ) -> "SoakReport":
        """Aggregate per-tick records into the SLO report."""
        tracker = SLOTracker()
        monitor = BurnRateMonitor(config.k, alert_policy)
        joins = crashes = 0
        repairs = emergencies = restarts = edge_work = 0
        for record in records:
            feed_slo_tracker(tracker, record)
            monitor.observe(record)
            joins += len(record["joins"])
            crashes += len(record["crashes"])
            repair = record.get("repair")
            if repair is not None and repair.get("completed"):
                repairs += 1
                edge_work += repair["edge_work"]
                restarts += repair["restarts"]
                if repair["emergency"]:
                    emergencies += 1

        latency = tracker.latency_percentiles()
        latency_hist = tracker.registry.histograms.get("soak.flood.latency")
        amp_hist = tracker.registry.histograms.get("soak.flood.amplification")
        conv_hist = tracker.registry.histograms.get("soak.repair.convergence")
        completed = int(tracker.counter("soak.floods.completed"))
        shed = int(tracker.counter("soak.floods.shed"))
        window_dicts = [w.as_dict() for w in windows]
        degraded_ticks = sum(w.ticks for w in windows if w.ticks is not None)

        def _hist_summary(hist: Any) -> Dict[str, Any]:
            if hist is None or hist.count == 0:
                return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
            snap = hist.snapshot()
            return {
                "count": snap["count"],
                "mean": snap["sum"] / snap["count"],
                "p50": percentile(snap, 0.50),
                "p99": percentile(snap, 0.99),
                "max": snap["max"],
            }

        payload: Dict[str, Any] = {
            "experiment": "soak",
            "config": {
                spec.name: (
                    [list(pair) for pair in config.bursts]
                    if spec.name == "bursts"
                    else getattr(config, spec.name)
                )
                for spec in fields(config)
                if spec.name != "max_wall"
            },
            "ticks": len(records),
            "truncated": truncated,
            "final_state": final_state,
            "floods": {
                "completed": completed,
                "shed": shed,
                "partial": int(tracker.counter("soak.floods.partial")),
                "shed_fraction": (
                    shed / (completed + shed) if (completed + shed) else 0.0
                ),
            },
            "latency": {**latency, **_hist_summary(latency_hist)},
            "amplification": _hist_summary(amp_hist),
            "repair": {
                "episodes": repairs,
                "emergency": emergencies,
                "restarts": restarts,
                "edge_work_total": edge_work,
                "convergence": _hist_summary(conv_hist),
            },
            "degradation": {
                "windows": window_dicts,
                "count": len(window_dicts),
                "degraded_ticks": degraded_ticks,
                "open": any(w.end is None for w in windows),
            },
            "alerts": monitor.payload(),
            "verify": {
                "runs": int(tracker.counter("soak.verify.runs")),
                "failures": int(tracker.counter("soak.verify.failures")),
            },
            "churn": {"joins": joins, "crashes": crashes},
            "population": {
                "initial": config.population,
                "final": records[-1]["population"] if records else config.population,
            },
            "metrics": tracker.snapshot(),
        }
        return cls(payload)

    # -- accessors ------------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def to_json(self) -> str:
        """Deterministic JSON rendering (the diffable artifact)."""
        return json.dumps(self.payload, sort_keys=True, indent=2)

    def violations(self, p99_hops: Optional[float] = None) -> List[str]:
        """SLO violations: why this run should exit non-zero (if any).

        A run violates its SLO when it ends degraded (an open
        degradation window) or, when a ``p99_hops`` target is given,
        when the p99 flood latency exceeds it.
        """
        problems = []
        if self.payload["final_state"] != HEALTHY:
            problems.append(
                f"service ended {self.payload['final_state']} "
                "(open degradation window)"
            )
        if self.payload["verify"]["failures"]:
            problems.append(
                f"{self.payload['verify']['failures']} invariant "
                "check(s) failed during the run"
            )
        if p99_hops is not None:
            p99 = self.payload["latency"]["p99"]
            if p99 > p99_hops:
                problems.append(
                    f"p99 flood latency {p99} exceeds the SLO of {p99_hops} hops"
                )
        return problems

    def summary(self) -> str:
        """Human-readable digest of the run."""
        p = self.payload
        lat, rep, deg = p["latency"], p["repair"], p["degradation"]
        lines = [
            f"soak: {p['ticks']} tick(s), population "
            f"{p['population']['initial']} -> {p['population']['final']}, "
            f"k={p['config']['k']}, final state {p['final_state']}"
            + (" (TRUNCATED by wall budget)" if p["truncated"] else ""),
            f"  floods   : {p['floods']['completed']} completed, "
            f"{p['floods']['shed']} shed "
            f"({p['floods']['shed_fraction']:.1%}), "
            f"{p['floods']['partial']} partial-coverage",
            f"  latency  : p50={lat['p50']:g} p99={lat['p99']:g} "
            f"p999={lat['p999']:g} max={lat['max']:g} hops",
            f"  amplify  : mean={p['amplification']['mean']:.2f} "
            f"p99={p['amplification']['p99']:g} msgs/covered",
            f"  churn    : {p['churn']['joins']} join(s), "
            f"{p['churn']['crashes']} crash(es)",
            f"  repair   : {rep['episodes']} episode(s), "
            f"{rep['restarts']} restart(s), {rep['emergency']} emergency, "
            f"{rep['edge_work_total']} edges touched",
            f"  degraded : {deg['count']} window(s), "
            f"{deg['degraded_ticks']} tick(s) total"
            + (
                "; convergence p50="
                f"{rep['convergence']['p50']:g} max={rep['convergence']['max']:g}"
                if rep["convergence"]["count"]
                else ""
            ),
            f"  verify   : {p['verify']['runs']} run(s), "
            f"{p['verify']['failures']} failure(s)",
        ]
        alerts = p.get("alerts")
        if alerts is not None:
            spans = ", ".join(
                f"[{a['opened']}..{a['closed'] if a['closed'] is not None else 'open'}]"
                for a in alerts["events"]
            )
            lines.append(
                f"  alerts   : {alerts['count']} burn-rate alert(s)"
                + (f" {spans}" if spans else "")
                + (" — STILL OPEN" if alerts["open"] else "")
            )
        return "\n".join(lines)


class SoakService:
    """The soak harness (see module docstring).

    Parameters
    ----------
    config:
        The :class:`SoakConfig` for this run.
    checkpoint:
        Optional journal path (or :class:`CheckpointJournal`); completed
        ticks are appended durably.
    resume:
        Load the journal and replay its ticks instead of recomputing
        them.  Requires ``checkpoint``.
    metrics:
        Optional :class:`~repro.obs.export.MetricsStream` (or anything
        with the same ``export(snapshot, **stamp)`` shape); live SLO
        snapshots are pushed every ``metrics_every`` ticks.  Runtime
        plumbing, not science: deliberately *not* part of
        :class:`SoakConfig`, so the journal digest — and therefore
        resumability — is unaffected.
    metrics_every:
        Export cadence in ticks (default 10).
    alert_policy:
        Burn-rate :class:`~repro.service.alerts.AlertPolicy`; the
        default policy is used when ``None``.
    """

    def __init__(
        self,
        config: SoakConfig,
        checkpoint: Optional[Union[str, CheckpointJournal]] = None,
        resume: bool = False,
        metrics: Optional[Any] = None,
        metrics_every: int = 10,
        alert_policy: Optional[AlertPolicy] = None,
    ) -> None:
        if metrics_every < 1:
            raise ReproError(
                f"metrics_every must be >= 1 tick, got {metrics_every}"
            )
        self.config = config
        self._digest = config.digest()
        self._journal = open_journal(checkpoint, resume)
        self._guard_journal_config(resume)
        self._metrics = metrics
        self._metrics_every = metrics_every
        self._alert_policy = alert_policy
        self._monitor = BurnRateMonitor(config.k, alert_policy)
        self._live_tracker = (
            SLOTracker(mirror=False) if metrics is not None else None
        )

        self._overlay = LHGOverlay(k=config.k, rule=config.rule)
        self._next_member = 0
        self._state = HEALTHY
        self._degraded_since: Optional[int] = None
        self._degraded_cause: Optional[str] = None
        self._windows: List[DegradationWindow] = []
        self._pending: Tuple[str, ...] = ()
        self._repair_work: Optional[int] = None
        self._repair_progress = 0
        self._repair_restarts = 0
        self._repair_backoff_until = 0
        self._rebuild_only = False
        self._inflight: Dict[int, int] = {}
        self._inflight_count = 0
        self._records: List[Dict[str, Any]] = []
        # replay cursors for the tick currently being processed
        self._cached: Optional[Dict[str, Any]] = None
        self._verify_cursor = 0

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------

    def _guard_journal_config(self, resume: bool) -> None:
        """Refuse to resume a journal written under a different config."""
        if self._journal is None:
            return
        meta_key = checkpoint_key("soak-meta")
        if resume:
            recorded = self._journal.get(meta_key)
            if recorded is not None and recorded.get("digest") != self._digest:
                raise ReproError(
                    f"checkpoint journal {self._journal.path} was written "
                    "by a soak with a different configuration; refusing to "
                    "mix histories (remove the journal to start over)"
                )
            if recorded is None:
                self._journal.record(
                    meta_key, {"digest": self._digest}, label="soak-meta"
                )
        else:
            self._journal.record(
                meta_key, {"digest": self._digest}, label="soak-meta"
            )

    def _tick_key(self, tick: int) -> str:
        return checkpoint_key("soak-tick", self._digest, tick)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self) -> SoakReport:
        """Execute (or resume) the soak; return the merged SLO report."""
        config = self.config
        # max_wall is the one wall-clock read in the service: a safety
        # valve that truncates the loop, never a simulated quantity.
        wall_start = time.monotonic() if config.max_wall is not None else None
        truncated = False
        with obs.span(
            "soak",
            population=config.population,
            k=config.k,
            duration=config.duration,
        ):
            self._bootstrap()
            for tick in range(config.duration):
                cached = (
                    self._journal.get(self._tick_key(tick))
                    if self._journal is not None
                    else None
                )
                record = self._tick(tick, cached)
                if self._journal is not None and cached is None:
                    self._journal.record(
                        self._tick_key(tick), record, label=f"tick-{tick:06d}"
                    )
                self._records.append(record)
                self._observe_tick(tick, record)
                if (
                    wall_start is not None
                    and config.max_wall is not None
                    and time.monotonic() - wall_start > config.max_wall
                    and tick + 1 < config.duration
                ):
                    truncated = True
                    obs.event("soak-truncated", tick=tick)
                    break
        if self._journal is not None:
            self._journal.close()
        windows = list(self._windows)
        if self._state == DEGRADED and self._degraded_since is not None:
            windows.append(
                DegradationWindow(
                    start=self._degraded_since,
                    end=None,
                    cause=self._degraded_cause or "unknown",
                )
            )
        return SoakReport.build(
            self.config,
            self._records,
            windows,
            self._state,
            truncated,
            alert_policy=self._alert_policy,
        )

    def _observe_tick(self, tick: int, record: Dict[str, Any]) -> None:
        """Run the live observability hooks for one completed tick.

        Pure output: feeds the burn-rate monitor (emitting obs events
        on alert transitions) and, when a metrics exporter is attached,
        folds the record into the live tracker and pushes a stamped
        snapshot on the cadence.  Nothing here feeds back into the tick
        loop, so records — and therefore reports — are byte-identical
        with or without exporters.
        """
        transition = self._monitor.observe(record)
        if transition == "open":
            alert = self._monitor.alerts[-1]
            obs.event(
                "alert-open",
                tick=tick,
                causes=list(alert.causes),
                fast_burn=round(self._monitor.fast_burn, 6),
                slow_burn=round(self._monitor.slow_burn, 6),
            )
        elif transition == "close":
            alert = self._monitor.alerts[-1]
            obs.event(
                "alert-close",
                tick=tick,
                opened=alert.opened,
                ticks=tick - alert.opened + 1,
            )
        if self._metrics is None or self._live_tracker is None:
            return
        feed_slo_tracker(self._live_tracker, record)
        last = tick + 1 == self.config.duration
        if (tick + 1) % self._metrics_every == 0 or last:
            snapshot = self._live_tracker.snapshot()
            gauges = snapshot.setdefault("gauges", {})
            gauges.update(self._monitor.snapshot_gauges())
            gauges["soak.population"] = float(record["population"])
            gauges["soak.in_flight"] = float(record["in_flight"])
            gauges["soak.state"] = 1.0 if record["state"] == HEALTHY else 0.0
            self._metrics.export(snapshot, tick=tick, state=record["state"])

    def _bootstrap(self) -> None:
        """Join the initial population (deterministic, not journaled)."""
        with obs.span("soak-bootstrap", population=self.config.population):
            for _ in range(self.config.population):
                self._overlay.join(self._new_member())

    def _new_member(self) -> str:
        name = f"peer-{self._next_member}"
        self._next_member += 1
        return name

    # ------------------------------------------------------------------
    # Tick processing
    # ------------------------------------------------------------------

    def _live_members(self) -> List[str]:
        """Members not awaiting crash repair, in join order."""
        if not self._pending:
            return list(self._overlay.members)
        pending = set(self._pending)
        return [m for m in self._overlay.members if m not in pending]

    def _routing_topology(self) -> Graph:
        """What floods route over: the overlay minus pending crashes."""
        topology = self._overlay.topology()
        if self._pending:
            return topology.without_nodes(set(self._pending))
        return topology

    def _tick(
        self, tick: int, cached: Optional[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Process one tick; with ``cached`` set, replay it instead."""
        self._cached = cached
        self._verify_cursor = 0
        rng = random.Random(derive_seed(self.config.seed, "soak-tick", tick))
        record: Dict[str, Any] = {
            "tick": tick,
            "joins": [],
            "crashes": [],
            "floods": [],
            "verify": [],
            "transitions": [],
            "repair": None,
        }

        self._inflight_count -= self._inflight.pop(tick, 0)
        burst = self._draw_churn(tick, rng, record)
        if burst:
            self._absorb_burst(tick, burst, record)
        self._advance_repair(tick, record)
        if (
            (tick + 1) % self.config.verify_every == 0
            and not self._pending
            and not self._rebuild_only
        ):
            self._run_verify(tick, record, reason="cadence")
        self._run_floods(tick, rng, record)

        record["state"] = self._state
        record["population"] = self._overlay.size
        record["live"] = self._overlay.size - len(self._pending)
        record["in_flight"] = self._inflight_count
        record["pending_repair"] = len(self._pending)

        if cached is not None and record != cached:
            raise ReproError(
                f"soak resume diverged at tick {tick}: the replayed tick "
                "does not reproduce its journaled record (config/seed "
                "mismatch or determinism bug)"
            )
        self._cached = None
        return record

    # -- churn ----------------------------------------------------------

    def _draw_churn(
        self, tick: int, rng: random.Random, record: Dict[str, Any]
    ) -> List[str]:
        """Draw the tick's joins (applied) and crash burst (returned)."""
        config = self.config
        burst: List[str] = []
        events = poisson_draw(rng, config.churn_rate)
        for _ in range(events):
            live = [m for m in self._live_members() if m not in burst]
            pull = (config.population - len(live)) / max(1, config.population)
            p_join = min(0.95, max(0.05, config.join_bias + 0.5 * pull))
            if len(live) <= 2 * config.k or rng.random() < p_join:
                name = self._new_member()
                self._overlay.join(name)
                record["joins"].append(name)
            else:
                burst.append(live[rng.randrange(len(live))])
        for burst_tick, size in config.bursts:
            if burst_tick != tick:
                continue
            live = [m for m in self._live_members() if m not in burst]
            size = min(size, len(live) - 1)
            for _ in range(max(0, size)):
                burst.append(live.pop(rng.randrange(len(live))))
        record["crashes"] = list(burst)
        return burst

    # -- degradation state machine --------------------------------------

    def _enter_degraded(
        self, tick: int, cause: str, record: Dict[str, Any]
    ) -> None:
        if self._state == DEGRADED:
            return
        self._state = DEGRADED
        self._degraded_since = tick
        self._degraded_cause = cause
        record["transitions"].append({"to": DEGRADED, "cause": cause})
        obs.event("soak-degraded", cause=cause, tick=tick)

    def _exit_degraded(self, tick: int, record: Dict[str, Any]) -> None:
        if self._state != DEGRADED or self._degraded_since is None:
            return
        window = DegradationWindow(
            start=self._degraded_since,
            end=tick,
            cause=self._degraded_cause or "unknown",
        )
        self._windows.append(window)
        record["transitions"].append(
            {"to": HEALTHY, "convergence": window.ticks}
        )
        obs.event("soak-recovered", tick=tick, convergence=window.ticks)
        self._state = HEALTHY
        self._degraded_since = None
        self._degraded_cause = None

    # -- repair controller ----------------------------------------------

    def _absorb_burst(
        self, tick: int, burst: List[str], record: Dict[str, Any]
    ) -> None:
        """Feed one crash burst to the repair controller."""
        config = self.config
        if self._pending or self._rebuild_only:
            # Burst landed mid-repair: the repair restarts (bounded).
            self._repair_restarts += 1
            self._pending = tuple(sorted(set(self._pending) | set(burst)))
            self._repair_work = None
            self._repair_progress = 0
            self._enter_degraded(tick, "repair-backlog", record)
            if self._repair_restarts > config.repair_retries:
                self._complete_repair(tick, record, emergency=True)
            else:
                delay = min(
                    config.backoff_cap,
                    config.backoff_base * 2 ** (self._repair_restarts - 1),
                )
                self._repair_backoff_until = tick + delay
                obs.event(
                    "soak-repair-restart",
                    tick=tick,
                    restarts=self._repair_restarts,
                    backoff=delay,
                )
            return
        self._pending = tuple(sorted(set(burst)))
        self._repair_work = None
        self._repair_progress = 0
        self._repair_restarts = 0
        self._repair_backoff_until = tick
        if len(self._pending) > config.k - 1:
            self._enter_degraded(tick, "burst", record)
        elif len(connected_components(self._routing_topology())) > 1:
            self._enter_degraded(tick, "partition", record)

    def _advance_repair(self, tick: int, record: Dict[str, Any]) -> None:
        """Spend the tick's edge budget on any pending repair."""
        if not self._pending and not self._rebuild_only:
            return
        if record["repair"] is not None:
            return  # an emergency rebuild already completed this tick
        if tick < self._repair_backoff_until:
            return
        if self._repair_work is None:
            self._repair_work = (
                plan_repair(self._overlay, self._pending).total_edge_work
                if self._pending
                else 0
            )
        self._repair_progress += self.config.repair_edge_budget
        if self._repair_progress >= self._repair_work:
            self._complete_repair(tick, record, emergency=False)

    def _complete_repair(
        self, tick: int, record: Dict[str, Any], emergency: bool
    ) -> None:
        """Execute the pending repair and prove recovery by re-verifying."""
        report = execute_repair(self._overlay, self._pending)
        record["repair"] = {
            "completed": True,
            "burst": report.burst_size,
            "edge_work": report.plan.total_edge_work,
            "emergency": emergency,
            "restarts": self._repair_restarts,
            "connectivity_after": report.connectivity_after,
            "components": list(report.components_before),
            "degraded_burst": report.degraded,
        }
        obs.event(
            "soak-repair-complete",
            tick=tick,
            burst=report.burst_size,
            edge_work=report.plan.total_edge_work,
            emergency=emergency,
        )
        self._pending = ()
        self._repair_work = None
        self._repair_progress = 0
        self._repair_restarts = 0
        self._rebuild_only = False
        ok = self._run_verify(tick, record, reason="post-repair")
        if ok:
            self._exit_degraded(tick, record)

    # -- invariant checks -----------------------------------------------

    def _run_verify(
        self, tick: int, record: Dict[str, Any], reason: str
    ) -> bool:
        """One Properties-1–4 battery (journal-cached during replay)."""
        cached_entries = (
            self._cached.get("verify") if self._cached is not None else None
        )
        if cached_entries is not None and self._verify_cursor < len(
            cached_entries
        ):
            entry = dict(cached_entries[self._verify_cursor])
        else:
            topology = self._routing_topology()
            live = topology.number_of_nodes()
            expect_lhg = not self._pending and live >= 2 * self.config.k
            with obs.span("soak-verify", tick=tick, reason=reason):
                violations = check_topology_invariants(
                    topology, self.config.k, expect_lhg=expect_lhg
                )
            entry = {
                "reason": reason,
                "ok": not violations,
                "violations": [str(v) for v in violations],
            }
        self._verify_cursor += 1
        record["verify"].append(entry)
        if not entry["ok"]:
            obs.event("soak-verify-failed", tick=tick, reason=reason)
            self._enter_degraded(tick, "invariant", record)
            self._rebuild_only = True
            self._repair_backoff_until = tick + 1
        return bool(entry["ok"])

    # -- flood workload -------------------------------------------------

    def _run_floods(
        self, tick: int, rng: random.Random, record: Dict[str, Any]
    ) -> None:
        """Admit, shed and simulate the tick's flood arrivals."""
        config = self.config
        arrivals = poisson_draw(rng, config.flood_rate)
        if arrivals == 0:
            return
        live = self._live_members()
        if not live:
            return
        budget = (
            config.flood_budget
            if self._state == HEALTHY
            else max(1, config.flood_budget // 2)
        )
        cached_floods = (
            self._cached.get("floods") if self._cached is not None else None
        )
        topology: Optional[Graph] = None
        for arrival in range(arrivals):
            source = zipf_pick(rng, live, config.zipf_exponent)
            if self._inflight_count >= budget:
                record["floods"].append({"source": source, "shed": True})
                obs.counter("soak.admission.shed")
                continue
            entry: Optional[Dict[str, Any]] = None
            if cached_floods is not None and arrival < len(cached_floods):
                candidate = cached_floods[arrival]
                if not candidate.get("shed"):
                    entry = dict(candidate)
            if entry is None:
                if topology is None:
                    topology = self._routing_topology()
                summary = run_experiment(
                    ExperimentSpec(
                        protocol="flood",
                        graph=topology,
                        source=source,
                        seed=derive_seed(
                            config.seed, "soak-flood", tick, arrival
                        ),
                    )
                )
                result = summary.result
                assert result is not None  # flood always yields a result
                entry = {
                    "source": source,
                    "shed": False,
                    "latency": float(result.completion_time or 0),
                    "messages": result.messages,
                    "covered": result.covered,
                    "reachable": result.reachable,
                }
            expiry = tick + max(1, int(math.ceil(entry["latency"])))
            self._inflight[expiry] = self._inflight.get(expiry, 0) + 1
            self._inflight_count += 1
            record["floods"].append(entry)


def run_soak(
    config: SoakConfig,
    checkpoint: Optional[Union[str, CheckpointJournal]] = None,
    resume: bool = False,
    metrics: Optional[Any] = None,
    metrics_every: int = 10,
    alert_policy: Optional[AlertPolicy] = None,
) -> SoakReport:
    """Run one soak end to end; the convenience wrapper the CLI uses."""
    return SoakService(
        config,
        checkpoint=checkpoint,
        resume=resume,
        metrics=metrics,
        metrics_every=metrics_every,
        alert_policy=alert_policy,
    ).run()
