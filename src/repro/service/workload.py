"""Deterministic workload primitives for the soak service.

The service's traffic model is the "millions of users" shape scaled to
a simulated overlay: broadcast *sources* are Zipf-distributed (a few
members originate most of the traffic, a long tail originates the
rest), and both flood arrivals and membership churn are Poisson
processes.  Every draw here goes through an injected
:class:`random.Random`, so a tick's workload is a pure function of the
service seed and the tick index — the property checkpoint-resume and
the parallel-determinism suites rely on.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, TypeVar

from repro.errors import ReproError

T = TypeVar("T")

#: Safety valve: a single Poisson draw never exceeds this, so a
#: misconfigured rate cannot wedge one tick forever.
MAX_EVENTS_PER_DRAW = 10_000


def poisson_draw(rng: random.Random, rate: float) -> int:
    """One Poisson(``rate``) sample via Knuth's product method.

    Rates ≤ 0 yield 0.  The draw consumes a variable number of uniform
    deviates but in an order fixed by the algorithm, so identical
    ``rng`` states yield identical samples.

    Raises
    ------
    ReproError
        If ``rate`` is not finite.
    """
    if not math.isfinite(rate):
        raise ReproError(f"Poisson rate must be finite, got {rate!r}")
    if rate <= 0:
        return 0
    threshold = math.exp(-rate)
    count = 0
    product = rng.random()
    while product > threshold and count < MAX_EVENTS_PER_DRAW:
        count += 1
        product *= rng.random()
    return count


def zipf_weights(count: int, s: float) -> List[float]:
    """Unnormalized Zipf weights ``1 / rank**s`` for ranks 1..count.

    Raises
    ------
    ReproError
        If ``count`` is negative or ``s`` is negative.
    """
    if count < 0:
        raise ReproError(f"weight count must be >= 0, got {count}")
    if s < 0:
        raise ReproError(f"Zipf exponent must be >= 0, got {s}")
    return [1.0 / (rank**s) for rank in range(1, count + 1)]


def zipf_pick(rng: random.Random, items: Sequence[T], s: float = 1.1) -> T:
    """Pick one item with Zipf(``s``) probability over its *position*.

    The first item is the hottest source; an exponent of 0 degrades to
    a uniform pick.  Items are ranked by their order in ``items`` —
    callers pass an ordered sequence (e.g. members in join order), so
    the draw is independent of any set-iteration order.

    Raises
    ------
    ReproError
        If ``items`` is empty.
    """
    if not items:
        raise ReproError("cannot Zipf-pick from an empty sequence")
    weights = zipf_weights(len(items), s)
    total = sum(weights)
    point = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if point <= cumulative:
            return item
    return items[-1]
