"""SLO accounting for the soak service: histograms and percentiles.

Service-level objectives are distributional — "p99 flood latency stays
under B hops", "repair converges within W ticks" — so the tracker
accumulates every observation into the fixed-bucket
:class:`~repro.obs.metrics.Histogram` instruments from :mod:`repro.obs`
and reads percentiles back out of the bucket counts.  Snapshots are
plain JSON dicts and merging is exact, which is what makes a resumed
soak's SLO report byte-identical to an uninterrupted one: the report
is a pure function of the merged per-tick records.

When a telemetry collector is installed the tracker mirrors every
observation into it (same metric names), so ``--telemetry`` logs carry
the service's SLO series without a second bookkeeping path.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import repro.obs as obs
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry

#: Flood latency buckets, in simulated hops.  LHG diameters are
#: O(log n), so single-digit latencies dominate; the tail buckets give
#: p999 resolution under degradation (partition detours, big graphs).
LATENCY_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 24.0, 32.0, 48.0,
)

#: Message amplification buckets (messages sent per member covered).
#: A k-regular flood costs ~k messages per covered node.
AMPLIFICATION_BUCKETS: Tuple[float, ...] = (
    1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 14.0, 20.0,
)

#: Repair convergence buckets, in ticks from degradation entry to the
#: post-repair invariant re-verification passing.
CONVERGENCE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0,
)


def percentile(snapshot: Dict[str, Any], q: float) -> float:
    """Estimate the ``q``-quantile from a histogram snapshot.

    Returns the upper bound of the first bucket whose cumulative count
    reaches ``q * count`` — a conservative (never-understated) estimate
    with fixed buckets.  Samples in the overflow bucket report the
    recorded maximum.  An empty histogram reports 0.0.

    Raises
    ------
    ReproError
        If ``q`` is outside (0, 1].
    """
    if not 0.0 < q <= 1.0:
        raise ReproError(f"percentile quantile must be in (0, 1], got {q}")
    total = snapshot["count"]
    if total == 0:
        return 0.0
    need = q * total
    cumulative = 0
    for bound, count in zip(snapshot["buckets"], snapshot["counts"]):
        cumulative += count
        if cumulative >= need:
            return float(bound)
    return float(snapshot["max"])


class SLOTracker:
    """Accumulates the soak run's SLO observations (see module doc).

    All state lives in one :class:`~repro.obs.metrics.MetricsRegistry`;
    :meth:`snapshot` is the JSON-safe dump the
    :class:`~repro.service.soak.SoakReport` renders percentiles from.

    ``mirror=False`` keeps observations out of any installed telemetry
    collector — used by the *live* tracker the streaming metrics
    exporter feeds tick by tick, which would otherwise double-count
    every observation the report-time tracker mirrors.
    """

    def __init__(self, mirror: bool = True) -> None:
        self.registry = MetricsRegistry()
        self._mirror = mirror

    # -- observations ---------------------------------------------------

    def _observe(self, name: str, value: float, buckets: Tuple[float, ...]) -> None:
        self.registry.observe(name, value, buckets)
        if self._mirror:
            obs.observe(name, value, buckets)

    def _count(self, name: str, amount: float = 1) -> None:
        self.registry.counter(name, amount)
        if self._mirror:
            obs.counter(name, amount)

    def flood_completed(
        self, latency: float, messages: int, covered: int, reachable: int
    ) -> None:
        """Record one finished flood: latency, amplification, coverage."""
        self._count("soak.floods.completed")
        self._observe("soak.flood.latency", latency, LATENCY_BUCKETS)
        if covered > 0:
            self._observe(
                "soak.flood.amplification",
                messages / covered,
                AMPLIFICATION_BUCKETS,
            )
        if covered < reachable:
            self._count("soak.floods.partial")

    def flood_shed(self) -> None:
        """Record one flood rejected by admission control."""
        self._count("soak.floods.shed")

    def churn(self, joins: int, crashes: int) -> None:
        """Record one tick's membership events."""
        if joins:
            self._count("soak.churn.joins", joins)
        if crashes:
            self._count("soak.churn.crashes", crashes)

    def repair_completed(self, edge_work: int, emergency: bool) -> None:
        """Record one finished repair episode and its edge bill."""
        self._count("soak.repairs.completed")
        self._count("soak.repairs.edge_work", edge_work)
        if emergency:
            self._count("soak.repairs.emergency")

    def repair_restart(self) -> None:
        """Record a repair restart (a burst landed mid-repair)."""
        self._count("soak.repairs.restarts")

    def repair_converged(self, ticks: int) -> None:
        """Record a degradation window's length (entry to re-verify)."""
        self._observe("soak.repair.convergence", float(ticks), CONVERGENCE_BUCKETS)

    def verify(self, ok: bool) -> None:
        """Record one invariant-check battery."""
        self._count("soak.verify.runs")
        if not ok:
            self._count("soak.verify.failures")

    # -- output ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as one JSON-safe dict."""
        return self.registry.snapshot()

    def counter(self, name: str) -> float:
        """Current value of one counter (0 when never incremented)."""
        return self.registry.counters.get(name, 0)

    def latency_percentiles(self) -> Dict[str, float]:
        """The p50/p99/p999 flood-latency summary."""
        histogram = self.registry.histograms.get("soak.flood.latency")
        if histogram is None:
            return {"p50": 0.0, "p99": 0.0, "p999": 0.0}
        snap = histogram.snapshot()
        return {
            "p50": percentile(snap, 0.50),
            "p99": percentile(snap, 0.99),
            "p999": percentile(snap, 0.999),
        }
