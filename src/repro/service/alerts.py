"""SLO burn-rate alerting for the soak service.

The soak service's SLO is tick-shaped: a tick is *good* when the k − 1
contract held (no burst beyond tolerance, no repair backlog past
tolerance, no invariant failure) and every admitted flood completed,
covered its reachable set and met the latency objective.  The error
budget is ``1 − objective`` — with the default 95% objective, 5% of
ticks may be bad before the SLO is violated.

:class:`BurnRateMonitor` implements the standard multi-window
burn-rate policy: the *burn rate* over a window is the bad-tick
fraction divided by the error budget (1.0 = consuming the budget
exactly as fast as it accrues).  An alert opens when **both** the fast
window (sensitive, catches the onset tick) and the slow window
(confirming, suppresses one-tick blips) burn at or above their
thresholds, and closes when both fall back below.  Because a burst
beyond k − 1 makes its own tick bad, the alert's open tick coincides
with the degradation window's start tick; the close lingers at most
``slow_window`` ticks past recovery, so every alert *brackets* its
degradation window — the property ``tests/test_service.py`` pins.

The monitor is a pure function of the per-tick records, fed either
live (tick by tick inside :class:`~repro.service.soak.SoakService`,
where transitions also emit obs events and burn-rate gauges) or in one
pass by :meth:`~repro.service.soak.SoakReport.build` — both produce
identical alert histories, which keeps the resumed-soak report
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.errors import ReproError
from repro.obs.metrics import Histogram
from repro.service.slo import LATENCY_BUCKETS


@dataclass(frozen=True)
class AlertPolicy:
    """The burn-rate alerting policy (see module docstring).

    Attributes
    ----------
    objective:
        Fraction of ticks that must be good; the error budget is
        ``1 − objective``.
    latency_slo:
        Flood-latency objective in hops; a completed flood slower than
        this makes its tick bad.
    fast_window / slow_window:
        Sliding-window lengths in ticks.  The fast window reacts
        within a tick of an incident; the slow window confirms it is
        sustained and controls how long the alert lingers.
    fast_burn / slow_burn:
        Burn-rate thresholds for the two windows.
    """

    objective: float = 0.95
    latency_slo: float = 16.0
    fast_window: int = 4
    slow_window: int = 16
    fast_burn: float = 4.0
    slow_burn: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ReproError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.latency_slo <= 0:
            raise ReproError(
                f"latency_slo must be positive, got {self.latency_slo}"
            )
        if not 1 <= self.fast_window <= self.slow_window:
            raise ReproError(
                "windows must satisfy 1 <= fast <= slow, got "
                f"fast={self.fast_window} slow={self.slow_window}"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ReproError("burn thresholds must be positive")

    @property
    def budget(self) -> float:
        """The error budget: tolerable bad-tick fraction."""
        return 1.0 - self.objective

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (lands in the soak report)."""
        return {
            "objective": self.objective,
            "latency_slo": self.latency_slo,
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
        }


@dataclass
class Alert:
    """One burn-rate alert episode (open, or closed with an end tick)."""

    opened: int
    causes: Tuple[str, ...]
    closed: Optional[int] = None
    peak_fast: float = 0.0
    peak_slow: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering."""
        return {
            "opened": self.opened,
            "closed": self.closed,
            "causes": list(self.causes),
            "peak_fast_burn": round(self.peak_fast, 6),
            "peak_slow_burn": round(self.peak_slow, 6),
        }


class BurnRateMonitor:
    """Sliding-window error-budget accounting over soak tick records.

    Feed every completed tick record to :meth:`observe`; it returns
    ``"open"`` / ``"close"`` on the tick an alert transitions (else
    ``None``).  ``alerts`` accumulates the full episode history.
    """

    def __init__(self, k: int, policy: Optional[AlertPolicy] = None) -> None:
        self.k = k
        self.policy = policy if policy is not None else AlertPolicy()
        self.alerts: List[Alert] = []
        self._open: Optional[Alert] = None
        self._window: Deque[Tuple[int, Tuple[str, ...]]] = deque(
            maxlen=self.policy.slow_window
        )
        # rolling latency distribution: Histogram.quantile() gives the
        # monitor a live p99 without keeping raw samples
        self._latency = Histogram(LATENCY_BUCKETS)

    # -- per-tick SLI ---------------------------------------------------

    def tick_errors(self, record: Dict[str, Any]) -> Tuple[str, ...]:
        """Why this tick was bad (empty tuple = the tick met the SLO)."""
        causes: List[str] = []
        if len(record.get("crashes", ())) > self.k - 1:
            causes.append("burst-beyond-tolerance")
        if record.get("pending_repair", 0) > self.k - 1:
            causes.append("repair-backlog")
        if any(not v["ok"] for v in record.get("verify", ())):
            causes.append("verify-failed")
        shed = slow = partial = False
        for flood in record.get("floods", ()):
            if flood.get("shed"):
                shed = True
                continue
            if flood["covered"] < flood["reachable"]:
                partial = True
            if flood["latency"] > self.policy.latency_slo:
                slow = True
        if shed:
            causes.append("admission-shed")
        if partial:
            causes.append("partial-coverage")
        if slow:
            causes.append("slow-flood")
        return tuple(causes)

    # -- burn rates -----------------------------------------------------

    def _burn(self, window: int) -> float:
        """Burn rate over the last ``window`` observed ticks."""
        if not self._window:
            return 0.0
        entries = list(self._window)[-window:]
        bad = sum(1 for _, causes in entries if causes)
        return (bad / len(entries)) / self.policy.budget

    @property
    def fast_burn(self) -> float:
        """Current fast-window burn rate."""
        return self._burn(self.policy.fast_window)

    @property
    def slow_burn(self) -> float:
        """Current slow-window burn rate."""
        return self._burn(self.policy.slow_window)

    @property
    def active(self) -> bool:
        """True while an alert is open."""
        return self._open is not None

    def latency_p99(self) -> float:
        """Rolling p99 flood latency (hops) over everything observed."""
        return self._latency.quantile(0.99)

    # -- the state machine ----------------------------------------------

    def observe(self, record: Dict[str, Any]) -> Optional[str]:
        """Account one tick; return ``"open"``/``"close"`` on transition."""
        causes = self.tick_errors(record)
        self._window.append((record["tick"], causes))
        for flood in record.get("floods", ()):
            if not flood.get("shed"):
                self._latency.observe(flood["latency"])
        fast, slow = self.fast_burn, self.slow_burn
        policy = self.policy
        if self._open is not None:
            self._open.peak_fast = max(self._open.peak_fast, fast)
            self._open.peak_slow = max(self._open.peak_slow, slow)
        firing = fast >= policy.fast_burn and slow >= policy.slow_burn
        if self._open is None and firing:
            window_causes: List[str] = []
            for _, tick_causes in self._window:
                for cause in tick_causes:
                    if cause not in window_causes:
                        window_causes.append(cause)
            self._open = Alert(
                opened=record["tick"],
                causes=tuple(window_causes),
                peak_fast=fast,
                peak_slow=slow,
            )
            self.alerts.append(self._open)
            return "open"
        if self._open is not None and not firing:
            self._open.closed = record["tick"]
            self._open = None
            return "close"
        return None

    # -- reporting ------------------------------------------------------

    def snapshot_gauges(self) -> Dict[str, float]:
        """The live gauges a metrics exporter publishes each cadence."""
        return {
            "soak.burn.fast": round(self.fast_burn, 6),
            "soak.burn.slow": round(self.slow_burn, 6),
            "soak.alerts.active": 1.0 if self.active else 0.0,
            "soak.alerts.total": float(len(self.alerts)),
            "soak.latency.p99": self.latency_p99(),
        }

    def payload(self) -> Dict[str, Any]:
        """JSON-safe alert history (lands in the soak report)."""
        return {
            "policy": self.policy.as_dict(),
            "count": len(self.alerts),
            "open": self.active,
            "events": [alert.as_dict() for alert in self.alerts],
        }
