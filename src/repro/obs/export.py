"""Exporters: Chrome trace JSON, span trees, OpenMetrics, live streams.

:func:`chrome_trace` converts a telemetry event stream into the Chrome
``trace_event`` JSON format, so a whole chaos campaign renders as a
flame timeline in ``chrome://tracing`` or https://ui.perfetto.dev —
each recording pid becomes its own track, which makes worker
parallelism directly visible.

:func:`build_span_tree` / :func:`format_span_tree` turn the same stream
into the nested timing structure attached to
:class:`~repro.exec.profiling.ExecutionReport` and printed by the
``repro trace summary`` CLI subcommand; same-name siblings aggregate
into one line (count / total / max) so a 28-cell campaign summarises in
a dozen lines instead of hundreds.

:func:`render_openmetrics` renders one
:class:`~repro.obs.metrics.MetricsRegistry` snapshot as the
OpenMetrics/Prometheus text exposition format, and
:class:`MetricsStream` periodically appends snapshots to a JSONL
time-series file (optionally rewriting a live OpenMetrics textfile a
node-exporter-style scraper can collect) — the *streaming* half of the
observability stack: a long soak emits its SLO series as it runs, with
nothing accumulating in memory.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, IO, Iterable, List, Optional

from repro.obs.log import iter_spans


def chrome_trace(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """The event stream as a Chrome ``trace_event`` JSON object.

    Completed spans become ``ph:"X"`` (complete) events and point
    events become ``ph:"i"`` (instant) events, with microsecond
    timestamps relative to the collector epoch.  All tracks share
    ``pid`` 0; the recording process id becomes the ``tid`` so each
    worker gets its own lane.  Serialise with ``json.dump`` and load
    the file straight into Perfetto.
    """
    events = list(events)
    trace_events: List[Dict[str, Any]] = []
    for span in iter_spans(events):
        trace_events.append(
            {
                "name": span["name"],
                "cat": span["src"],
                "ph": "X",
                "ts": round(span["t0"] * 1e6, 3),
                "dur": round(max(span["seconds"], 0.0) * 1e6, 3),
                "pid": 0,
                "tid": span.get("pid", 0),
                "args": span["attrs"],
            }
        )
    for event in events:
        if event.get("kind") not in ("event", "metrics"):
            continue
        trace_events.append(
            {
                "name": event["name"],
                "cat": event.get("src", "main"),
                "ph": "i",
                "s": "t",
                "ts": round(event["t"] * 1e6, 3),
                "pid": 0,
                "tid": event.get("pid", 0),
                "args": event.get("attrs", {}),
            }
        )
    trace_events.sort(key=lambda entry: (entry["ts"], entry["tid"]))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[Dict[str, Any]], path: str) -> int:
    """Write :func:`chrome_trace` output to ``path``; return event count."""
    trace = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, separators=(",", ":"))
    return len(trace["traceEvents"])


def build_span_tree(
    events: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Nest completed spans into parent→children trees.

    Returns the list of root spans, each a dict with ``name``,
    ``seconds``, ``t0``, ``attrs``, ``src`` and ``children`` (same
    shape, recursively), ordered by start time.  Spans whose parent
    never completed surface as roots rather than vanishing.
    """
    spans = sorted(iter_spans(events), key=lambda s: (s["t0"], s["id"]))
    nodes: Dict[int, Dict[str, Any]] = {}
    roots: List[Dict[str, Any]] = []
    for span in spans:
        nodes[span["id"]] = {
            "name": span["name"],
            "seconds": span["seconds"],
            "t0": span["t0"],
            "src": span["src"],
            "attrs": span["attrs"],
            "children": [],
        }
    for span in spans:
        node = nodes[span["id"]]
        parent = nodes.get(span.get("parent"))
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


def _aggregate_siblings(
    children: List[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Group same-name siblings into (name, count, total, max, sample)."""
    order: List[str] = []
    groups: Dict[str, Dict[str, Any]] = {}
    for child in children:
        name = child["name"]
        group = groups.get(name)
        if group is None:
            order.append(name)
            groups[name] = group = {
                "name": name,
                "count": 0,
                "total": 0.0,
                "max": 0.0,
                "sample": child,
            }
        group["count"] += 1
        group["total"] += child["seconds"]
        if child["seconds"] >= group["max"]:
            group["max"] = child["seconds"]
            group["sample"] = child
    return [groups[name] for name in order]


def format_span_tree(
    roots: List[Dict[str, Any]],
    indent: int = 0,
    max_depth: int = 6,
) -> List[str]:
    """Render a span tree as indented text lines.

    Same-name siblings collapse into one aggregate line (``×count``,
    total and max seconds); the slowest instance's subtree is the one
    expanded beneath it, which is the instance worth reading.
    """
    lines: List[str] = []
    if indent // 2 >= max_depth:
        return lines
    for group in _aggregate_siblings(roots):
        pad = " " * indent
        sample = group["sample"]
        if group["count"] == 1:
            detail = _format_attrs(sample["attrs"])
            lines.append(
                f"{pad}{group['name']}  {sample['seconds'] * 1e3:.2f} ms"
                + (f"  [{detail}]" if detail else "")
            )
        else:
            lines.append(
                f"{pad}{group['name']} ×{group['count']}  "
                f"total {group['total'] * 1e3:.2f} ms  "
                f"max {group['max'] * 1e3:.2f} ms"
            )
        lines.extend(
            format_span_tree(sample["children"], indent + 2, max_depth)
        )
    return lines


def _format_attrs(attrs: Dict[str, Any], limit: int = 4) -> str:
    parts = [f"{key}={attrs[key]}" for key in list(attrs)[:limit]]
    if len(attrs) > limit:
        parts.append("…")
    return " ".join(parts)


def summarize_events(events: Iterable[Dict[str, Any]]) -> str:
    """A human-readable digest of a JSONL telemetry log.

    Sections: span tree (aggregated), lifecycle events grouped by name,
    and the final metrics snapshot / accumulated metric deltas.
    """
    events = list(events)
    lines: List[str] = []
    kinds: Dict[str, int] = {}
    for event in events:
        kind = event.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
    total = len(events)
    kind_bits = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
    lines.append(f"{total} events ({kind_bits})")

    tree = build_span_tree(events)
    if tree:
        lines.append("")
        lines.append("span tree:")
        lines.extend("  " + line for line in format_span_tree(tree))

    lifecycle: Dict[str, int] = {}
    for event in events:
        if event.get("kind") == "event":
            name = event.get("name", "?")
            lifecycle[name] = lifecycle.get(name, 0) + 1
    if lifecycle:
        lines.append("")
        lines.append("events:")
        for name in sorted(lifecycle):
            lines.append(f"  {name} ×{lifecycle[name]}")

    snapshot = _final_metrics(events)
    if snapshot:
        lines.append("")
        lines.append("metrics:")
        for name in sorted(snapshot.get("counters", {})):
            lines.append(f"  {name} = {snapshot['counters'][name]}")
        for name in sorted(snapshot.get("gauges", {})):
            lines.append(f"  {name} = {snapshot['gauges'][name]} (gauge)")
        for name, payload in sorted(
            snapshot.get("histograms", {}).items()
        ):
            lines.append(
                f"  {name}: n={payload['count']} sum={payload['sum']:.4f}s"
                f" max={payload['max']:.4f}s"
            )
    return "\n".join(lines)


def _final_metrics(
    events: List[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    """The last full metrics snapshot, else the sum of metric deltas."""
    from repro.obs.metrics import MetricsRegistry

    snapshot = None
    for event in events:
        if event.get("kind") == "metrics" and event.get("name") == (
            "metrics-snapshot"
        ):
            snapshot = event.get("attrs")
    if snapshot is not None:
        return snapshot
    registry = MetricsRegistry()
    seen = False
    for event in events:
        if event.get("kind") == "metrics":
            registry.merge(event.get("attrs", {}))
            seen = True
    return registry.snapshot() if seen else None


# ----------------------------------------------------------------------
# OpenMetrics / Prometheus text exposition
# ----------------------------------------------------------------------

_METRIC_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    """Sanitise a registry metric name for the exposition format."""
    cleaned = _METRIC_NAME_BAD.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _metric_value(value: Any) -> str:
    """A number in exposition format (integers without a trailing .0)."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_openmetrics(
    snapshot: Dict[str, Any], prefix: str = "repro"
) -> str:
    """One metrics snapshot as OpenMetrics text (ends with ``# EOF``).

    Counters render as ``<name>_total``, gauges as plain samples, and
    histograms as cumulative ``_bucket{le="..."}`` series (including
    the explicit ``+Inf`` overflow bucket) plus ``_sum`` and
    ``_count`` — the shapes Prometheus' histogram_quantile expects.
    Output order is sorted, so the rendering is deterministic.
    """
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _metric_name(f"{prefix}_{name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(
            f"{metric}_total {_metric_value(snapshot['counters'][name])}"
        )
    for name in sorted(snapshot.get("gauges", {})):
        metric = _metric_name(f"{prefix}_{name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_metric_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        payload = snapshot["histograms"][name]
        metric = _metric_name(f"{prefix}_{name}")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(payload["buckets"], payload["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_metric_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {payload["count"]}')
        lines.append(f"{metric}_sum {_metric_value(payload['sum'])}")
        lines.append(f"{metric}_count {payload['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class MetricsStream:
    """Streaming metrics exporter: JSONL time series + live textfile.

    Each :meth:`export` call appends one ``{"metrics": snapshot, ...}``
    JSON line to ``path`` (flushed immediately, so the series is live
    and crash-safe) and — when ``openmetrics_path`` is set —
    atomically rewrites that file with the current
    :func:`render_openmetrics` exposition, the way node-exporter
    textfile collectors are fed.  The stream keeps **no** per-export
    state: memory stays constant however long the run is.
    """

    def __init__(
        self,
        path: str,
        openmetrics_path: Optional[str] = None,
        prefix: str = "repro",
    ) -> None:
        self.path = path
        self.openmetrics_path = openmetrics_path
        self.prefix = prefix
        self.exports = 0
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    def export(self, snapshot: Dict[str, Any], **stamp: Any) -> None:
        """Append one snapshot, stamped with e.g. ``tick=``/``state=``."""
        if self._handle is None:
            raise ValueError(f"metrics stream {self.path} already closed")
        record = dict(stamp)
        record["metrics"] = snapshot
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()
        self.exports += 1
        if self.openmetrics_path is not None:
            rendered = render_openmetrics(snapshot, prefix=self.prefix)
            tmp_path = self.openmetrics_path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            os.replace(tmp_path, self.openmetrics_path)

    def close(self) -> None:
        """Close the JSONL handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "MetricsStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
