"""Run-scoped tracing spans and the telemetry collector.

The heart of :mod:`repro.obs`: one process-global :class:`Collector`
slot.  While no collector is installed every instrument in the codebase
is inert — :func:`span` returns a shared no-op singleton, :func:`event`
/ :func:`counter` return after one global ``is None`` check, and no
event record is ever allocated.  Installing a collector (CLI
``--telemetry`` / ``--log-json``, or :func:`install` from code) turns
the same call sites into a structured event stream:

* **spans** — hierarchical timed regions (``campaign → cell →
  graph-build → protocol-run``) opened/closed via context manager or
  the :func:`traced` decorator, timed on the monotonic clock;
* **events** — point records (supervisor lifecycle: fork, SIGKILL,
  retry, quarantine; checkpoint journal writes);
* **metrics** — counters/gauges/histograms accumulated in the
  collector's :class:`~repro.obs.metrics.MetricsRegistry`.

Telemetry is **provably passive**: nothing here is consulted by any
simulation or construction code path, so a telemetry-enabled run yields
byte-identical results to a telemetry-off run (pinned by
``tests/test_telemetry.py``).

Worker-side capture
-------------------
Forked workers inherit the installed collector through the copied
address space.  :func:`capture_start` / :func:`capture_finish` bracket
one work item: events recorded in between are extracted (and the
metric/id state rolled back), shipped over the existing result pipe as
a plain dict, and merged in the parent via :func:`adopt` — in
deterministic submission order, with span ids remapped onto the
parent's id sequence.  The same capture runs around serial in-process
items, so the merged event stream is identical for any worker count.

Event schema (one JSON object per line in the JSONL log)::

    {"seq": int, "t": float, "kind": "span-open" | "span-close" |
     "event" | "metrics", "name": str, "src": "main" | "cell" | "exec",
     "pid": int, "attrs": {...}, "id": int?, "parent": int | null}

``t`` is seconds since the collector was created (monotonic);  ``src``
separates the deterministic stream (``main`` spans, adopted ``cell``
subtrees) from scheduling-dependent executor lifecycle noise (``exec``).
"""

from __future__ import annotations

import functools
import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry, metrics_delta

#: The process-global collector slot.  ``None`` means telemetry is off.
_COLLECTOR: Optional["Collector"] = None


class Collector:
    """Accumulates telemetry events and metrics for one session.

    Parameters
    ----------
    sink:
        Optional callable invoked with each event dict as it is
        recorded (e.g. a :class:`~repro.obs.log.JsonlSink` streaming to
        stderr).  Only the process that created the collector streams;
        forked children buffer and ship their events back instead.
        Streaming pauses while a worker-side capture is open — captured
        events are removed and re-recorded on :func:`adopt`, so sinking
        them eagerly would double-write them.
    clock:
        Monotonic time source; injectable for tests.
    max_buffered:
        Optional cap on the in-memory event buffer.  Requires a
        ``sink``: once an event has been streamed it may be evicted
        from ``events``, keeping a multi-hour run's memory bounded.
        Events inside an open capture window are never evicted (they
        have not been streamed yet).  ``seq`` numbers stay dense and
        absolute across evictions, so the sunk JSONL stream still
        validates.  ``None`` (the default) buffers everything, which is
        the historical behaviour batch exporters rely on.
    """

    def __init__(
        self,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        clock: Callable[[], float] = time.perf_counter,
        max_buffered: Optional[int] = None,
    ) -> None:
        if max_buffered is not None:
            if sink is None:
                raise ValueError(
                    "max_buffered requires a sink: evicting unstreamed "
                    "events would lose them"
                )
            if max_buffered < 1:
                raise ValueError(
                    f"max_buffered must be >= 1, got {max_buffered}"
                )
        self._clock = clock
        self.epoch = clock()
        self.sink = sink
        self.max_buffered = max_buffered
        self.events: List[Dict[str, Any]] = []
        self.metrics = MetricsRegistry()
        self._stack: List[int] = []
        self._span_names: Dict[int, str] = {}
        self._next_id = 1
        self._owner_pid = os.getpid()
        self._seq = 0
        self._evicted = 0
        self._capture_marks: List[int] = []

    # -- time -----------------------------------------------------------

    def now(self) -> float:
        """Seconds since this collector was created (monotonic)."""
        return self._clock() - self.epoch

    # -- recording ------------------------------------------------------

    def _record(self, event: Dict[str, Any]) -> None:
        event["seq"] = self._seq
        self._seq += 1
        self.events.append(event)
        if (
            self.sink is not None
            and os.getpid() == self._owner_pid
            and not self._capture_marks
        ):
            self.sink(event)
            if (
                self.max_buffered is not None
                and len(self.events) > self.max_buffered
            ):
                excess = len(self.events) - self.max_buffered
                del self.events[:excess]
                self._evicted += excess

    @property
    def events_recorded(self) -> int:
        """Total events recorded, including any evicted from the buffer."""
        return self._seq

    def current_span(self) -> Optional[int]:
        """Id of the innermost open span, or ``None`` at top level."""
        return self._stack[-1] if self._stack else None

    def span_stack(self) -> Tuple[str, ...]:
        """Names of the currently open spans, outermost first.

        Read by the sampling profiler (:mod:`repro.obs.prof`) from its
        signal handler to attribute samples; a cheap tuple snapshot so
        the handler never observes a half-mutated list.
        """
        names = self._span_names
        return tuple(names.get(i, "?") for i in tuple(self._stack))

    def emit(
        self,
        name: str,
        kind: str = "event",
        src: str = "main",
        t: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one point event under the current span."""
        self._record(
            {
                "t": self.now() if t is None else t,
                "kind": kind,
                "name": name,
                "src": src,
                "pid": os.getpid(),
                "parent": self.current_span(),
                "attrs": attrs or {},
            }
        )

    def open_span(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        t: Optional[float] = None,
        src: str = "main",
    ) -> int:
        """Open a span nested under the current one; return its id."""
        span_id = self._next_id
        self._next_id += 1
        self._span_names[span_id] = name
        self._record(
            {
                "t": self.now() if t is None else t,
                "kind": "span-open",
                "name": name,
                "src": src,
                "pid": os.getpid(),
                "id": span_id,
                "parent": self.current_span(),
                "attrs": attrs or {},
            }
        )
        self._stack.append(span_id)
        return span_id

    def close_span(
        self,
        span_id: int,
        attrs: Optional[Dict[str, Any]] = None,
        t: Optional[float] = None,
        src: str = "main",
        name: str = "",
    ) -> None:
        """Close a span (innermost-first; stray ids are tolerated)."""
        if span_id in self._stack:
            while self._stack and self._stack[-1] != span_id:
                self._span_names.pop(self._stack.pop(), None)
            self._stack.pop()
        self._span_names.pop(span_id, None)
        self._record(
            {
                "t": self.now() if t is None else t,
                "kind": "span-close",
                "name": name,
                "src": src,
                "pid": os.getpid(),
                "id": span_id,
                "attrs": attrs or {},
            }
        )


# ----------------------------------------------------------------------
# Global slot management
# ----------------------------------------------------------------------


def install(collector: Optional[Collector] = None) -> Collector:
    """Install (and return) the process-global collector.

    Passing ``None`` installs a fresh default :class:`Collector`.
    Installing over an existing collector replaces it.
    """
    global _COLLECTOR
    _COLLECTOR = collector if collector is not None else Collector()
    return _COLLECTOR


def uninstall() -> Optional[Collector]:
    """Remove and return the installed collector (``None`` if none)."""
    global _COLLECTOR
    collector, _COLLECTOR = _COLLECTOR, None
    return collector


def active() -> Optional[Collector]:
    """The installed collector, or ``None`` when telemetry is off."""
    return _COLLECTOR


# ----------------------------------------------------------------------
# Span API (context manager + decorator)
# ----------------------------------------------------------------------


class _NullSpan:
    """Shared no-op span: what :func:`span` returns when telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """A live span: context manager over one collector span."""

    __slots__ = ("name", "attrs", "_late", "_id")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self._late: Dict[str, Any] = {}
        self._id: Optional[int] = None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes after opening (land on the close event)."""
        self._late.update(attrs)
        return self

    def __enter__(self) -> "Span":
        collector = _COLLECTOR
        if collector is not None:
            self._id = collector.open_span(self.name, self.attrs)
        return self

    def __exit__(self, *exc_info: object) -> None:
        collector = _COLLECTOR
        if collector is not None and self._id is not None:
            collector.close_span(self._id, attrs=self._late, name=self.name)
        self._id = None


def span(name: str, **attrs: Any):
    """A context-manager span, inert (shared singleton) without a collector.

    Examples
    --------
    >>> with span("graph-build", n=64, k=4):
    ...     pass
    """
    if _COLLECTOR is None:
        return _NULL_SPAN
    return Span(name, attrs)


def traced(name: Optional[str] = None):
    """Decorator form of :func:`span`; zero overhead when telemetry is off."""

    def wrap(fn: Callable[..., Any]) -> Callable[..., Any]:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def inner(*args: Any, **kwargs: Any) -> Any:
            if _COLLECTOR is None:
                return fn(*args, **kwargs)
            with span(label):
                return fn(*args, **kwargs)

        return inner

    return wrap


# ----------------------------------------------------------------------
# Point events and metric shortcuts
# ----------------------------------------------------------------------


def event(name: str, src: str = "main", **attrs: Any) -> None:
    """Record one point event (no-op when telemetry is off)."""
    collector = _COLLECTOR
    if collector is not None:
        collector.emit(name, src=src, attrs=attrs)


def counter(name: str, amount: float = 1) -> None:
    """Increment a collector counter (no-op when telemetry is off)."""
    collector = _COLLECTOR
    if collector is not None:
        collector.metrics.counter(name, amount)


def gauge(name: str, value: float) -> None:
    """Set a collector gauge (no-op when telemetry is off)."""
    collector = _COLLECTOR
    if collector is not None:
        collector.metrics.gauge(name, value)


def observe(name: str, value: float, buckets=DEFAULT_BUCKETS) -> None:
    """Record a histogram sample (no-op when telemetry is off)."""
    collector = _COLLECTOR
    if collector is not None:
        collector.metrics.observe(name, value, buckets)


def record_network(network: Any) -> None:
    """Harvest a finished network's message totals into the metrics.

    Bulk-adds the :class:`~repro.flooding.network.NetworkStats` the
    simulation already keeps (``net.send`` / ``net.deliver`` /
    ``net.drop`` counters), so telemetry costs one call per *run*
    instead of one observer call per *message* — the hot path of the
    simulator stays untouched.  No-op when telemetry is off.
    """
    collector = _COLLECTOR
    if collector is None:
        return
    metrics = collector.metrics
    for name, total in network.stats.as_counters().items():
        metrics.counter(name, total)


# ----------------------------------------------------------------------
# Worker-side capture: extract-ship-adopt
# ----------------------------------------------------------------------

#: Capture token: (absolute seq mark, metrics snapshot, start time,
#: next span id).
CaptureToken = Tuple[int, Dict[str, Any], float, int]


def capture_start() -> Optional[CaptureToken]:
    """Begin capturing one item's telemetry; ``None`` when off.

    While any capture is open the collector's sink pauses and eviction
    stops: captured events will be removed by :func:`capture_finish`
    and re-recorded (remapped) by :func:`adopt`, which is when they
    stream.
    """
    collector = _COLLECTOR
    if collector is None:
        return None
    mark = collector._seq
    collector._capture_marks.append(mark)
    return (
        mark,
        collector.metrics.snapshot(),
        collector.now(),
        collector._next_id,
    )


def capture_finish(token: Optional[CaptureToken]) -> Optional[Dict[str, Any]]:
    """End a capture; return the pipe-shippable payload (or ``None``).

    Events recorded since :func:`capture_start` are *removed* from the
    collector (and the seq counter rolled back), and the metric
    registry and span-id counter are rolled back to their pre-capture
    state — so a serially executed item leaves the collector exactly as
    a forked one does, and :func:`adopt` produces the identical merged
    stream either way.
    """
    collector = _COLLECTOR
    if collector is None or token is None:
        return None
    mark, before, started, next_id = token
    index = mark - collector._evicted
    events = collector.events[index:]
    del collector.events[index:]
    collector._seq = mark
    if mark in collector._capture_marks:
        collector._capture_marks.remove(mark)
    after = collector.metrics.snapshot()
    delta = metrics_delta(before, after)
    collector.metrics.restore(before)
    collector._next_id = next_id
    return {
        "events": events,
        "metrics": delta,
        "t0": started,
        "t1": collector.now(),
    }


def adopt(
    payload: Optional[Dict[str, Any]],
    name: str = "cell",
    src: str = "cell",
    **attrs: Any,
) -> None:
    """Merge one captured payload into the installed collector.

    Wraps the captured events in a ``name`` span stamped with the
    capture's real start/end times, remaps captured span ids onto the
    parent's id sequence (references to spans opened outside the
    capture re-parent onto the wrapping span), folds the metric delta
    into the registry, and emits one ``metrics``-kind event carrying
    the delta — the "metric deltas" records of the JSONL log.
    """
    collector = _COLLECTOR
    if collector is None or payload is None:
        return
    wrapper = collector.open_span(name, attrs, t=payload["t0"], src=src)
    mapping: Dict[int, int] = {}
    for captured in payload["events"]:
        merged = dict(captured)
        merged["src"] = src
        old_id = merged.get("id")
        if old_id is not None:
            if merged["kind"] == "span-open":
                mapping[old_id] = collector._next_id
                collector._next_id += 1
            merged["id"] = mapping.get(old_id, old_id)
        if "parent" in merged:
            parent = merged["parent"]
            merged["parent"] = mapping.get(parent, wrapper)
        collector._record(merged)
    delta = payload["metrics"]
    if any(delta.values()):
        collector.metrics.merge(delta)
        collector.emit(
            "metrics-delta", kind="metrics", src=src, t=payload["t1"], attrs=delta
        )
    collector.close_span(wrapper, t=payload["t1"], src=src, name=name)
