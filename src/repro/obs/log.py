"""Structured JSONL event log: sinks, file round-trip, schema validation.

One telemetry event is one JSON object per line.  The schema is small
and fixed (see :data:`EVENT_KINDS` and :func:`validate_event`), so the
log is greppable, diffable, and safely parseable by anything — the CI
``telemetry`` job validates every emitted line against it.

Two ways to get a log on disk:

* **streaming** — install a :class:`JsonlSink` on the collector; events
  are written the moment they are recorded (only by the process that
  created the collector; forked workers buffer and ship instead);
* **batch** — :func:`write_jsonl` dumps a collector's accumulated
  events after the run (what the CLI ``--telemetry PATH`` flag does),
  which keeps hot paths free of I/O.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, IO, Iterable, Iterator, List, Optional, Union

#: The closed set of event kinds a JSONL log may contain.
EVENT_KINDS = ("span-open", "span-close", "event", "metrics")

#: Sources: ``main`` — deterministic in-process stream; ``cell`` —
#: adopted per-item capture (deterministic, merged in submission
#: order); ``exec`` — executor lifecycle (scheduling-dependent).
EVENT_SOURCES = ("main", "cell", "exec")

_REQUIRED_FIELDS = {
    "seq": int,
    "t": (int, float),
    "kind": str,
    "name": str,
    "src": str,
    "pid": int,
    "attrs": dict,
}


def encode_event(event: Dict[str, Any]) -> str:
    """One event as its canonical JSONL line (sorted keys, no spaces)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class JsonlSink:
    """A collector sink streaming each event as one JSON line.

    Parameters
    ----------
    stream:
        Writable text stream; defaults to ``sys.stderr`` (what the CLI
        ``--log-json`` flag uses).
    """

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, event: Dict[str, Any]) -> None:
        self.stream.write(encode_event(event) + "\n")


def write_jsonl(events: Iterable[Dict[str, Any]], path: str) -> int:
    """Write events to ``path``, one JSON object per line; return count."""
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(encode_event(event) + "\n")
            written += 1
    return written


def read_jsonl(source: Union[str, IO[str]]) -> List[Dict[str, Any]]:
    """Parse a JSONL telemetry log from a path or open stream."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]
    return [json.loads(line) for line in source if line.strip()]


def validate_event(event: Dict[str, Any]) -> List[str]:
    """Problems with one event against the schema (empty list = valid)."""
    problems: List[str] = []
    for field, types in _REQUIRED_FIELDS.items():
        if field not in event:
            problems.append(f"missing field {field!r}")
        elif not isinstance(event[field], types) or isinstance(
            event[field], bool
        ):
            problems.append(
                f"field {field!r} has type {type(event[field]).__name__}"
            )
    if not problems:
        if event["kind"] not in EVENT_KINDS:
            problems.append(f"unknown kind {event['kind']!r}")
        if event["src"] not in EVENT_SOURCES:
            problems.append(f"unknown src {event['src']!r}")
        if event["kind"] in ("span-open", "span-close"):
            if not isinstance(event.get("id"), int):
                problems.append(f"{event['kind']} event without integer 'id'")
        if event["kind"] == "span-open":
            parent = event.get("parent", "absent")
            if parent is not None and not isinstance(parent, int):
                problems.append("span-open 'parent' must be int or null")
    return problems


def validate_events(
    events: Iterable[Dict[str, Any]],
) -> List[str]:
    """Validate a whole stream; also checks seq ordering and span pairing.

    Returns a flat list of ``"event N: problem"`` strings, empty when
    the stream is schema-valid.
    """
    problems: List[str] = []
    opened: Dict[int, str] = {}
    closed: set = set()
    for position, event in enumerate(events):
        for problem in validate_event(event):
            problems.append(f"event {position}: {problem}")
        if not isinstance(event.get("seq"), int) or event["seq"] != position:
            problems.append(
                f"event {position}: seq {event.get('seq')!r} out of order"
            )
        kind = event.get("kind")
        if kind == "span-open":
            span_id = event.get("id")
            if span_id in opened or span_id in closed:
                problems.append(f"event {position}: duplicate span id {span_id}")
            elif isinstance(span_id, int):
                opened[span_id] = event.get("name", "")
        elif kind == "span-close":
            span_id = event.get("id")
            if span_id in closed:
                problems.append(
                    f"event {position}: span id {span_id} closed twice"
                )
            elif span_id not in opened:
                problems.append(
                    f"event {position}: close of unopened span id {span_id}"
                )
            else:
                del opened[span_id]
                closed.add(span_id)
    for span_id, name in opened.items():
        problems.append(f"span id {span_id} ({name!r}) never closed")
    return problems


def iter_spans(
    events: Iterable[Dict[str, Any]],
) -> Iterator[Dict[str, Any]]:
    """Yield one merged record per completed span (open + close pair).

    Each record carries the open event's ``name``/``parent``/``src``/
    ``pid``, start time ``t0``, end time ``t1``, ``seconds``, and the
    union of open/close attributes (close wins on conflict).
    """
    pending: Dict[int, Dict[str, Any]] = {}
    for event in events:
        kind = event.get("kind")
        if kind == "span-open":
            pending[event["id"]] = event
        elif kind == "span-close":
            start = pending.pop(event.get("id"), None)
            if start is None:
                continue
            attrs = dict(start.get("attrs", {}))
            attrs.update(event.get("attrs", {}))
            yield {
                "id": start["id"],
                "name": start["name"],
                "parent": start.get("parent"),
                "src": start.get("src", "main"),
                "pid": start.get("pid"),
                "t0": start["t"],
                "t1": event["t"],
                "seconds": event["t"] - start["t"],
                "attrs": attrs,
            }
