"""Process-local metrics: named counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a plain, allocation-light accumulator the
telemetry collector (:mod:`repro.obs.spans`) carries through a run.
Three instrument kinds cover everything the execution layers count:

* **counters** — monotonically increasing tallies (messages sent,
  retries, worker deaths, cache hits, checkpoint writes);
* **gauges** — last-written values (current worker count, grid size);
* **histograms** — fixed-bucket distributions (per-cell latency); the
  bucket edges are frozen at first observation so two registries with
  the same metric always merge exactly.

Everything snapshots to (and merges from) plain JSON-safe dicts, which
is how worker-side metric deltas ride the result pipe back to the
supervising process and land in the JSONL event log — snapshots are
pure data, so merging deltas in deterministic submission order yields
an order-independent, reproducible total.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds, in seconds — spans cell costs
#: from sub-millisecond graph builds to minute-long supervised cells.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


class Histogram:
    """A fixed-bucket histogram: counts per bucket plus count/sum/min/max.

    ``buckets`` are the inclusive upper bounds of each bucket; values
    above the last bound land in the explicit **+Inf overflow bucket**
    — the last slot of ``counts``, so ``len(counts) == len(buckets) +
    1``.  :meth:`bounds` exposes the full bound list *including* the
    trailing ``inf``, and :meth:`quantile` accounts for overflow
    samples by reporting the recorded maximum instead of silently
    capping at the top finite bound.
    """

    __slots__ = ("buckets", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram buckets must be strictly increasing, got {bounds}"
            )
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: Number) -> None:
        """Record one sample."""
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def bounds(self) -> Tuple[float, ...]:
        """Every bucket upper bound, ending with the explicit ``+Inf``."""
        return self.buckets + (math.inf,)

    @property
    def overflow(self) -> int:
        """Samples in the +Inf bucket (above the last finite bound)."""
        return self.counts[-1]

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Returns the upper bound of the first bucket whose cumulative
        count reaches ``q * count`` — conservative (never understated)
        with fixed buckets.  When the quantile lands in the +Inf
        overflow bucket the recorded maximum is reported, so values
        above the top finite bound cannot silently deflate tail
        percentiles.  An empty histogram reports ``0.0``.

        Raises
        ------
        ValueError
            If ``q`` is outside ``(0, 1]``.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        need = q * self.count
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            if cumulative >= need:
                return float(bound)
        # the quantile is in the overflow bucket: the tightest honest
        # answer the histogram has is the recorded maximum
        return float(self.maximum if self.maximum is not None else 0.0)

    def snapshot(self) -> Dict[str, Any]:
        """The histogram as a plain JSON-safe dict."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    def merge(self, delta: Dict[str, Any]) -> None:
        """Fold a snapshot/delta dict (same bucket edges) into this one.

        Raises
        ------
        ValueError
            If the bucket edges disagree — merging histograms with
            different shapes would silently misplace samples.
        """
        if tuple(delta["buckets"]) != self.buckets:
            raise ValueError(
                f"histogram bucket mismatch: {delta['buckets']} vs "
                f"{list(self.buckets)}"
            )
        for slot, count in enumerate(delta["counts"]):
            self.counts[slot] += count
        self.count += delta["count"]
        self.total += delta["sum"]
        for bound, pick in (("min", min), ("max", max)):
            other = delta.get(bound)
            if other is None:
                continue
            mine = self.minimum if bound == "min" else self.maximum
            merged = other if mine is None else pick(mine, other)
            if bound == "min":
                self.minimum = merged
            else:
                self.maximum = merged

    @classmethod
    def from_snapshot(cls, payload: Dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from :meth:`snapshot` output."""
        histogram = cls(payload["buckets"])
        histogram.merge(payload)
        return histogram


class MetricsRegistry:
    """Named counters, gauges and histograms for one telemetry session."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------

    def counter(self, name: str, amount: Number = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(
        self,
        name: str,
        value: Number,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record ``value`` into histogram ``name``.

        ``buckets`` only takes effect when the histogram is created by
        this observation; later calls reuse the frozen edges.
        """
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(buckets)
        histogram.observe(value)

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything recorded so far as one plain JSON-safe dict."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: h.snapshot() for name, h in self.histograms.items()
            },
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Reset the registry to a previously taken :meth:`snapshot`."""
        self.counters = dict(snapshot["counters"])
        self.gauges = dict(snapshot["gauges"])
        self.histograms = {
            name: Histogram.from_snapshot(payload)
            for name, payload in snapshot["histograms"].items()
        }

    def merge(self, delta: Dict[str, Any]) -> None:
        """Fold a snapshot-shaped delta into this registry (additive)."""
        for name, amount in delta.get("counters", {}).items():
            self.counter(name, amount)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name, value)
        for name, payload in delta.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                self.histograms[name] = Histogram.from_snapshot(payload)
            else:
                histogram.merge(payload)

    def is_empty(self) -> bool:
        """True when nothing has been recorded."""
        return not (self.counters or self.gauges or self.histograms)


def metrics_delta(
    before: Dict[str, Any], after: Dict[str, Any]
) -> Dict[str, Any]:
    """The snapshot-shaped difference ``after - before``.

    Counters and histogram bucket counts subtract; gauges take the
    ``after`` value for every key written since ``before``.  Merging the
    returned delta into a registry restored to ``before`` reproduces
    ``after`` exactly — the round trip worker-side telemetry relies on.
    """
    counters = {
        name: value - before["counters"].get(name, 0)
        for name, value in after["counters"].items()
        if value != before["counters"].get(name, 0)
    }
    gauges = {
        name: value
        for name, value in after["gauges"].items()
        if name not in before["gauges"] or before["gauges"][name] != value
    }
    histograms = {}
    for name, payload in after["histograms"].items():
        prior = before["histograms"].get(name)
        if prior is None:
            histograms[name] = payload
            continue
        if payload["count"] == prior["count"]:
            continue
        histograms[name] = {
            "buckets": payload["buckets"],
            "counts": [
                now - then
                for now, then in zip(payload["counts"], prior["counts"])
            ],
            "count": payload["count"] - prior["count"],
            "sum": payload["sum"] - prior["sum"],
            "min": payload["min"],
            "max": payload["max"],
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
