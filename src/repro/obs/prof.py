"""Span-attributed statistical sampling profiler (zero-dependency).

:class:`SamplingProfiler` answers the question the batch span tree
cannot: *where inside a span does the time go?*  It periodically
samples the Python call stack of the running process and attributes
each sample to the innermost open :mod:`repro.obs` span (when a
collector is installed), producing

* **collapsed-stack output** — one ``frame;frame;frame count`` line per
  distinct stack, the format ``flamegraph.pl`` and speedscope render
  directly;
* **per-span self/cumulative time** — how many sampled seconds landed
  *in* each span versus *under* it, the evidence base for hot-path
  rewrites (ROADMAP item 2).

Two backends:

* ``signal`` — :func:`signal.setitimer` fires ``SIGALRM`` (wall time)
  or ``SIGPROF`` (CPU time) at the sampling frequency; the handler
  walks the interrupted frame.  Main-thread only, POSIX only, but
  near-zero overhead between samples: the profiled code runs unmodified
  machine code and pays only for the actual samples.
* ``setprofile`` — a :func:`sys.setprofile` hook that checks a clock
  deadline on call/return events and samples when it passes.  Portable
  fallback (no signals needed) with higher overhead, useful where
  ``setitimer`` is unavailable or another component owns ``SIGALRM``.

Sampling vs determinism
-----------------------
The profiler is **passive but nondeterministic**: it never writes to
the collector, never feeds a result back into simulation code, and a
run with the profiler off is byte-identical to one that never imported
this module (pinned by ``tests/test_telemetry.py``).  Its *own* output
(sample counts) is wall-clock-shaped by construction — that is the
point of a profiler — which is why this module sits on the DET002
wall-clock allowlist in :mod:`repro.lint.engine`: the clock *is* the
instrument, and nothing downstream of science reads it.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from types import FrameType
from typing import Any, Callable, Dict, List, Optional, Tuple

import repro.obs.spans as _spans

#: Sample key: (open span names outermost-first, frame labels root-first).
SampleKey = Tuple[Tuple[str, ...], Tuple[str, ...]]

#: Backends in the order ``backend="auto"`` tries them.
BACKENDS = ("signal", "setprofile")

#: Timers for the signal backend: ``wall`` samples elapsed real time
#: (``ITIMER_REAL``/``SIGALRM``), ``cpu`` samples on-CPU time
#: (``ITIMER_PROF``/``SIGPROF``).
TIMERS = ("wall", "cpu")

#: Label used for samples taken outside any open span.
NO_SPAN = "(no span)"


def _frame_label(frame: FrameType) -> str:
    """``module:function`` label for one frame."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_code.co_name}"


def _walk_stack(frame: Optional[FrameType], limit: int) -> Tuple[str, ...]:
    """Frame labels from ``frame`` to the root, returned root-first."""
    labels: List[str] = []
    current = frame
    while current is not None and len(labels) < limit:
        labels.append(_frame_label(current))
        current = current.f_back
    labels.reverse()
    return tuple(labels)


class Profile:
    """Accumulated samples: ``(span path, stack) -> count`` plus timing.

    ``duration`` (seconds the profiler ran) divided by the total sample
    count converts counts into estimated seconds; with periodic
    sampling every sample represents one sampling interval.
    """

    __slots__ = ("samples", "duration", "hz", "backend", "timer")

    def __init__(self, hz: float, backend: str, timer: str) -> None:
        self.samples: Dict[SampleKey, int] = {}
        self.duration = 0.0
        self.hz = hz
        self.backend = backend
        self.timer = timer

    # -- recording ------------------------------------------------------

    def add(
        self, span_path: Tuple[str, ...], frames: Tuple[str, ...]
    ) -> None:
        """Record one sample (called from the sampling hook)."""
        key = (span_path, frames)
        self.samples[key] = self.samples.get(key, 0) + 1

    # -- aggregate views ------------------------------------------------

    @property
    def sample_count(self) -> int:
        """Total samples taken."""
        return sum(self.samples.values())

    @property
    def seconds_per_sample(self) -> float:
        """Estimated seconds each sample represents."""
        count = self.sample_count
        return self.duration / count if count else 0.0

    def collapsed(self, include_spans: bool = True) -> List[str]:
        """The profile as collapsed-stack lines (``a;b;c 42``).

        With ``include_spans`` each line is prefixed by the open span
        path as ``span:<name>`` pseudo-frames, so the flamegraph roots
        at the obs span structure.  Lines are sorted for determinism.
        """
        lines: List[str] = []
        for (span_path, frames), count in self.samples.items():
            parts: List[str] = []
            if include_spans:
                parts.extend(f"span:{name}" for name in span_path)
            parts.extend(frames)
            if not parts:
                parts = ["(unknown)"]
            lines.append(f"{';'.join(parts)} {count}")
        return sorted(lines)

    def write_collapsed(self, path: str, include_spans: bool = True) -> int:
        """Write :meth:`collapsed` lines to ``path``; return line count."""
        lines = self.collapsed(include_spans=include_spans)
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)

    def self_counts(self) -> Dict[str, int]:
        """Samples per *leaf* frame — where the time was actually spent."""
        totals: Dict[str, int] = {}
        for (_, frames), count in self.samples.items():
            leaf = frames[-1] if frames else "(unknown)"
            totals[leaf] = totals.get(leaf, 0) + count
        return totals

    def top_functions(self, limit: int = 10) -> List[Tuple[str, int]]:
        """The hottest frames by self samples, descending."""
        ranked = sorted(
            self.self_counts().items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:limit]

    def span_times(self) -> Dict[str, Dict[str, float]]:
        """Per-span ``{"self": seconds, "cum": seconds}`` estimates.

        A sample's *self* time goes to the innermost open span (or
        :data:`NO_SPAN`); its *cumulative* time goes to every distinct
        span on the open path.
        """
        unit = self.seconds_per_sample
        table: Dict[str, Dict[str, float]] = {}

        def cell(name: str) -> Dict[str, float]:
            entry = table.get(name)
            if entry is None:
                entry = table[name] = {"self": 0.0, "cum": 0.0}
            return entry

        for (span_path, _), count in self.samples.items():
            seconds = count * unit
            innermost = span_path[-1] if span_path else NO_SPAN
            cell(innermost)["self"] += seconds
            for name in list(dict.fromkeys(span_path)) or [NO_SPAN]:
                cell(name)["cum"] += seconds
        return table

    def render(self, limit: int = 10) -> str:
        """Human-readable digest: header, span table, hottest frames."""
        lines = [
            f"profile: {self.sample_count} sample(s) over "
            f"{self.duration:.3f}s ({self.backend} backend, "
            f"{self.hz:g} Hz {self.timer} clock)"
        ]
        spans = self.span_times()
        if spans:
            lines.append("  span            self        cum")
            ranked = sorted(
                spans.items(), key=lambda item: (-item[1]["self"], item[0])
            )
            for name, cell in ranked[:limit]:
                lines.append(
                    f"  {name:<14} {cell['self']:>7.3f}s {cell['cum']:>9.3f}s"
                )
        top = self.top_functions(limit)
        if top:
            lines.append("  hottest frames (self samples):")
            total = self.sample_count or 1
            for label, count in top:
                lines.append(
                    f"    {count:>6} ({count / total:>6.1%})  {label}"
                )
        return "\n".join(lines)


#: The one profiler allowed to own the process signal handler at a time.
_ACTIVE: Optional["SamplingProfiler"] = None


class SamplingProfiler:
    """Periodic stack sampler; use as a context manager.

    Parameters
    ----------
    hz:
        Sampling frequency (samples per second).
    backend:
        ``"signal"``, ``"setprofile"``, or ``"auto"`` (signal where
        available on the main thread, else setprofile).
    timer:
        ``"wall"`` or ``"cpu"`` — which clock drives the signal
        backend; the setprofile backend always paces on the wall clock.
    max_depth:
        Frames kept per sample (innermost ``max_depth``).

    Examples
    --------
    >>> profiler = SamplingProfiler(hz=100)
    >>> with profiler:
    ...     pass  # workload
    >>> profiler.profile.sample_count >= 0
    True
    """

    def __init__(
        self,
        hz: float = 100.0,
        backend: str = "auto",
        timer: str = "wall",
        max_depth: int = 64,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"sampling frequency must be positive, got {hz}")
        if backend not in BACKENDS + ("auto",):
            raise ValueError(
                f"unknown backend {backend!r}; expected auto, "
                + " or ".join(BACKENDS)
            )
        if timer not in TIMERS:
            raise ValueError(
                f"unknown timer {timer!r}; expected one of {TIMERS}"
            )
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.hz = hz
        self.interval = 1.0 / hz
        self.requested_backend = backend
        self.timer = timer
        self.max_depth = max_depth
        self._clock = clock
        self.backend = self._resolve_backend(backend)
        if self.backend == "setprofile" and timer == "cpu":
            raise ValueError(
                "the cpu timer needs the signal backend; the setprofile "
                "backend paces on the wall clock"
            )
        self.profile = Profile(hz, self.backend, timer)
        self._running = False
        self._started_at = 0.0
        self._old_handler: Any = None
        self._old_profile: Any = None
        self._next_deadline = 0.0
        self._signum = 0
        self._itimer = 0

    @staticmethod
    def _resolve_backend(requested: str) -> str:
        if requested != "auto":
            return requested
        if (
            hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        ):
            return "signal"
        return "setprofile"

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Arm the sampler (idempotence guarded; one active per process)."""
        global _ACTIVE
        if self._running:
            raise RuntimeError("profiler already running")
        if _ACTIVE is not None:
            raise RuntimeError(
                "another SamplingProfiler is active in this process"
            )
        self.profile = Profile(self.hz, self.backend, self.timer)
        if self.backend == "signal":
            if not hasattr(signal, "setitimer"):
                raise RuntimeError(
                    "signal backend unavailable: no signal.setitimer on "
                    "this platform (use backend='setprofile')"
                )
            if self.timer == "wall":
                self._signum = signal.SIGALRM
                self._itimer = signal.ITIMER_REAL
            else:
                self._signum = signal.SIGPROF
                self._itimer = signal.ITIMER_PROF
            self._old_handler = signal.signal(self._signum, self._on_signal)
            signal.setitimer(self._itimer, self.interval, self.interval)
        else:
            self._next_deadline = self._clock() + self.interval
            self._old_profile = sys.getprofile()
            sys.setprofile(self._on_profile_event)
        _ACTIVE = self
        self._running = True
        self._started_at = self._clock()
        return self

    def stop(self) -> Profile:
        """Disarm the sampler and finalise the profile."""
        global _ACTIVE
        if not self._running:
            return self.profile
        if self.backend == "signal":
            signal.setitimer(self._itimer, 0.0, 0.0)
            signal.signal(self._signum, self._old_handler)
            self._old_handler = None
        else:
            sys.setprofile(self._old_profile)
            self._old_profile = None
        self.profile.duration += self._clock() - self._started_at
        self._running = False
        if _ACTIVE is self:
            _ACTIVE = None
        return self.profile

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- sampling hooks -------------------------------------------------

    def _sample(self, frame: Optional[FrameType]) -> None:
        collector = _spans.active()
        span_path = collector.span_stack() if collector is not None else ()
        self.profile.add(span_path, _walk_stack(frame, self.max_depth))

    def _on_signal(self, signum: int, frame: Optional[FrameType]) -> None:
        self._sample(frame)

    def _on_profile_event(
        self, frame: FrameType, event: str, arg: Any
    ) -> None:
        # Deadline sampling: the hook fires on every call/return, but a
        # sample is only taken when the next sampling instant passed.
        now = self._clock()
        if now >= self._next_deadline:
            self._sample(frame)
            self._next_deadline = now + self.interval


def profile_call(
    fn: Callable[..., Any],
    *args: Any,
    hz: float = 100.0,
    backend: str = "auto",
    timer: str = "wall",
    **kwargs: Any,
) -> Tuple[Any, Profile]:
    """Run ``fn(*args, **kwargs)`` under a profiler; return (result, profile)."""
    profiler = SamplingProfiler(hz=hz, backend=backend, timer=timer)
    with profiler:
        result = fn(*args, **kwargs)
    return result, profiler.profile
