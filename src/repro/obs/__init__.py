"""repro.obs — zero-dependency telemetry: spans, metrics, JSONL, exports.

Layout::

    obs/
      spans.py    Collector, span()/traced(), capture/adopt protocol
      metrics.py  MetricsRegistry: counters, gauges, histograms
      log.py      JSONL sinks, file round-trip, event-schema validation
      export.py   chrome_trace(), span trees, OpenMetrics, MetricsStream
      prof.py     span-attributed statistical sampling profiler

Everything is inert until a :class:`Collector` is installed: with the
global slot empty, :func:`span` hands back a shared no-op singleton and
the metric shortcuts return after one ``is None`` check, so
instrumented hot paths cost nothing.  Telemetry never feeds back into
computation — enabling it is provably passive (byte-identical results,
pinned by ``tests/test_telemetry.py``).

Typical use::

    from repro import obs

    collector = obs.install()
    with obs.span("campaign", cells=28):
        ...
    obs.uninstall()
    obs.write_jsonl(collector.events, "run.jsonl")
"""

from repro.obs.export import (
    MetricsStream,
    build_span_tree,
    chrome_trace,
    format_span_tree,
    render_openmetrics,
    summarize_events,
    write_chrome_trace,
)
from repro.obs.log import (
    EVENT_KINDS,
    EVENT_SOURCES,
    JsonlSink,
    encode_event,
    iter_spans,
    read_jsonl,
    validate_event,
    validate_events,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    metrics_delta,
)
from repro.obs.prof import Profile, SamplingProfiler, profile_call
from repro.obs.spans import (
    Collector,
    Span,
    active,
    adopt,
    capture_finish,
    capture_start,
    counter,
    event,
    gauge,
    install,
    observe,
    record_network,
    span,
    traced,
    uninstall,
)

__all__ = [
    "Collector",
    "DEFAULT_BUCKETS",
    "EVENT_KINDS",
    "EVENT_SOURCES",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "MetricsStream",
    "Profile",
    "SamplingProfiler",
    "Span",
    "active",
    "adopt",
    "build_span_tree",
    "capture_finish",
    "capture_start",
    "chrome_trace",
    "counter",
    "encode_event",
    "event",
    "format_span_tree",
    "gauge",
    "install",
    "iter_spans",
    "metrics_delta",
    "observe",
    "profile_call",
    "read_jsonl",
    "record_network",
    "render_openmetrics",
    "span",
    "summarize_events",
    "traced",
    "uninstall",
    "validate_event",
    "validate_events",
    "write_chrome_trace",
    "write_jsonl",
]
