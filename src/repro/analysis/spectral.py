"""Spectral graph measures: Laplacian spectrum, algebraic connectivity.

The related-work comparison (random expanders of Law & Siu vs
deterministic LHGs) is at heart a spectral question: the **algebraic
connectivity** (Fiedler value, λ₂ of the Laplacian) lower-bounds how
fast flooding-style processes mix and upper-bounds how cheap cuts can
be (Cheeger).  This module computes exact spectra with numpy for the
moderate sizes the analysis sweeps use.

numpy is an analysis-layer dependency only — the runtime library never
imports this module.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph


def _numpy():
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - env without numpy
        raise GraphError("numpy is required for spectral analysis") from exc
    return numpy


def laplacian_matrix(graph: Graph):
    """Return (numpy L, ordered node list) with L = D − A."""
    np = _numpy()
    nodes = sorted(graph.nodes(), key=repr)
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    matrix = np.zeros((n, n))
    for node in nodes:
        i = index[node]
        matrix[i, i] = graph.degree(node)
        for neighbor in graph.neighbors(node):
            matrix[i, index[neighbor]] = -1.0
    return matrix, nodes


def laplacian_spectrum(graph: Graph) -> List[float]:
    """Return the Laplacian eigenvalues in ascending order.

    Raises
    ------
    GraphError
        If the graph is empty.
    """
    if graph.number_of_nodes() == 0:
        raise GraphError("spectrum of the empty graph is undefined")
    np = _numpy()
    matrix, _ = laplacian_matrix(graph)
    eigenvalues = np.linalg.eigvalsh(matrix)
    return [float(v) for v in eigenvalues]


def algebraic_connectivity(graph: Graph) -> float:
    """Return the Fiedler value λ₂ (0 iff the graph is disconnected).

    λ₂ relates to the structural quantities this library verifies
    directly:  λ₂ ≤ κ(G) (Fiedler), and h(G) ≥ λ₂/2 (Cheeger), so a
    healthy λ₂ certifies both fault tolerance and expansion.
    """
    spectrum = laplacian_spectrum(graph)
    if len(spectrum) < 2:
        raise GraphError("algebraic connectivity needs at least two nodes")
    return max(0.0, spectrum[1])


def spectral_gap(graph: Graph) -> float:
    """Return λ₂ normalised by the maximum degree (a mixing-rate proxy)."""
    max_degree = graph.max_degree()
    if max_degree == 0:
        raise GraphError("spectral gap undefined for an edgeless graph")
    return algebraic_connectivity(graph) / max_degree


def spectral_profile(graph: Graph) -> Tuple[float, float, float]:
    """Return (λ₂, λ_max, λ₂/Δ) in one spectrum computation."""
    spectrum = laplacian_spectrum(graph)
    if len(spectrum) < 2:
        raise GraphError("profile needs at least two nodes")
    lam2 = max(0.0, spectrum[1])
    lam_max = spectrum[-1]
    max_degree = graph.max_degree()
    if max_degree == 0:
        raise GraphError("profile undefined for an edgeless graph")
    return lam2, lam_max, lam2 / max_degree
