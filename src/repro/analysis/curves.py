"""Coverage-over-time curves and ASCII rendering.

A dissemination run is richer than its completion time: the *coverage
curve* (fraction of nodes reached by time t) shows the exponential
growth phase flooding enjoys on a log-diameter topology versus the
linear crawl on a ring-like one.  These helpers turn
:class:`~repro.flooding.metrics.FloodResult` delivery times into curves
and render them as ASCII plots — the text-mode equivalent of the
figures a paper would print.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.flooding.metrics import FloodResult


def coverage_curve(
    result: FloodResult, buckets: int = 20
) -> List[Tuple[float, float]]:
    """Return ``(time, coverage_fraction)`` samples for one run.

    Coverage is measured against the run's pre-failure node count, so
    curves from different protocols on the same topology are directly
    comparable.  ``buckets`` evenly spaced sample times span [0, T].

    Raises
    ------
    ValueError
        If the run delivered nothing or ``buckets < 1``.
    """
    if buckets < 1:
        raise ValueError("need at least one bucket")
    if not result.delivery_times:
        raise ValueError("run delivered no messages; no curve to compute")
    times = sorted(result.delivery_times.values())
    horizon = times[-1]
    total = result.n
    samples: List[Tuple[float, float]] = []
    for i in range(buckets + 1):
        t = horizon * i / buckets
        covered = _count_leq(times, t)
        samples.append((t, covered / total))
    return samples


def _count_leq(sorted_values: Sequence[float], threshold: float) -> int:
    import bisect

    return bisect.bisect_right(sorted_values, threshold)


def time_to_fraction(result: FloodResult, fraction: float) -> float:
    """Earliest time at which coverage reaches ``fraction`` of all nodes.

    Raises
    ------
    ValueError
        If the run never reached the fraction.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    needed = int(fraction * result.n + 0.999999)
    times = sorted(result.delivery_times.values())
    if len(times) < needed:
        raise ValueError(
            f"run covered {len(times)}/{result.n}; never reached {fraction:.0%}"
        )
    return times[needed - 1]


def ascii_curve(
    samples: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """Render one coverage curve as an ASCII plot.

    The x axis is time (linear, 0..max), the y axis coverage 0..1.
    """
    if not samples:
        raise ValueError("no samples to render")
    max_t = max(t for t, _ in samples) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for t, fraction in samples:
        x = min(width - 1, int(t / max_t * (width - 1)))
        y = min(height - 1, int(fraction * (height - 1)))
        grid[height - 1 - y][x] = "*"
    lines = []
    if label:
        lines.append(label)
    lines.append("1.0 ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append("    │" + "".join(row))
    lines.append("0.0 └" + "─" * width + f"  t=0..{max_t:g}")
    return "\n".join(lines)


def ascii_curves(
    curves: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    width: int = 60,
    height: int = 12,
) -> str:
    """Render several curves in one plot, one marker character each.

    Curves share a global time axis; markers cycle through ``*+ox#``.
    """
    if not curves:
        raise ValueError("no curves to render")
    markers = "*+ox#%@"
    max_t = max(
        (t for _, samples in curves for t, _ in samples), default=1.0
    ) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (_, samples) in enumerate(curves):
        marker = markers[index % len(markers)]
        for t, fraction in samples:
            x = min(width - 1, int(t / max_t * (width - 1)))
            y = min(height - 1, int(fraction * (height - 1)))
            if grid[height - 1 - y][x] == " ":
                grid[height - 1 - y][x] = marker
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, (name, _) in enumerate(curves)
    )
    lines = [legend, "1.0 ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append("    │" + "".join(row))
    lines.append("0.0 └" + "─" * width + f"  t=0..{max_t:g}")
    return "\n".join(lines)
