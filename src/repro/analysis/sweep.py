"""Parameter sweeps: the engine behind every table and figure.

A sweep maps a function over a grid of parameter points, collecting
rows.  :class:`SweepResult` keeps the rows tagged with their parameters
so benchmarks can both print them (via :mod:`repro.analysis.tables`) and
assert shapes (via :mod:`repro.analysis.stats`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the parameter dict and the measured record."""

    params: Dict[str, Any]
    record: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        """Look a key up in the record first, then in the parameters."""
        if key in self.record:
            return self.record[key]
        return self.params[key]


@dataclass
class SweepResult:
    """All measured points of one sweep."""

    points: List[SweepPoint] = field(default_factory=list)

    def add(self, params: Dict[str, Any], record: Dict[str, Any]) -> None:
        """Record one measurement."""
        self.points.append(SweepPoint(params=params, record=record))

    def column(self, key: str) -> List[Any]:
        """Extract one column across all points."""
        return [point[key] for point in self.points]

    def where(self, **filters: Any) -> "SweepResult":
        """Sub-sweep with parameter equality filters applied."""
        selected = [
            p
            for p in self.points
            if all(p.params.get(k) == v for k, v in filters.items())
        ]
        return SweepResult(points=selected)

    def rows(self, keys: Sequence[str]) -> List[List[Any]]:
        """Rows of the given keys, in sweep order (table-ready)."""
        return [[point[key] for key in keys] for point in self.points]


def run_sweep(
    grid: Dict[str, Iterable[Any]],
    measure: Callable[..., Dict[str, Any]],
    skip: Callable[..., bool] = None,
    workers: int = None,
    checkpoint: Any = None,
    resume: bool = False,
    timeout: float = None,
    retries: int = None,
) -> SweepResult:
    """Run ``measure(**params)`` over the cartesian product of ``grid``.

    Parameters
    ----------
    grid:
        Mapping of parameter name → values; order of keys defines the
        nesting order (last key varies fastest).
    measure:
        Returns the record dict for one point.
    skip:
        Optional predicate; truthy means the point is skipped (e.g.
        infeasible (n, k) combinations).
    workers:
        Fan the grid points out across this many worker processes via
        the execution engine (:mod:`repro.exec`).  ``None``/``1`` run
        serially; for any count the sweep is collected in grid order,
        so as long as ``measure`` is deterministic in its parameters
        the :class:`SweepResult` is identical to a serial run.
    checkpoint / resume:
        Journal completed points to an append-only JSONL file
        (:class:`~repro.exec.checkpoint.CheckpointJournal`) keyed by the
        point's parameters; with ``resume=True`` journaled points are
        skipped and merged back in grid order, byte-identical to an
        uninterrupted sweep.
    timeout / retries:
        Supervised execution: per-point wall-clock budget (the worker is
        SIGKILLed when exceeded) and bounded retries with deterministic
        backoff.  Analysis grids must be complete to be meaningful, so a
        point that exhausts its retries raises
        :class:`~repro.errors.ExecutionError` (carrying the remote
        traceback) rather than being quarantined.

    Examples
    --------
    >>> result = run_sweep({"x": [1, 2]}, lambda x: {"y": x * x})
    >>> result.column("y")
    [1, 4]
    """
    names = list(grid.keys())
    points: List[Dict[str, Any]] = []
    for values in product(*(list(grid[name]) for name in names)):
        params = dict(zip(names, values))
        if skip is not None and skip(**params):
            continue
        points.append(params)

    from repro.exec.checkpoint import (
        checkpoint_key,
        open_journal,
        pack_pickle,
        unpack_pickle,
    )
    from repro.exec.pool import WorkerPool
    from repro.exec.supervisor import SupervisorConfig

    labels = [repr(params) for params in points]
    keys = [
        checkpoint_key("sweep-point", *sorted(params.items()))
        for params in points
    ]
    journal = open_journal(checkpoint, resume)
    done: Dict[int, Dict[str, Any]] = {}
    if journal is not None:
        for position, key in enumerate(keys):
            payload = journal.get(key)
            if payload is not None:
                done[position] = unpack_pickle(payload)
    todo = [i for i in range(len(points)) if i not in done]

    supervised = journal is not None or timeout is not None or retries is not None
    config = None
    if supervised:

        def journal_result(position: int, record: Dict[str, Any]) -> None:
            if journal is not None:
                journal.record(
                    keys[todo[position]],
                    pack_pickle(record),
                    label=labels[todo[position]],
                )

        config = SupervisorConfig(
            timeout=timeout,
            retries=2 if retries is None else retries,
            failure_mode="raise",
            on_result=journal_result if journal is not None else None,
        )

    from repro import obs

    pool = WorkerPool(workers=workers, supervisor=config)
    try:
        with obs.span(
            "sweep", points=len(points), resumed=len(done)
        ):
            records = pool.map(
                lambda params: measure(**params),
                [points[i] for i in todo],
                labels=[labels[i] for i in todo],
            )
    finally:
        if journal is not None:
            journal.close()
    result = SweepResult()
    fresh = iter(records)
    for position, params in enumerate(points):
        record = done[position] if position in done else next(fresh)
        result.add(params, record)
    return result


def geometric_sizes(start: int, stop: int, factor: float = 2.0) -> List[int]:
    """Geometric size ladder for n-sweeps: start, start·f, … ≤ stop.

    Raises
    ------
    ValueError
        If ``factor <= 1`` or ``start < 1``.
    """
    if factor <= 1:
        raise ValueError(f"factor must exceed 1, got {factor}")
    if start < 1:
        raise ValueError(f"start must be >= 1, got {start}")
    sizes: List[int] = []
    current = float(start)
    while round(current) <= stop:
        size = round(current)
        if not sizes or size != sizes[-1]:
            sizes.append(size)
        current *= factor
    return sizes
