"""Experiment support: sweeps, table rendering, shape statistics."""

from repro.analysis.stats import (
    growth_exponent,
    is_roughly_logarithmic,
    linear_slope,
    mean_and_ci,
    ratio_series,
)
from repro.analysis.sweep import SweepPoint, SweepResult, geometric_sizes, run_sweep
from repro.analysis.tables import render_series, render_table

__all__ = [
    "SweepPoint",
    "SweepResult",
    "geometric_sizes",
    "growth_exponent",
    "is_roughly_logarithmic",
    "linear_slope",
    "mean_and_ci",
    "ratio_series",
    "render_series",
    "render_table",
    "run_sweep",
]
