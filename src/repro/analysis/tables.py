"""Plain-text table and series rendering for the benchmark harness.

The benchmarks regenerate the paper's tables and figure series as text:
:func:`render_table` prints aligned columns, :func:`render_series`
prints an (x, y…) figure as rows — the same information a plot would
carry, greppable and diffable.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value == value else "nan"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned ASCII table.

    Raises
    ------
    ValueError
        If any row's width differs from the header count.
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_series(
    x_name: str,
    series: Sequence[str],
    points: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render a figure as rows of (x, series values…).

    ``points`` rows are ``(x, y1, y2, …)`` matching ``series`` order.
    """
    return render_table([x_name, *series], points, title=title)
