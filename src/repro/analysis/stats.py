"""Small statistics helpers shared by benchmarks and tests.

Nothing exotic: means, sample standard deviation, normal-approximation
confidence intervals, and least-squares slope helpers used to *assert
shapes* (linear vs logarithmic growth) rather than absolute numbers —
the reproduction contract for a simulator-based reimplementation.
"""

from __future__ import annotations

import math
import statistics
from typing import List, Sequence, Tuple


def mean_and_ci(values: Sequence[float], z: float = 1.96) -> Tuple[float, float]:
    """Return (mean, half-width of the z·σ/√n confidence interval).

    Raises
    ------
    ValueError
        If ``values`` is empty.
    """
    if not values:
        raise ValueError("cannot summarise an empty sample")
    mean = statistics.fmean(values)
    if len(values) < 2:
        return (mean, 0.0)
    stdev = statistics.stdev(values)
    return (mean, z * stdev / math.sqrt(len(values)))


def linear_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of y against x.

    Raises
    ------
    ValueError
        If the sequences differ in length, are shorter than 2, or x is
        constant.
    """
    if len(xs) != len(ys):
        raise ValueError("x and y must have the same length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    mean_x = statistics.fmean(xs)
    mean_y = statistics.fmean(ys)
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        raise ValueError("x values are constant")
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return numerator / denominator


def growth_exponent(ns: Sequence[float], values: Sequence[float]) -> float:
    """Fit ``values ≈ c · n^e`` and return the exponent ``e``.

    The log–log least-squares slope: ≈1 for linear growth, ≈0 for
    logarithmic/constant.  Benchmarks use it to assert that Harary
    diameters grow linearly (e ≈ 1) while LHG diameters do not (e ≈ 0).

    Raises
    ------
    ValueError
        If any input is non-positive (logs undefined).
    """
    if any(n <= 0 for n in ns) or any(v <= 0 for v in values):
        raise ValueError("growth fits need positive data")
    return linear_slope([math.log(n) for n in ns], [math.log(v) for v in values])


def is_roughly_logarithmic(
    ns: Sequence[float], values: Sequence[float], ratio_cap: float = 3.0
) -> bool:
    """Heuristic shape test: does ``values`` grow like O(log n)?

    Checks that values scale no faster than ``ratio_cap ×`` the log of the
    size ratio across the sweep: value(n_max)/value(n_min) ≤
    ratio_cap · log(n_max)/log(n_min).
    """
    if len(ns) < 2:
        return True
    v_ratio = values[-1] / max(values[0], 1e-12)
    log_ratio = math.log(ns[-1]) / max(math.log(ns[0]), 1e-12)
    return v_ratio <= ratio_cap * log_ratio


def ratio_series(numerators: Sequence[float], denominators: Sequence[float]) -> List[float]:
    """Element-wise ratios, guarding division by zero with inf.

    Raises
    ------
    ValueError
        If the sequences differ in length.
    """
    if len(numerators) != len(denominators):
        raise ValueError("series must have the same length")
    return [
        (a / b) if b else math.inf for a, b in zip(numerators, denominators)
    ]
