"""The execution engine: deterministic parallel fan-out + memoization.

Every sweep in this repository — chaos campaigns, flooding experiment
repetitions, analysis grids — is a map of a pure, seeded cell function
over a parameter grid.  This package gives those maps four things:

* :class:`~repro.exec.pool.WorkerPool` — a process-pool executor whose
  results are byte-identical to the serial loop (items carry their own
  derived seeds; results are collected positionally);
* :mod:`~repro.exec.supervisor` — fault tolerance around the pool:
  per-item wall-clock timeouts, worker-death detection, bounded retries
  with deterministic backoff, poison-item quarantine
  (:class:`~repro.exec.supervisor.ItemFailure`) and graceful degradation
  to serial, configured via
  :class:`~repro.exec.supervisor.SupervisorConfig`;
* :class:`~repro.exec.checkpoint.CheckpointJournal` — an append-only
  JSONL journal of completed cells keyed by stable SHA-256
  :func:`~repro.exec.checkpoint.checkpoint_key` hashes, so interrupted
  campaigns and sweeps resume (``checkpoint=`` / ``resume=True``) with
  results byte-identical to an uninterrupted run;
* :class:`~repro.exec.cache.GraphCache` / :data:`~repro.exec.cache.GRAPH_CACHE`
  — keyed memoization of LHG constructions ``(n, k, rule) → (graph,
  certificate)`` so a grid builds each topology once, not once per cell;
  plus :class:`~repro.exec.profiling.ExecutionReport` — per-cell wall
  times, cache hit rates and fault counters for every map, surfaced by
  the F13/F14 benchmarks and the CLI.

Layers above wire through it behind ``workers=`` / ``timeout=`` /
``retries=`` / ``checkpoint=`` options:
``ChaosCampaign.run(workers=4, checkpoint="run.jsonl", resume=True)``,
``repeat_runs(..., workers=4)``, ``run_sweep(..., workers=4)`` and
``python -m repro chaos 256 4 --workers 4 --checkpoint run.jsonl --resume``.
"""

from repro.exec.cache import (
    GRAPH_CACHE,
    GraphCache,
    KeyedCache,
    TopologySpec,
    build_lhg_cached,
)
from repro.exec.checkpoint import (
    CheckpointJournal,
    checkpoint_key,
    open_journal,
    pack_pickle,
    unpack_pickle,
)
from repro.exec.pool import (
    RemoteTraceback,
    WorkerPool,
    fork_available,
    parallel_map,
    resolve_workers,
)
from repro.exec.profiling import CellTiming, ExecutionReport, Stopwatch
from repro.exec.seeding import derive_seed, seed_key
from repro.exec.supervisor import (
    CrashInjector,
    FaultContext,
    InjectedFault,
    ItemFailure,
    SupervisionStats,
    SupervisorConfig,
    supervised_map,
)

__all__ = [
    "CellTiming",
    "CheckpointJournal",
    "CrashInjector",
    "ExecutionReport",
    "FaultContext",
    "GRAPH_CACHE",
    "GraphCache",
    "InjectedFault",
    "ItemFailure",
    "KeyedCache",
    "RemoteTraceback",
    "Stopwatch",
    "SupervisionStats",
    "SupervisorConfig",
    "TopologySpec",
    "WorkerPool",
    "build_lhg_cached",
    "checkpoint_key",
    "derive_seed",
    "fork_available",
    "open_journal",
    "pack_pickle",
    "parallel_map",
    "resolve_workers",
    "seed_key",
    "supervised_map",
    "unpack_pickle",
]
