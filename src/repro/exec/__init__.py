"""The execution engine: deterministic parallel fan-out + memoization.

Every sweep in this repository — chaos campaigns, flooding experiment
repetitions, analysis grids — is a map of a pure, seeded cell function
over a parameter grid.  This package gives those maps three things:

* :class:`~repro.exec.pool.WorkerPool` — a process-pool executor whose
  results are byte-identical to the serial loop (items carry their own
  derived seeds; results are collected positionally);
* :class:`~repro.exec.cache.GraphCache` / :data:`~repro.exec.cache.GRAPH_CACHE`
  — keyed memoization of LHG constructions ``(n, k, rule) → (graph,
  certificate)`` so a grid builds each topology once, not once per cell;
* :class:`~repro.exec.profiling.ExecutionReport` — per-cell wall times
  and cache hit rates for every map, surfaced by the F13 benchmark and
  the CLI ``--workers`` flag.

Layers above wire through it behind a ``workers=`` option:
``ChaosCampaign.run(workers=4)``,
``repeat_runs(..., workers=4)``, ``run_sweep(..., workers=4)`` and
``python -m repro chaos 256 4 --workers 4``.
"""

from repro.exec.cache import (
    GRAPH_CACHE,
    GraphCache,
    KeyedCache,
    TopologySpec,
    build_lhg_cached,
)
from repro.exec.pool import WorkerPool, fork_available, parallel_map, resolve_workers
from repro.exec.profiling import CellTiming, ExecutionReport, Stopwatch
from repro.exec.seeding import derive_seed, seed_key

__all__ = [
    "CellTiming",
    "ExecutionReport",
    "GRAPH_CACHE",
    "GraphCache",
    "KeyedCache",
    "Stopwatch",
    "TopologySpec",
    "WorkerPool",
    "build_lhg_cached",
    "derive_seed",
    "fork_available",
    "parallel_map",
    "resolve_workers",
    "seed_key",
]
