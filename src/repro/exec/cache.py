"""Keyed memoization for expensive constructions.

Campaign and sweep grids revisit the same topology many times — every
(scenario, protocol, seed) cell of a chaos campaign runs on the same
LHG, and an n-sweep rebuilds each size once per protocol column.  A
:class:`KeyedCache` memoizes any keyed builder with hit/miss counters;
:class:`GraphCache` specializes it for LHG constructions keyed by
``(n, k, rule)`` and keeps the construction certificate alongside the
graph.

The module-level :data:`GRAPH_CACHE` is the shared instance the
execution engine, the campaign layer and the CLI all use, so one
process builds each topology exactly once.  Worker processes forked by
:class:`~repro.exec.pool.WorkerPool` inherit the parent's cache
contents at fork time for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Tuple


@dataclass(frozen=True)
class TopologySpec:
    """A topology named by its construction parameters, not an instance.

    Campaigns may list topologies as specs instead of pre-built graphs;
    the engine resolves each spec through :data:`GRAPH_CACHE` so
    repeated campaigns (and repeated cells) share one construction.

    ``backend`` selects the resolved representation: ``"dict"`` (the
    default) builds the mutable :class:`~repro.graphs.graph.Graph` with
    its construction certificate; ``"implicit"`` resolves to the
    O(1)-memory :class:`~repro.graphs.implicit.ImplicitJDOracle`;
    ``"csr"`` compiles that oracle into a
    :class:`~repro.graphs.csr.CSRGraph`.  The oracle backends carry no
    certificate (their structure *is* the proof) and require the JD
    rule, so ``rule`` must stay ``"auto"`` for them.
    """

    n: int
    k: int
    rule: str = "auto"
    backend: str = "dict"

    @property
    def label(self) -> str:
        """Default row label for this topology."""
        suffix = "" if self.rule == "auto" else f"-{self.rule}"
        if self.backend != "dict":
            suffix += f"@{self.backend}"
        return f"lhg-n{self.n}-k{self.k}{suffix}"


class KeyedCache:
    """Memoize ``key -> builder()`` with hit/miss accounting.

    Not thread-safe by design: the execution engine is process-based,
    and within one process all access happens under the GIL between
    bytecodes of ``get_or_build``'s dict operations.
    """

    def __init__(self, name: str = "cache") -> None:
        self.name = name
        self._entries: Dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get_or_build(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on first use."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            value = builder()
            self._entries[key] = value
            return value
        self.hits += 1
        return value

    def peek(self, key: Hashable) -> Optional[Any]:
        """The cached value, or ``None`` — never builds, never counts."""
        return self._entries.get(key)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: ``{"hits", "misses", "entries"}``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }


class GraphCache(KeyedCache):
    """A :class:`KeyedCache` of LHG constructions keyed by (n, k, rule)."""

    def __init__(self, name: str = "graphs") -> None:
        super().__init__(name=name)

    def lhg(self, n: int, k: int, rule: str = "auto") -> Tuple[Any, Any]:
        """``(graph, certificate)`` for the pair, built at most once.

        Callers must treat the returned graph as immutable — it is
        shared with every other caller of the same key.  Mutating runs
        should work on ``graph.copy()``.
        """
        from repro.core.existence import build_lhg

        key = (int(n), int(k), str(rule))
        return self.get_or_build(key, lambda: build_lhg(n, k, rule=rule))

    def resolve(self, topology: "TopologySpec") -> Tuple[Any, Any]:
        """Resolve a :class:`TopologySpec` to ``(graph, certificate)``.

        Oracle backends (``"implicit"``/``"csr"``) return ``None`` for
        the certificate — there is no construction transcript; their
        guarantees are recertified structurally on demand.

        Raises
        ------
        ValueError
            For an unknown backend, or a non-``"auto"`` rule on an
            oracle backend (the oracles implement the JD rule only).
        """
        backend = getattr(topology, "backend", "dict")
        if backend == "dict":
            return self.lhg(topology.n, topology.k, rule=topology.rule)
        if topology.rule != "auto":
            raise ValueError(
                f"backend {backend!r} implements the JD rule only, "
                f"got rule={topology.rule!r}"
            )
        if backend == "implicit":
            from repro.graphs.implicit import ImplicitJDOracle

            key = ("implicit", int(topology.n), int(topology.k))
            oracle = self.get_or_build(
                key, lambda: ImplicitJDOracle(topology.n, topology.k)
            )
            return oracle, None
        if backend == "csr":
            from repro.graphs.csr import CSRGraph
            from repro.graphs.implicit import ImplicitJDOracle

            key = ("csr", int(topology.n), int(topology.k))
            graph = self.get_or_build(
                key,
                lambda: CSRGraph.from_oracle(
                    ImplicitJDOracle(topology.n, topology.k)
                ),
            )
            return graph, None
        raise ValueError(
            f"unknown topology backend {backend!r}; "
            "expected 'dict', 'implicit' or 'csr'"
        )


#: Shared process-wide construction cache (see module docstring).
GRAPH_CACHE = GraphCache()


def build_lhg_cached(n: int, k: int, rule: str = "auto") -> Tuple[Any, Any]:
    """:func:`repro.core.existence.build_lhg` through :data:`GRAPH_CACHE`."""
    return GRAPH_CACHE.lhg(n, k, rule=rule)
