"""Timing and cache instrumentation for the execution engine.

Every :meth:`~repro.exec.pool.WorkerPool.map` call produces an
:class:`ExecutionReport`: the per-cell wall times (measured inside the
worker, so they exclude dispatch overhead), the total wall-clock of the
whole map, the execution mode actually used, and a snapshot of cache
statistics when a cache was attached.  Reports are what the benchmarks
(F13) and the CLI ``--workers`` flag surface; they never influence
results — simulated time and profiling wall time are separate worlds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class CellTiming:
    """Wall-clock cost of one executed cell."""

    label: str
    seconds: float


@dataclass
class ExecutionReport:
    """What one engine invocation did and what it cost.

    Attributes
    ----------
    mode:
        ``"serial"`` (in-process loop), ``"fork-pool"`` (bare process
        pool), or one of the supervised modes — ``"supervised-fork"``,
        ``"supervised-serial"``, ``"supervised-degraded"`` (started
        forked, finished serially after the worker-death budget ran out).
    workers:
        Worker processes actually used (1 for serial).
    requested_workers:
        What the caller asked for (may exceed ``workers`` when the
        platform cannot fork or there were fewer cells than workers).
    wall_seconds:
        End-to-end wall clock of the map call.
    timings:
        Per-cell wall times in submission (= result) order.
    cache:
        Snapshot of cache counters at completion, when a cache was
        attached (``{"hits": ..., "misses": ..., "entries": ...}``).
    failures:
        Quarantined items (supervised maps only): the structured
        :class:`~repro.exec.supervisor.ItemFailure` per poison item.
    retries:
        Retried attempts across the whole map (supervised maps only).
    timeouts:
        Items whose worker was SIGKILLed for exceeding the per-item
        wall-clock budget (supervised maps only).
    worker_deaths:
        Worker processes lost to crashes, kills or timeouts
        (supervised maps only).
    span_tree:
        Nested span timings for this map (see
        :func:`repro.obs.export.build_span_tree`) when a telemetry
        collector was installed during the run; ``None`` otherwise.
    """

    mode: str = "serial"
    workers: int = 1
    requested_workers: int = 1
    wall_seconds: float = 0.0
    timings: List[CellTiming] = field(default_factory=list)
    cache: Optional[Dict[str, int]] = None
    failures: List[Any] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    span_tree: Optional[List[Dict[str, Any]]] = None

    @property
    def cells(self) -> int:
        """Number of cells executed."""
        return len(self.timings)

    def total_cell_seconds(self) -> float:
        """Sum of per-cell wall times (the serial-equivalent cost)."""
        return sum(t.seconds for t in self.timings)

    def parallel_efficiency(self) -> float:
        """cell-seconds / (workers × wall) — 1.0 is a perfect fan-out.

        A sub-millisecond map on a coarse clock can legitimately report
        ``wall_seconds == 0``; falling back to the measured floor — the
        slowest single cell, which the map can never beat — keeps the
        efficiency finite and meaningful instead of zeroing it.
        """
        if not self.timings:
            return 0.0
        wall = self.wall_seconds
        if wall <= 0:
            wall = max(t.seconds for t in self.timings)
        if wall <= 0 or self.workers <= 0:
            return 0.0
        return self.total_cell_seconds() / (self.workers * wall)

    def cache_hit_rate(self) -> Optional[float]:
        """hits / (hits + misses), or ``None`` without a cache."""
        if self.cache is None:
            return None
        lookups = self.cache.get("hits", 0) + self.cache.get("misses", 0)
        if lookups == 0:
            return 0.0
        return self.cache.get("hits", 0) / lookups

    def slowest(self, count: int = 5) -> List[CellTiming]:
        """The ``count`` most expensive cells, costliest first."""
        return sorted(self.timings, key=lambda t: -t.seconds)[:count]

    def summary(self) -> str:
        """One-line human summary (CLI ``--workers`` output)."""
        parts = [
            f"{self.cells} cells in {self.wall_seconds:.2f}s "
            f"({self.mode}, {self.workers} worker(s))"
        ]
        rate = self.cache_hit_rate()
        if rate is not None:
            parts.append(f"graph cache hit rate {rate:.0%}")
        if self.retries or self.worker_deaths:
            parts.append(
                f"{self.retries} retrie(s), {self.timeouts} timeout(s), "
                f"{self.worker_deaths} worker death(s)"
            )
        if self.failures:
            parts.append(f"{len(self.failures)} cell(s) quarantined")
        return ", ".join(parts)


class Stopwatch:
    """Tiny context manager: ``with Stopwatch() as w: ...; w.seconds``."""

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._start
